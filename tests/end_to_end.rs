//! Whole-system integration: all subsystems collaborating on one design,
//! exercised through the `stem` facade.

use stem::cells::{alu_fixture, CellKit};
use stem::compilers::{CompilerView, VectorCompiler};
use stem::core::{Justification, NetworkInspector, Value};
use stem::design::ChangeKey;
use stem::modsel::{select_realizations, SelectionOptions};
use stem::sim::{Level, SimSession};

/// Build → check → compile → simulate → select, in one session, sharing a
/// single constraint network.
#[test]
fn full_design_session() {
    let mut kit = CellKit::new();

    // 1. Structural design with incremental checking: the adder's wiring
    // installs typing constraints as it goes.
    let rca = kit.ripple_carry_adder("RCA4", 4);
    assert_eq!(kit.design.signal_bit_width(rca, "a0"), Some(1));

    // 2. Hierarchical delay estimation over the same network.
    let est = kit
        .analyzer
        .delay(&mut kit.design, rca, "cin", "cout")
        .unwrap()
        .unwrap();
    assert!(est > 0.0);

    // 3. Module compilation through lazy views.
    let fa = kit.design.class_by_name("RCA4_FA").unwrap();
    let view = CompilerView::new(&mut kit.design, fa);
    let row = kit.design.define_class("ROW4");
    let built = VectorCompiler::new(fa, 4)
        .compile(&mut kit.design, row)
        .unwrap();
    assert_eq!(built.instances.len(), 4);
    // Our own view is independent of the compiler's internal ones: one
    // lazy recalculation serves repeated reads.
    view.data(&mut kit.design).unwrap();
    view.data(&mut kit.design).unwrap();
    assert_eq!(view.recalc_count(), 1, "one view recalculation served all");

    // 4. External-tool round trip.
    let session = SimSession::open(&mut kit.design, &kit.primitives, rca).unwrap();
    let mut sim = session.simulator();
    for i in 0..4 {
        let pa = sim.port(&format!("a{i}")).unwrap();
        let pb = sim.port(&format!("b{i}")).unwrap();
        sim.drive(pa, Level::from_bool(0b0101 >> i & 1 == 1), 0);
        sim.drive(pb, Level::from_bool(0b0011 >> i & 1 == 1), 0);
    }
    sim.drive(sim.port("cin").unwrap(), Level::L0, 0);
    sim.run_to_quiescence().unwrap();
    let mut s = 0u64;
    for i in 0..4 {
        if sim.value(sim.port(&format!("s{i}")).unwrap()) == Level::L1 {
            s |= 1 << i;
        }
    }
    assert_eq!(s, 0b1000, "5 + 3 = 8");
    session.close(&mut kit.design);

    // 5. Module selection in the same environment.
    let fx = alu_fixture(&mut kit);
    kit.analyzer
        .constrain_max(&mut kit.design, fx.alu, "in", "out", 8.0)
        .unwrap();
    let out = select_realizations(
        &mut kit.design,
        &mut kit.analyzer,
        fx.adder_inst,
        &SelectionOptions::default(),
    )
    .unwrap();
    assert_eq!(out.valid, vec![fx.family.cs]);

    // The one shared network remains globally consistent.
    assert!(kit.design.network().check_all().is_empty());
}

/// The CPSwitch (§5.3): extensive revisions with propagation disabled,
/// then a recovery sweep.
#[test]
fn cpswitch_design_revision_cycle() {
    let mut kit = CellKit::new();
    let rca = kit.ripple_carry_adder("RCA2", 2);
    assert!(kit.design.network().check_all().is_empty());

    kit.design.network_mut().set_propagation_enabled(false);
    // Massive (temporarily inconsistent) revision: force a width clash.
    let bw = kit.design.signal_def(rca, "a0").unwrap().class_bit_width;
    kit.design
        .network_mut()
        .set(bw, Value::BitWidth(4), Justification::User)
        .unwrap();
    let violations = kit.design.network().check_all();
    assert!(
        !violations.is_empty(),
        "inconsistency parked while disabled"
    );

    // Undo and re-enable: consistent again.
    kit.design
        .network_mut()
        .set(bw, Value::BitWidth(1), Justification::User)
        .unwrap();
    kit.design.network_mut().set_propagation_enabled(true);
    assert!(kit.design.network().check_all().is_empty());
}

/// The inspector can describe a large cross-crate network without panics
/// and reflects violations faithfully.
#[test]
fn inspector_over_full_environment() {
    let mut kit = CellKit::new();
    let _rca = kit.ripple_carry_adder("RCA2", 2);
    let text = {
        let insp = NetworkInspector::new(kit.design.network());
        insp.dump()
    };
    assert!(text.contains("bitWidth"));
    assert!(text.contains("equality"));
    let insp = NetworkInspector::new(kit.design.network());
    assert_eq!(insp.violations(), "no violations\n");
}

/// Change broadcast reaches sessions and views registered at different
/// levels of the same hierarchy.
#[test]
fn broadcast_reaches_all_registered_dependents() {
    let mut kit = CellKit::new();
    let rca = kit.ripple_carry_adder("RCA2", 2);
    let fa = kit.design.class_by_name("RCA2_FA").unwrap();

    let session = SimSession::open(&mut kit.design, &kit.primitives, rca).unwrap();
    let fa_view = CompilerView::new(&mut kit.design, fa);
    fa_view.data(&mut kit.design).unwrap();

    // Editing the FA's internals outdates the RCA session (change
    // propagates up) and erases the FA view.
    let net0 = kit.design.nets_of(fa)[0];
    let (inst, sig) = kit.design.net_connections(net0)[0].clone();
    kit.design.disconnect(net0, inst, &sig).unwrap();
    assert!(session.is_outdated());
    fa_view.data(&mut kit.design).unwrap();
    assert_eq!(fa_view.recalc_count(), 2);

    kit.design.connect(net0, inst, &sig).unwrap();
    session.close(&mut kit.design);

    // Values-only changes do not walk the hierarchy (§6.5.2).
    let session2 = SimSession::open(&mut kit.design, &kit.primitives, rca).unwrap();
    kit.design.notify_changed(fa, ChangeKey::Values);
    assert!(!session2.is_outdated());
    session2.close(&mut kit.design);
}
