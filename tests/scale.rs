//! Scale stress: deep hierarchies and wide fan-outs through the facade —
//! guards against stack-depth and quadratic-blowup regressions in the
//! engine, the design environment and the delay analyzer.

use stem::checking::DelayAnalyzer;
use stem::core::{Justification, Value};
use stem::design::{CellClassId, Design, SignalDir};
use stem::geom::{Point, Rect, Transform};

/// A five-level hierarchy, two subcells per level, with a delay path
/// through every level: 2^5 = 32 leaf instances under the top.
#[test]
fn deep_hierarchy_delay_rollup() {
    let mut d = Design::new();
    let mut an = DelayAnalyzer::new();

    let leaf = d.define_class("LEAF");
    d.add_signal(leaf, "in", SignalDir::Input);
    d.add_signal(leaf, "out", SignalDir::Output);
    d.set_class_bounding_box(leaf, Rect::with_extent(Point::ORIGIN, 10, 10))
        .unwrap();
    an.declare_delay(&mut d, leaf, "in", "out");
    an.set_estimate(&mut d, leaf, "in", "out", 1.0).unwrap();

    // Each level cascades two instances of the level below.
    let mut below: CellClassId = leaf;
    for level in 0..5 {
        let cur = d.define_class(format!("L{level}"));
        d.add_signal(cur, "in", SignalDir::Input);
        d.add_signal(cur, "out", SignalDir::Output);
        an.declare_delay(&mut d, cur, "in", "out");
        let w = d.class_bounding_box(below).unwrap().width();
        let i1 = d
            .instantiate(below, cur, "s1", Transform::IDENTITY)
            .unwrap();
        let i2 = d
            .instantiate(below, cur, "s2", Transform::translation(Point::new(w, 0)))
            .unwrap();
        let ni = d.add_net(cur, "ni");
        d.connect_io(ni, "in").unwrap();
        d.connect(ni, i1, "in").unwrap();
        let nm = d.add_net(cur, "nm");
        d.connect(nm, i1, "out").unwrap();
        d.connect(nm, i2, "in").unwrap();
        let no = d.add_net(cur, "no");
        d.connect(no, i2, "out").unwrap();
        d.connect_io(no, "out").unwrap();
        below = cur;
    }
    let top = below;

    // 2 leaves per level over 5 levels: 32 leaf delays in series.
    let total = an.delay(&mut d, top, "in", "out").unwrap().unwrap();
    assert!((total - 32.0).abs() < 1e-9, "2^5 × 1 ns = {total}");

    // Bounding box rolls up the same way: 32 leaves of width 10.
    assert_eq!(d.class_bounding_box(top).unwrap().width(), 320);

    // A leaf re-characterisation must reach the top through ten link
    // levels. Under the strict one-value-change rule this trips the
    // thesis's own §9.2.3 limitation: agenda scheduling is not
    // dependency-ordered, so a level's sum recomputes once per sibling
    // link and its second (corrected) value counts as a second change.
    an.clear_estimate(&mut d, leaf, "in", "out");
    let err = an.set_estimate(&mut d, leaf, "in", "out", 2.0).unwrap_err();
    assert_eq!(
        err.kind,
        stem::core::ViolationKind::Revisit,
        "§9.2.3 reproduced"
    );

    // The thesis's suggested remedy — "relax the one-value-change rule to
    // allow N value changes" — with N = 2 (one recomputation per sibling)
    // lets the rollup converge correctly at any depth.
    d.network_mut().set_value_change_limit(2);
    an.set_estimate(&mut d, leaf, "in", "out", 2.0).unwrap();
    let total = an.delay(&mut d, top, "in", "out").unwrap().unwrap();
    assert!((total - 64.0).abs() < 1e-9, "{total}");
}

/// Wide fan-out: one class with many instances; a characteristic change
/// reaches all of them in one propagation cycle with linear effort.
#[test]
fn wide_fanout_propagation() {
    let mut d = Design::new();
    let cell = d.define_class("CELL");
    let delay = d.add_property(cell, "delay", stem::design::PropertyLink::Mirror);
    let mut instances = Vec::new();
    for p in 0..20 {
        let parent = d.define_class(format!("P{p}"));
        for i in 0..10 {
            instances.push(
                d.instantiate(cell, parent, format!("c{i}"), Transform::IDENTITY)
                    .unwrap(),
            );
        }
    }
    assert_eq!(instances.len(), 200);
    d.network_mut().reset_stats();
    d.network_mut()
        .set(delay, Value::Float(7.0), Justification::Application)
        .unwrap();
    for &i in &instances {
        let v = d.instance_property_var(i, "delay").unwrap();
        assert_eq!(d.network().value(v), &Value::Float(7.0));
    }
    let stats = d.network().stats();
    // One assignment plus one per instance: strictly linear.
    assert_eq!(stats.assignments, 201);
    assert_eq!(stats.cycles, 1);
}

/// Long equality chains exercise the engine's explicit stack: no
/// recursion depth limit applies even at 50k variables.
#[test]
fn long_chain_is_stack_safe() {
    let mut net = stem::core::Network::new();
    let n = 50_000;
    let vars: Vec<_> = (0..n).map(|i| net.add_variable(format!("v{i}"))).collect();
    for w in vars.windows(2) {
        net.add_constraint_quiet(stem::core::kinds::Equality::new(), [w[0], w[1]]);
    }
    net.set(vars[0], Value::Int(5), Justification::User)
        .unwrap();
    assert_eq!(net.value(vars[n - 1]), &Value::Int(5));

    // Dependency analysis over the whole chain is also iterativeish and
    // completes; the antecedent trace of the far end spans every link.
    let (ante, cons) = net.antecedents(vars[n - 1]);
    assert_eq!(ante.len(), n);
    assert_eq!(cons.len(), n - 1);
}
