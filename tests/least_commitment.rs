//! The least-commitment design strategy end-to-end (thesis §1.1 + ch. 8):
//! generic placeholders with partial default characteristics let the rest
//! of a design proceed and be checked, and implementation decisions are
//! deferred until the surrounding context is known.

use stem::cells::{adder8_interface, characterize_adder8, CellKit, GATE_DELAY_NS};
use stem::core::Value;
use stem::design::{CellClassId, CellInstanceId, SignalDir};
use stem::geom::{Point, Rect, Transform};
use stem::modsel::{select_realizations, SelectionOptions};

struct Datapath {
    kit: CellKit,
    top: CellClassId,
    adder_inst: CellInstanceId,
    generic: CellClassId,
}

/// A datapath with a generic adder placeholder: REG-like front stage
/// (characterised) feeding the yet-undecided adder.
fn datapath() -> Datapath {
    let mut kit = CellKit::new();
    let generic = adder8_interface(&mut kit, "GenAdder");
    kit.design.set_generic(generic, true);
    // Partial default characteristics (§8: "generic cells with partial
    // default characteristics for parts of a design").
    characterize_adder8(&mut kit, generic, 5.0, 10).unwrap();

    let front = adder8_interface(&mut kit, "FrontStage");
    characterize_adder8(&mut kit, front, 4.0, 10).unwrap();

    let d = &mut kit.design;
    let top = d.define_class("DATAPATH");
    d.add_signal(top, "in", SignalDir::Input);
    d.set_signal_bit_width(top, "in", 8).unwrap();
    d.add_signal(top, "out", SignalDir::Output);
    d.set_signal_bit_width(top, "out", 8).unwrap();
    let f = d
        .instantiate(front, top, "front", Transform::IDENTITY)
        .unwrap();
    let a = d
        .instantiate(
            generic,
            top,
            "add",
            Transform::translation(Point::new(80, 0)),
        )
        .unwrap();
    let n_in = d.add_net(top, "n_in");
    d.connect_io(n_in, "in").unwrap();
    d.connect(n_in, f, "a").unwrap();
    let n_mid = d.add_net(top, "n_mid");
    d.connect(n_mid, f, "s").unwrap();
    d.connect(n_mid, a, "a").unwrap();
    let n_out = d.add_net(top, "n_out");
    d.connect(n_out, a, "s").unwrap();
    d.connect_io(n_out, "out").unwrap();
    kit.analyzer
        .declare_delay(&mut kit.design, top, "in", "out");
    Datapath {
        kit,
        top,
        adder_inst: a,
        generic,
    }
}

#[test]
fn design_checking_proceeds_against_generic_defaults() {
    let mut dp = datapath();
    // The design is checkable before any adder implementation exists:
    // front 4D + generic ideal 5D = 9D.
    let total = dp
        .kit
        .analyzer
        .delay(&mut dp.kit.design, dp.top, "in", "out")
        .unwrap()
        .unwrap();
    assert!((total - 9.0 * GATE_DELAY_NS).abs() < 1e-9);

    // A 10D spec is satisfiable against the ideals…
    dp.kit
        .analyzer
        .constrain_max(&mut dp.kit.design, dp.top, "in", "out", 10.0)
        .unwrap();
    // …an 8D spec is immediately flagged, before committing to anything.
    assert!(dp
        .kit
        .analyzer
        .constrain_max(&mut dp.kit.design, dp.top, "in", "out", 8.0)
        .is_err());
}

#[test]
fn deferred_decision_resolves_when_context_is_known() {
    let mut dp = datapath();
    dp.kit
        .analyzer
        .constrain_max(&mut dp.kit.design, dp.top, "in", "out", 10.0)
        .unwrap();

    // Implementations arrive later, with different trade-offs.
    let fast = dp.kit.design.derive_class("GenAdder.F", dp.generic);
    dp.kit
        .analyzer
        .declare_delay(&mut dp.kit.design, fast, "a", "s");
    dp.kit
        .analyzer
        .set_estimate(&mut dp.kit.design, fast, "a", "s", 5.5)
        .unwrap();
    dp.kit
        .design
        .set_class_bounding_box(fast, Rect::with_extent(Point::ORIGIN, 160, 20))
        .unwrap();
    let slow = dp.kit.design.derive_class("GenAdder.S", dp.generic);
    dp.kit
        .analyzer
        .declare_delay(&mut dp.kit.design, slow, "a", "s");
    dp.kit
        .analyzer
        .set_estimate(&mut dp.kit.design, slow, "a", "s", 9.0)
        .unwrap();
    dp.kit
        .design
        .set_class_bounding_box(slow, Rect::with_extent(Point::ORIGIN, 80, 20))
        .unwrap();

    // The 10D budget leaves 6D for the adder: only the fast one fits.
    let out = select_realizations(
        &mut dp.kit.design,
        &mut dp.kit.analyzer,
        dp.adder_inst,
        &SelectionOptions::default(),
    )
    .unwrap();
    assert_eq!(out.valid, vec![fast]);

    // Improving the front stage relaxes the budget; both now qualify —
    // the decision genuinely depended on the rest of the design.
    let front = dp.kit.design.class_by_name("FrontStage").unwrap();
    dp.kit
        .analyzer
        .clear_estimate(&mut dp.kit.design, front, "a", "s");
    dp.kit
        .analyzer
        .set_estimate(&mut dp.kit.design, front, "a", "s", 1.0)
        .unwrap();
    let out = select_realizations(
        &mut dp.kit.design,
        &mut dp.kit.analyzer,
        dp.adder_inst,
        &SelectionOptions::default(),
    )
    .unwrap();
    assert_eq!(out.valid, vec![fast, slow]);
}

#[test]
fn signal_types_refine_incrementally_across_uses() {
    // §7.1's closing claim: "type specifications of a cell's signals can
    // be incrementally refined by different uses of the cell".
    let mut kit = CellKit::new();
    let cell = adder8_interface(&mut kit, "Shared");
    let d = &mut kit.design;

    // Context 1 types the net (hence the shared class signal) as Digital.
    let ctx1 = d.define_class("Ctx1");
    let i1 = d
        .instantiate(cell, ctx1, "u1", Transform::IDENTITY)
        .unwrap();
    let n1 = d.add_net(ctx1, "n1");
    d.connect(n1, i1, "a").unwrap();
    let (_, _, net_et) = d.net_type_vars(n1);
    let digital = d.forests().borrow().electrical.tag("Digital").unwrap();
    d.network_mut()
        .set(
            net_et,
            Value::TypeRef(digital),
            stem::core::Justification::User,
        )
        .unwrap();

    // Context 2 refines it further to CMOS through a different instance.
    let ctx2 = d.define_class("Ctx2");
    let i2 = d
        .instantiate(cell, ctx2, "u2", Transform::IDENTITY)
        .unwrap();
    let n2 = d.add_net(ctx2, "n2");
    d.connect(n2, i2, "a").unwrap();
    let (_, _, net_et2) = d.net_type_vars(n2);
    let cmos = d.forests().borrow().electrical.tag("CMOS").unwrap();
    d.network_mut()
        .set(
            net_et2,
            Value::TypeRef(cmos),
            stem::core::Justification::User,
        )
        .unwrap();

    // The class-side signal now carries the least abstract refinement.
    let sig = d.signal_def(cell, "a").unwrap().class_electrical_type;
    assert_eq!(d.network().value(sig).as_type(), Some(cmos));

    // And a third context demanding TTL conflicts.
    let ctx3 = d.define_class("Ctx3");
    let i3 = d
        .instantiate(cell, ctx3, "u3", Transform::IDENTITY)
        .unwrap();
    let n3 = d.add_net(ctx3, "n3");
    d.connect(n3, i3, "a").unwrap();
    let (_, _, net_et3) = d.net_type_vars(n3);
    let ttl = d.forests().borrow().electrical.tag("TTL").unwrap();
    assert!(d
        .network_mut()
        .set(
            net_et3,
            Value::TypeRef(ttl),
            stem::core::Justification::User
        )
        .is_err());
}
