//! # STEM — constraint propagation in an object-oriented IC design environment
//!
//! This is a Rust reproduction of the system described in Tai A. Ly's thesis
//! *"Managing Design Interactions with Constraint Propagation in an
//! Object-Oriented IC Design Environment"* (University of Alberta, 1988/89;
//! published at DAC 1988). The facade re-exports every subsystem crate:
//!
//! - [`core`] — the constraint-propagation framework (thesis ch. 4–5):
//!   variables, constraints, depth-first propagation with fixed-priority
//!   agendas, justifications, dependency analysis, violation handling.
//! - [`geom`] — layout geometry substrate (points, rectangles, transforms).
//! - [`design`] — the design-environment substrate: cell classes and
//!   instances with dual variables, nets, hierarchy, lazy property variables
//!   and calculated views (ch. 3, 5, 6).
//! - [`checking`] — incremental design checking: signal types, bounding
//!   boxes, hierarchical delay networks (ch. 7).
//! - [`compilers`] — tile-based module compilers (ch. 6).
//! - [`sim`] — netlist extraction plus a gate-level simulator standing in
//!   for the external SPICE process (ch. 6).
//! - [`cells`] — a standard-cell library used by the examples and benches.
//! - [`modsel`] — module validation and selection (ch. 8).
//! - [`compact`] — the Electric-style linear-inequality satisfaction
//!   baseline of the related-work chapter (§2.1).
//! - [`engine`] — a concurrent multi-session propagation service: many
//!   independent networks behind a transactional batch API, sharded across
//!   a worker pool, with rollback, panic quarantine, step budgets,
//!   backpressure and engine-level statistics.
//! - [`persist`] — durable sessions for the engine: a segmented
//!   write-ahead log of committed command batches, snapshot checkpoints,
//!   and crash recovery (`Engine::open` rebuilds every session exactly as
//!   of its last acknowledged commit).
//! - [`server`] — a TCP frontend for the engine: a length-prefixed,
//!   CRC-framed binary protocol with pipelined batch submission, plus
//!   WAL segment shipping to read-only replica servers for query
//!   offload and failover.
//!
//! ## Quickstart
//!
//! ```
//! use stem::core::{Network, Value, Justification};
//! use stem::core::kinds::Equality;
//!
//! let mut net = Network::new();
//! let a = net.add_variable("a");
//! let b = net.add_variable("b");
//! net.add_constraint(Equality::new(), [a, b]).unwrap();
//! net.set(a, Value::Int(7), Justification::User).unwrap();
//! assert_eq!(net.value(b), &Value::Int(7));
//! ```

#![warn(missing_docs)]
pub use stem_cells as cells;
pub use stem_checking as checking;
pub use stem_compact as compact;
pub use stem_compilers as compilers;
pub use stem_core as core;
pub use stem_design as design;
pub use stem_engine as engine;
pub use stem_geom as geom;
pub use stem_modsel as modsel;
pub use stem_persist as persist;
pub use stem_server as server;
pub use stem_sim as sim;
