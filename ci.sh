#!/usr/bin/env bash
# Tier-1 CI gate: formatting, lints, release build, full test suite.
# The workspace is hermetic — everything runs with --offline.
#
# Flags:
#   --bench-compare   additionally diff the smoke-bench JSON against
#                     BENCH_baseline.json and fail on a >25% ops/s drop
set -euo pipefail
cd "$(dirname "$0")"

BENCH_COMPARE=0
for arg in "$@"; do
  case "$arg" in
    --bench-compare) BENCH_COMPARE=1 ;;
    *) echo "unknown flag: $arg" >&2; exit 2 ;;
  esac
done

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings, incl. redundant clones)"
cargo clippy --workspace --all-targets --offline -- -D warnings -W clippy::redundant-clone

echo "==> cargo build --release"
cargo build --workspace --release --offline

echo "==> cargo test"
cargo test --workspace -q --offline

echo "==> recovery fault-injection matrix (crash at every WAL byte offset)"
# Runs in release: the deterministic sweep opens an engine per possible
# crash point and the randomized differential replays ~25 seeded
# workloads. Also re-runs the persist store/fault suites at -O to catch
# release-only ordering bugs in the recovery path.
cargo test --release --offline -p stem-engine --test crash_matrix -q
cargo test --release --offline -p stem-engine --test persist -q
cargo test --release --offline -p stem-persist -q

echo "==> cargo bench --smoke (regression JSON)"
cargo bench -p stem-bench --bench propagation --offline -- --smoke
cargo bench -p stem-bench --bench propagation_planned --offline -- --smoke
cargo bench -p stem-bench --bench engine --offline -- --smoke
cargo bench -p stem-bench --bench persist --offline -- --smoke
test -s BENCH_propagation.json || { echo "missing BENCH_propagation.json"; exit 1; }
test -s BENCH_propagation_planned.json || { echo "missing BENCH_propagation_planned.json"; exit 1; }
test -s BENCH_engine.json || { echo "missing BENCH_engine.json"; exit 1; }
test -s BENCH_persist.json || { echo "missing BENCH_persist.json"; exit 1; }

if [[ "$BENCH_COMPARE" == 1 ]]; then
  echo "==> bench-compare vs BENCH_baseline.json"
  python3 tools/bench_compare.py
fi

echo "CI OK"
