#!/usr/bin/env bash
# Tier-1 CI gate: formatting, lints, release build, full test suite.
# The workspace is hermetic — everything runs with --offline.
#
# Flags:
#   --bench-compare    additionally diff the smoke-bench JSON against
#                      BENCH_baseline.json and fail on a >25% ops/s drop
#   --par-differential additionally run the parallel-replay legs in
#                      release: the 1000-network planned-vs-agenda
#                      differential (thread sweep 1/2/4/8 is inside the
#                      test), the core + engine parallel suites, and a
#                      two-run same-seed byte-identical determinism check
#                      on the 8-thread replay digest
#   --cluster-differential
#                      additionally run the stem-cluster suite in
#                      release: the 25-seed kill-leader-mid-pipeline
#                      differential (no acked batch lost or duplicated
#                      across lease-fenced failover) plus the router,
#                      shipping, and client-failover robustness legs
#   --domain-differential
#                      additionally run the domain-propagation legs in
#                      release: the 1000-network mixed
#                      interval/finite-set/single differential (agenda
#                      vs planned twins, byte-identical values and
#                      domain counters, subsumption-mark parity) plus
#                      the core domain-kind unit suite
set -euo pipefail
cd "$(dirname "$0")"

BENCH_COMPARE=0
PAR_DIFFERENTIAL=0
CLUSTER_DIFFERENTIAL=0
DOMAIN_DIFFERENTIAL=0
for arg in "$@"; do
  case "$arg" in
    --bench-compare) BENCH_COMPARE=1 ;;
    --par-differential) PAR_DIFFERENTIAL=1 ;;
    --cluster-differential) CLUSTER_DIFFERENTIAL=1 ;;
    --domain-differential) DOMAIN_DIFFERENTIAL=1 ;;
    *) echo "unknown flag: $arg" >&2; exit 2 ;;
  esac
done

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings, incl. redundant clones)"
cargo clippy --workspace --all-targets --offline -- -D warnings -W clippy::redundant-clone

echo "==> cargo build --release"
cargo build --workspace --release --offline

echo "==> cargo test"
cargo test --workspace -q --offline

echo "==> recovery fault-injection matrix (crash at every WAL byte offset)"
# Runs in release: the deterministic sweep opens an engine per possible
# crash point and the randomized differential replays ~25 seeded
# workloads. Also re-runs the persist store/fault suites at -O to catch
# release-only ordering bugs in the recovery path.
cargo test --release --offline -p stem-engine --test crash_matrix -q
cargo test --release --offline -p stem-engine --test persist -q
cargo test --release --offline -p stem-persist -q
# Kill-leader/promote-follower leg: byte-identical leader/follower state
# across 25 seeded workloads (in-process shipping), then the same fleet
# choreography over real loopback TCP through stem-server.
cargo test --release --offline -p stem-engine --test replication -q
cargo test --release --offline -p stem-server --test replication -q

echo "==> server loopback smoke (ephemeral port, example client, clean shutdown)"
# remote_session spawns a stem-server on 127.0.0.1:0, drives it with a
# pipelined client, and exits 0 only after a clean client-requested
# shutdown; the timeout turns a hung accept/reply loop into a failure.
timeout 120 cargo run --release --offline --example remote_session > /dev/null

echo "==> cargo bench --smoke (regression JSON)"
cargo bench -p stem-bench --bench propagation --offline -- --smoke
cargo bench -p stem-bench --bench propagation_planned --offline -- --smoke
cargo bench -p stem-bench --bench domains --offline -- --smoke
cargo bench -p stem-bench --bench engine --offline -- --smoke
cargo bench -p stem-bench --bench persist --offline -- --smoke
cargo bench -p stem-bench --bench server --offline -- --smoke
test -s BENCH_propagation.json || { echo "missing BENCH_propagation.json"; exit 1; }
test -s BENCH_propagation_planned.json || { echo "missing BENCH_propagation_planned.json"; exit 1; }
test -s BENCH_domains.json || { echo "missing BENCH_domains.json"; exit 1; }
test -s BENCH_engine.json || { echo "missing BENCH_engine.json"; exit 1; }
test -s BENCH_persist.json || { echo "missing BENCH_persist.json"; exit 1; }
test -s BENCH_server.json || { echo "missing BENCH_server.json"; exit 1; }

echo "==> durability gap gate (interval_sync within 10% of volatile)"
# The buffered-append + group-commit work closed the WAL gap; hold it
# closed. Uses min_ns (best sample) for load tolerance, like the
# baseline compare.
python3 - << 'PY'
import json
r = {e["id"]: e["min_ns"] for e in json.load(open("BENCH_engine.json"))["results"]}
vol = 1e9 / r["engine/durability_chain100/volatile"]
ivl = 1e9 / r["engine/durability_chain100/interval_sync"]
print(f"volatile {vol:.0f} ops/s, interval_sync {ivl:.0f} ops/s ({ivl/vol:.2%})")
assert ivl >= 0.9 * vol, "interval_sync fell >10% below volatile"
PY

if [[ "$PAR_DIFFERENTIAL" == 1 ]]; then
  echo "==> parallel replay differential (thread sweep 1/2/4/8, release)"
  # The differential asserts byte-identical values, justifications,
  # stats, violations, and final-check order between the agenda
  # interpreter and planned replay at every swept thread count.
  cargo test --release --offline -p stem-core --test planned_differential -q
  cargo test --release --offline -p stem-core --test parallel -q
  cargo test --release --offline -p stem-engine --test parallel -q

  echo "==> parallel replay determinism (two same-seed runs, byte-identical)"
  cargo run --release --offline -p stem-core --example par_replay_digest > /tmp/par_digest_1.txt 2>/dev/null
  cargo run --release --offline -p stem-core --example par_replay_digest > /tmp/par_digest_2.txt 2>/dev/null
  diff /tmp/par_digest_1.txt /tmp/par_digest_2.txt \
    || { echo "parallel replay digest differs between same-seed runs"; exit 1; }
  grep -q "plan_replays_parallel: [1-9]" /tmp/par_digest_1.txt \
    || { echo "digest never exercised the parallel replay path"; exit 1; }
  grep -q "plan_replays_wavefront: [1-9]" /tmp/par_digest_1.txt \
    || { echo "digest never exercised the wavefront replay path"; exit 1; }
  rm -f /tmp/par_digest_1.txt /tmp/par_digest_2.txt
fi

if [[ "$CLUSTER_DIFFERENTIAL" == 1 ]]; then
  echo "==> cluster differential (25-seed kill-leader, release)"
  # The cluster suite's headline test feeds a durable 2-shard cluster
  # and a volatile twin identical seeded workloads, kills a shard leader
  # with batches still pipelined, and requires byte-identical per-batch
  # results, dumps, and violation reports after promotion. The server
  # suite rides along: timeout eviction, Busy caps, and the
  # failover-client no-loss/no-double-apply check.
  cargo test --release --offline -p stem-server --test cluster -q
  cargo test --release --offline -p stem-server --test server -q
fi

if [[ "$DOMAIN_DIFFERENTIAL" == 1 ]]; then
  echo "==> domain propagation differential (1000 mixed-domain networks, release)"
  # Byte-identical values/justifications/outcomes between the agenda
  # interpreter and every planned twin, identical domain counters
  # (tightenings, subsumed prunes, wipeouts), and identical live
  # subsumption marks — under mid-run structural edits and
  # set_subsumption toggles.
  cargo test --release --offline -p stem-core --test domain_differential -q
  cargo test --release --offline -p stem-core --lib kinds::domain -q
fi

if [[ "$BENCH_COMPARE" == 1 ]]; then
  echo "==> bench-compare vs BENCH_baseline.json"
  python3 tools/bench_compare.py
fi

echo "CI OK"
