#!/usr/bin/env bash
# Tier-1 CI gate: formatting, lints, release build, full test suite.
# The workspace is hermetic — everything runs with --offline.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings, incl. redundant clones)"
cargo clippy --workspace --all-targets --offline -- -D warnings -W clippy::redundant-clone

echo "==> cargo build --release"
cargo build --workspace --release --offline

echo "==> cargo test"
cargo test --workspace -q --offline

echo "==> cargo bench --smoke (regression JSON)"
cargo bench -p stem-bench --bench propagation --offline -- --smoke
cargo bench -p stem-bench --bench engine --offline -- --smoke
test -s BENCH_propagation.json || { echo "missing BENCH_propagation.json"; exit 1; }
test -s BENCH_engine.json || { echo "missing BENCH_engine.json"; exit 1; }

echo "CI OK"
