#!/usr/bin/env bash
# Tier-1 CI gate: formatting, lints, release build, full test suite.
# The workspace is hermetic — everything runs with --offline.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo build --release"
cargo build --workspace --release --offline

echo "==> cargo test"
cargo test --workspace -q --offline

echo "CI OK"
