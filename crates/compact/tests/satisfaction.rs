//! Randomised (seeded, fully deterministic) tests of the satisfaction
//! solver, plus the two bridge experiments of thesis §2.1.1 / §7.4:
//!
//! - a compacted solution can be *verified* by a STEM constraint network
//!   (propagation checks what satisfaction solved) — experiment E16;
//! - the centering relation Electric cannot express as linear
//!   inequalities is a one-liner functional constraint in STEM.

use stem_compact::{compact_row, CompactionGraph, RowSpec};
use stem_core::kinds::{Functional, Predicate};
use stem_core::prng::SplitMix64;
use stem_core::{Justification, Network, Value};

const ITERS: usize = 48;

/// Every solution satisfies every constraint, and each position is tight:
/// reducing it by 1 would break some constraint (leftmost /
/// maximally-constrained-path property).
#[test]
fn solutions_satisfy_and_are_tight() {
    let mut rng = SplitMix64::new(0xC0_01);
    for _ in 0..ITERS {
        let widths: Vec<i64> = (0..rng.range_usize(2, 20))
            .map(|_| rng.range_i64(1, 30))
            .collect();
        let seps: Vec<i64> = (0..rng.range_usize(2, 20))
            .map(|_| rng.range_i64(0, 5))
            .collect();
        let mut g = CompactionGraph::new();
        let ids: Vec<_> = widths.iter().map(|&w| g.add_element(w)).collect();
        let mut constraints: Vec<(usize, usize, i64)> = Vec::new();
        for (i, w) in ids.windows(2).enumerate() {
            let sep = seps[i % seps.len()];
            g.min_separation(w[0], w[1], sep);
            constraints.push((i, i + 1, widths[i] + sep));
        }
        // A few random long-range orderings (always left→right: no cycles).
        for _ in 0..widths.len() / 2 {
            let i = rng.range_usize(0, widths.len());
            let j = rng.range_usize(0, widths.len());
            if i < j {
                let d = rng.range_i64(0, 40);
                g.min_distance(ids[i], ids[j], d);
                constraints.push((i, j, d));
            }
        }
        let sol = g.solve().unwrap();
        // Satisfied:
        for &(a, b, d) in &constraints {
            assert!(sol.position(ids[b]) >= sol.position(ids[a]) + d);
        }
        // Non-negative and tight:
        for (i, &id) in ids.iter().enumerate() {
            let x = sol.position(id);
            assert!(x >= 0);
            if x > 0 {
                // Some incoming constraint must pin x exactly.
                let tight = constraints
                    .iter()
                    .any(|&(a, b, d)| b == i && sol.position(ids[a]) + d == x);
                assert!(tight, "position {x} of e{i} is not maximally constrained");
            }
        }
    }
}

/// Row compaction width equals the sum of widths plus separations when no
/// extra constraints stretch it.
#[test]
fn plain_row_width_is_exact() {
    let mut rng = SplitMix64::new(0xC0_02);
    for _ in 0..ITERS {
        let widths: Vec<i64> = (0..rng.range_usize(1, 30))
            .map(|_| rng.range_i64(1, 50))
            .collect();
        let sep = rng.range_i64(0, 10);
        let mut spec = RowSpec {
            min_separation: sep,
            ..Default::default()
        };
        for (i, &w) in widths.iter().enumerate() {
            spec.cell(format!("c{i}"), w);
        }
        let (sol, _) = compact_row(&spec).unwrap();
        let expect: i64 = widths.iter().sum::<i64>() + sep * (widths.len() as i64 - 1);
        assert_eq!(sol.total_extent, expect);
    }
}

/// E16 — satisfaction solves, propagation verifies: the compacted
/// placement is loaded into a STEM network whose predicates encode the
/// same inequalities; the network accepts the solution and rejects a
/// perturbed one.
#[test]
fn compacted_solution_verifies_in_a_stem_network() {
    let mut spec = RowSpec {
        min_separation: 2,
        ..Default::default()
    };
    let widths = [6i64, 8, 12, 6, 8];
    for (i, &w) in widths.iter().enumerate() {
        spec.cell(format!("c{i}"), w);
    }
    spec.exact_offsets.push((0, 3, 40));
    let (sol, ids) = compact_row(&spec).unwrap();

    // Mirror the constraints as STEM predicates over position variables.
    let mut net = Network::new();
    let xs: Vec<_> = (0..widths.len())
        .map(|i| net.add_variable(format!("x{i}")))
        .collect();
    for i in 0..widths.len() - 1 {
        let gap = widths[i] + 2;
        net.add_constraint(
            Predicate::custom("minSep", move |vals| {
                match (vals[0].as_i64(), vals[1].as_i64()) {
                    (Some(a), Some(b)) => b >= a + gap,
                    _ => true,
                }
            }),
            [xs[i], xs[i + 1]],
        )
        .unwrap();
    }
    net.add_constraint(
        Predicate::custom("exactOffset", |vals| {
            match (vals[0].as_i64(), vals[1].as_i64()) {
                (Some(a), Some(b)) => b == a + 40,
                _ => true,
            }
        }),
        [xs[0], xs[3]],
    )
    .unwrap();

    // Loading the solved placement raises no violations…
    for (i, &x) in xs.iter().enumerate() {
        net.set(
            x,
            Value::Int(sol.position(ids[i])),
            Justification::Application,
        )
        .unwrap();
    }
    assert!(net.check_all().is_empty());
    // …while perturbing one cell violates immediately.
    assert!(net
        .set(
            xs[1],
            Value::Int(sol.position(ids[1]) - 1),
            Justification::User
        )
        .is_err());
}

/// §2.1.1: "the constraint that a component must be centered between two
/// others cannot be expressed in terms of linear inequality constraints in
/// Electric's constraint system" — in STEM it is one functional
/// constraint.
#[test]
fn centering_is_inexpressible_linearly_but_trivial_in_stem() {
    // STEM side: mid = (left + right) / 2, kept live by propagation.
    let mut net = Network::new();
    let left = net.add_variable("left");
    let right = net.add_variable("right");
    let mid = net.add_variable("mid");
    net.add_constraint(
        Functional::custom("centerOf", |vals| {
            Some(Value::Int((vals[0].as_i64()? + vals[1].as_i64()?) / 2))
        }),
        [left, right, mid],
    )
    .unwrap();
    net.set(left, Value::Int(10), Justification::User).unwrap();
    net.set(right, Value::Int(50), Justification::User).unwrap();
    assert_eq!(net.value(mid), &Value::Int(30));
    // Moving an anchor re-centres automatically.
    net.set(right, Value::Int(90), Justification::User).unwrap();
    assert_eq!(net.value(mid), &Value::Int(50));

    // Electric side: min-distance inequalities can sandwich `mid` but the
    // sandwich does not re-centre when an anchor moves — the leftmost
    // solution hugs the lower bound instead of the centre.
    let mut g = CompactionGraph::new();
    let l = g.add_element(0);
    let r = g.add_element(0);
    let m = g.add_element(0);
    g.fix(l, 10);
    g.fix(r, 90);
    g.min_distance(l, m, 1);
    g.min_distance(m, r, 1);
    let sol = g.solve().unwrap();
    assert_eq!(sol.position(m), 11, "leftmost, not centred (50)");
}

/// 2D compaction of random non-overlapping placements is overlap-free and
/// never grows the bounding box.
#[test]
fn compact_2d_is_overlap_free_and_shrinks() {
    use stem_compact::compact_2d;
    use stem_geom::{Point, Rect};
    let mut rng = SplitMix64::new(0xC0_03);
    for _ in 0..ITERS {
        let cells: Vec<((i64, i64), (i64, i64))> = (0..rng.range_usize(1, 12))
            .map(|_| {
                (
                    (rng.range_i64(0, 8), rng.range_i64(0, 8)),
                    (rng.range_i64(2, 12), rng.range_i64(2, 12)),
                )
            })
            .collect();
        let spacing = rng.range_i64(0, 3);
        // Place on a coarse grid so inputs never overlap.
        let rects: Vec<Rect> = cells
            .iter()
            .enumerate()
            .map(|(i, ((gx, gy), (w, h)))| {
                let gx = (gx + i as i64) % 8;
                let gy = (gy + i as i64 / 8) % 8;
                Rect::with_extent(Point::new(gx * 20, gy * 20), *w, *h)
            })
            .collect();
        // Deduplicate identical grid slots (two cells in one slot overlap).
        let mut seen = std::collections::HashSet::new();
        let rects: Vec<Rect> = rects.into_iter().filter(|r| seen.insert(r.min())).collect();
        let pos = compact_2d(&rects, spacing).unwrap();
        let out: Vec<Rect> = rects
            .iter()
            .zip(&pos)
            .map(|(r, p)| Rect::with_extent(*p, r.width(), r.height()))
            .collect();
        for (i, a) in out.iter().enumerate() {
            for b in &out[i + 1..] {
                if let Some(x) = a.intersection(*b) {
                    assert!(x.is_empty(), "{a} overlaps {b}");
                }
            }
        }
        if spacing == 0 {
            let before = Rect::union_all(rects.iter().copied()).unwrap();
            let after = Rect::union_all(out.iter().copied()).unwrap();
            assert!(
                after.area() <= before.area(),
                "compaction must not grow: {} -> {}",
                before.area(),
                after.area()
            );
        }
    }
}
