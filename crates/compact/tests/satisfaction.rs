//! Property tests of the satisfaction solver, plus the two bridge
//! experiments of thesis §2.1.1 / §7.4:
//!
//! - a compacted solution can be *verified* by a STEM constraint network
//!   (propagation checks what satisfaction solved) — experiment E16;
//! - the centering relation Electric cannot express as linear
//!   inequalities is a one-liner functional constraint in STEM.

use proptest::prelude::*;
use stem_compact::{compact_row, CompactionGraph, RowSpec};
use stem_core::kinds::{Functional, Predicate};
use stem_core::{Justification, Network, Value};

proptest! {
    /// Every solution satisfies every constraint, and each position is
    /// tight: reducing it by 1 would break some constraint (leftmost /
    /// maximally-constrained-path property).
    #[test]
    fn solutions_satisfy_and_are_tight(
        widths in proptest::collection::vec(1i64..30, 2..20),
        seps in proptest::collection::vec(0i64..5, 2..20),
        extra_seed in any::<u64>(),
    ) {
        let mut g = CompactionGraph::new();
        let ids: Vec<_> = widths.iter().map(|&w| g.add_element(w)).collect();
        let mut constraints: Vec<(usize, usize, i64)> = Vec::new();
        for (i, w) in ids.windows(2).enumerate() {
            let sep = seps[i % seps.len()];
            g.min_separation(w[0], w[1], sep);
            constraints.push((i, i + 1, widths[i] + sep));
        }
        // A few random long-range orderings (always left→right: no cycles).
        let mut s = extra_seed;
        for _ in 0..widths.len() / 2 {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let i = (s >> 33) as usize % widths.len();
            let j = (s >> 17) as usize % widths.len();
            if i < j {
                let d = (s % 40) as i64;
                g.min_distance(ids[i], ids[j], d);
                constraints.push((i, j, d));
            }
        }
        let sol = g.solve().unwrap();
        // Satisfied:
        for &(a, b, d) in &constraints {
            prop_assert!(sol.position(ids[b]) >= sol.position(ids[a]) + d);
        }
        // Non-negative and tight:
        for (i, &id) in ids.enumerate_helper() {
            let x = sol.position(id);
            prop_assert!(x >= 0);
            if x > 0 {
                // Some incoming constraint must pin x exactly.
                let tight = constraints
                    .iter()
                    .any(|&(a, b, d)| b == i && sol.position(ids[a]) + d == x);
                prop_assert!(tight, "position {x} of e{i} is not maximally constrained");
            }
        }
    }

    /// Row compaction width equals the sum of widths plus separations when
    /// no extra constraints stretch it.
    #[test]
    fn plain_row_width_is_exact(
        widths in proptest::collection::vec(1i64..50, 1..30),
        sep in 0i64..10,
    ) {
        let mut spec = RowSpec { min_separation: sep, ..Default::default() };
        for (i, &w) in widths.iter().enumerate() {
            spec.cell(format!("c{i}"), w);
        }
        let (sol, _) = compact_row(&spec).unwrap();
        let expect: i64 = widths.iter().sum::<i64>() + sep * (widths.len() as i64 - 1);
        prop_assert_eq!(sol.total_extent, expect);
    }
}

/// Tiny helper: enumerate with index over a slice of ids.
trait EnumerateHelper {
    fn enumerate_helper(&self) -> std::iter::Enumerate<std::slice::Iter<'_, stem_compact::ElementId>>;
}

impl EnumerateHelper for Vec<stem_compact::ElementId> {
    fn enumerate_helper(&self) -> std::iter::Enumerate<std::slice::Iter<'_, stem_compact::ElementId>> {
        self.iter().enumerate()
    }
}

/// E16 — satisfaction solves, propagation verifies: the compacted
/// placement is loaded into a STEM network whose predicates encode the
/// same inequalities; the network accepts the solution and rejects a
/// perturbed one.
#[test]
fn compacted_solution_verifies_in_a_stem_network() {
    let mut spec = RowSpec {
        min_separation: 2,
        ..Default::default()
    };
    let widths = [6i64, 8, 12, 6, 8];
    for (i, &w) in widths.iter().enumerate() {
        spec.cell(format!("c{i}"), w);
    }
    spec.exact_offsets.push((0, 3, 40));
    let (sol, ids) = compact_row(&spec).unwrap();

    // Mirror the constraints as STEM predicates over position variables.
    let mut net = Network::new();
    let xs: Vec<_> = (0..widths.len())
        .map(|i| net.add_variable(format!("x{i}")))
        .collect();
    for i in 0..widths.len() - 1 {
        let gap = widths[i] + 2;
        net.add_constraint(
            Predicate::custom("minSep", move |vals| {
                match (vals[0].as_i64(), vals[1].as_i64()) {
                    (Some(a), Some(b)) => b >= a + gap,
                    _ => true,
                }
            }),
            [xs[i], xs[i + 1]],
        )
        .unwrap();
    }
    net.add_constraint(
        Predicate::custom("exactOffset", |vals| {
            match (vals[0].as_i64(), vals[1].as_i64()) {
                (Some(a), Some(b)) => b == a + 40,
                _ => true,
            }
        }),
        [xs[0], xs[3]],
    )
    .unwrap();

    // Loading the solved placement raises no violations…
    for (i, &x) in xs.iter().enumerate() {
        net.set(x, Value::Int(sol.position(ids[i])), Justification::Application)
            .unwrap();
    }
    assert!(net.check_all().is_empty());
    // …while perturbing one cell violates immediately.
    assert!(net
        .set(xs[1], Value::Int(sol.position(ids[1]) - 1), Justification::User)
        .is_err());
}

/// §2.1.1: "the constraint that a component must be centered between two
/// others cannot be expressed in terms of linear inequality constraints in
/// Electric's constraint system" — in STEM it is one functional
/// constraint.
#[test]
fn centering_is_inexpressible_linearly_but_trivial_in_stem() {
    // STEM side: mid = (left + right) / 2, kept live by propagation.
    let mut net = Network::new();
    let left = net.add_variable("left");
    let right = net.add_variable("right");
    let mid = net.add_variable("mid");
    net.add_constraint(
        Functional::custom("centerOf", |vals| {
            Some(Value::Int((vals[0].as_i64()? + vals[1].as_i64()?) / 2))
        }),
        [left, right, mid],
    )
    .unwrap();
    net.set(left, Value::Int(10), Justification::User).unwrap();
    net.set(right, Value::Int(50), Justification::User).unwrap();
    assert_eq!(net.value(mid), &Value::Int(30));
    // Moving an anchor re-centres automatically.
    net.set(right, Value::Int(90), Justification::User).unwrap();
    assert_eq!(net.value(mid), &Value::Int(50));

    // Electric side: min-distance inequalities can sandwich `mid` but the
    // sandwich does not re-centre when an anchor moves — the leftmost
    // solution hugs the lower bound instead of the centre.
    let mut g = CompactionGraph::new();
    let l = g.add_element(0);
    let r = g.add_element(0);
    let m = g.add_element(0);
    g.fix(l, 10);
    g.fix(r, 90);
    g.min_distance(l, m, 1);
    g.min_distance(m, r, 1);
    let sol = g.solve().unwrap();
    assert_eq!(sol.position(m), 11, "leftmost, not centred (50)");
}

proptest! {
    /// 2D compaction of random non-overlapping placements is overlap-free
    /// and never grows the bounding box.
    #[test]
    fn compact_2d_is_overlap_free_and_shrinks(
        cells in proptest::collection::vec(
            ((0i64..8, 0i64..8), (2i64..12, 2i64..12)),
            1..12,
        ),
        spacing in 0i64..3,
    ) {
        use stem_compact::compact_2d;
        use stem_geom::{Point, Rect};
        // Place on a coarse grid so inputs never overlap.
        let rects: Vec<Rect> = cells
            .iter()
            .enumerate()
            .map(|(i, ((gx, gy), (w, h)))| {
                let gx = (gx + i as i64) % 8;
                let gy = (gy + i as i64 / 8) % 8;
                Rect::with_extent(Point::new(gx * 20, gy * 20), *w, *h)
            })
            .collect();
        // Deduplicate identical grid slots (two cells in one slot overlap).
        let mut seen = std::collections::HashSet::new();
        let rects: Vec<Rect> = rects
            .into_iter()
            .filter(|r| seen.insert(r.min()))
            .collect();
        let pos = compact_2d(&rects, spacing).unwrap();
        let out: Vec<Rect> = rects
            .iter()
            .zip(&pos)
            .map(|(r, p)| Rect::with_extent(*p, r.width(), r.height()))
            .collect();
        for (i, a) in out.iter().enumerate() {
            for b in &out[i + 1..] {
                if let Some(x) = a.intersection(*b) {
                    prop_assert!(x.is_empty(), "{a} overlaps {b}");
                }
            }
        }
        if spacing == 0 {
            let before = Rect::union_all(rects.iter().copied()).unwrap();
            let after = Rect::union_all(out.iter().copied()).unwrap();
            prop_assert!(after.area() <= before.area(),
                "compaction must not grow: {} -> {}", before.area(), after.area());
        }
    }
}
