//! The 1D constraint graph and its longest-path solver.

use std::error::Error;
use std::fmt;

/// Handle to a layout element in a [`CompactionGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ElementId(u32);

impl ElementId {
    /// Arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ElementId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// The constraint system is infeasible: a positive cycle exists in the
/// constraint graph (e.g. contradictory exact offsets).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Infeasible {
    /// An edge still relaxable after |V| passes (part of the cycle).
    pub witness: (usize, usize, i64),
}

impl fmt::Display for Infeasible {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (u, v, w) = self.witness;
        write!(
            f,
            "infeasible constraint system (positive cycle through x{v} >= x{u} + {w})"
        )
    }
}

impl Error for Infeasible {}

/// A solved placement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Compacted {
    positions: Vec<i64>,
    widths: Vec<i64>,
    /// Rightmost extent of any element (the compacted row width).
    pub total_extent: i64,
}

impl Compacted {
    /// Left edge of an element.
    pub fn position(&self, e: ElementId) -> i64 {
        self.positions[e.index()]
    }

    /// Right edge of an element.
    pub fn right_edge(&self, e: ElementId) -> i64 {
        self.positions[e.index()] + self.widths[e.index()]
    }

    /// All left-edge positions, indexed by element.
    pub fn positions(&self) -> &[i64] {
        &self.positions
    }
}

/// A horizontal (or vertical) constraint graph over layout elements
/// (thesis §2.1): variables are element positions, edges are linear
/// inequalities `x_to ≥ x_from + w`.
#[derive(Debug, Clone, Default)]
pub struct CompactionGraph {
    widths: Vec<i64>,
    /// `(from, to, w)` meaning `x_to ≥ x_from + w`.
    edges: Vec<(usize, usize, i64)>,
    /// Pinned absolute positions (element, position).
    fixed: Vec<(usize, i64)>,
}

impl CompactionGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a layout element of the given width.
    ///
    /// # Panics
    ///
    /// Panics on negative width.
    pub fn add_element(&mut self, width: i64) -> ElementId {
        assert!(width >= 0, "negative width");
        let id = ElementId(self.widths.len() as u32);
        self.widths.push(width);
        id
    }

    /// Number of elements.
    pub fn n_elements(&self) -> usize {
        self.widths.len()
    }

    /// Width of an element.
    pub fn width(&self, e: ElementId) -> i64 {
        self.widths[e.index()]
    }

    /// Raw linear inequality: `x_b ≥ x_a + d`.
    pub fn min_distance(&mut self, a: ElementId, b: ElementId, d: i64) {
        self.edges.push((a.index(), b.index(), d));
    }

    /// Design-rule separation: `b`'s left edge at least `sep` past `a`'s
    /// right edge (`x_b ≥ x_a + width(a) + sep`).
    pub fn min_separation(&mut self, a: ElementId, b: ElementId, sep: i64) {
        let w = self.widths[a.index()];
        self.min_distance(a, b, w + sep);
    }

    /// Exact offset: `x_b = x_a + d` (connectivity / abutment), encoded as
    /// two opposing inequalities.
    pub fn exact_offset(&mut self, a: ElementId, b: ElementId, d: i64) {
        self.min_distance(a, b, d);
        self.min_distance(b, a, -d);
    }

    /// Abutment: `b` starts exactly at `a`'s right edge.
    pub fn abut(&mut self, a: ElementId, b: ElementId) {
        let w = self.widths[a.index()];
        self.exact_offset(a, b, w);
    }

    /// Pins an element at an absolute position (both a lower and an upper
    /// bound).
    pub fn fix(&mut self, a: ElementId, pos: i64) {
        self.fixed.push((a.index(), pos));
    }

    /// Solves for leftmost positions by longest paths from the virtual
    /// origin (Bellman–Ford over the inequality graph).
    ///
    /// Every element implicitly satisfies `x ≥ 0`.
    ///
    /// # Errors
    ///
    /// [`Infeasible`] when the constraints contain a positive cycle.
    pub fn solve(&self) -> Result<Compacted, Infeasible> {
        let n = self.widths.len();
        // dist[i] = longest constraint path to element i; the implicit
        // x ≥ 0 floor seeds every node at 0.
        let mut dist = vec![0i64; n];
        let mut all_edges = self.edges.clone();
        for &(i, pos) in &self.fixed {
            // Lower bound x_i ≥ pos from the implicit origin (usize::MAX
            // marks it, at distance 0); the matching upper bound x_i ≤ pos
            // is verified after relaxation, since Bellman–Ford only pushes
            // lower bounds upward.
            all_edges.push((usize::MAX, i, pos));
        }
        let upper_bounds: Vec<(usize, i64)> = self.fixed.clone();
        for _ in 0..=n {
            let mut changed = false;
            for &(u, v, w) in &all_edges {
                let du = if u == usize::MAX { 0 } else { dist[u] };
                if du + w > dist[v] {
                    dist[v] = du + w;
                    changed = true;
                }
            }
            if !changed {
                // Early convergence.
                let compacted = self.finish(dist, &upper_bounds)?;
                return Ok(compacted);
            }
        }
        // Still changing after n+1 passes: positive cycle.
        for &(u, v, w) in &all_edges {
            let du = if u == usize::MAX { 0 } else { dist[u] };
            if du + w > dist[v] {
                return Err(Infeasible {
                    witness: (if u == usize::MAX { v } else { u }, v, w),
                });
            }
        }
        self.finish(dist, &upper_bounds)
    }

    fn finish(
        &self,
        dist: Vec<i64>,
        upper_bounds: &[(usize, i64)],
    ) -> Result<Compacted, Infeasible> {
        // Fixed positions are equalities: the longest path must not have
        // pushed a pinned element past its pin.
        for &(i, pos) in upper_bounds {
            if dist[i] > pos {
                return Err(Infeasible {
                    witness: (i, i, dist[i] - pos),
                });
            }
        }
        let total_extent = dist
            .iter()
            .zip(&self.widths)
            .map(|(&x, &w)| x + w)
            .max()
            .unwrap_or(0);
        Ok(Compacted {
            positions: dist,
            widths: self.widths.clone(),
            total_extent,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_packs_leftmost() {
        let mut g = CompactionGraph::new();
        let a = g.add_element(10);
        let b = g.add_element(5);
        g.min_separation(a, b, 3);
        let s = g.solve().unwrap();
        assert_eq!(s.position(a), 0);
        assert_eq!(s.position(b), 13);
        assert_eq!(s.total_extent, 18);
        assert_eq!(s.right_edge(b), 18);
    }

    #[test]
    fn order_of_insertion_is_irrelevant() {
        let mut g = CompactionGraph::new();
        let a = g.add_element(4);
        let b = g.add_element(4);
        let c = g.add_element(4);
        // Wire constraints backwards.
        g.min_separation(b, c, 1);
        g.min_separation(a, b, 1);
        let s = g.solve().unwrap();
        assert_eq!(s.positions(), &[0, 5, 10]);
    }

    #[test]
    fn exact_offsets_and_abutment() {
        let mut g = CompactionGraph::new();
        let a = g.add_element(10);
        let b = g.add_element(10);
        let c = g.add_element(10);
        g.abut(a, b);
        g.exact_offset(a, c, 25);
        let s = g.solve().unwrap();
        assert_eq!(s.position(b), 10);
        assert_eq!(s.position(c), 25);
    }

    #[test]
    fn fixed_positions() {
        let mut g = CompactionGraph::new();
        let a = g.add_element(10);
        let b = g.add_element(10);
        g.fix(b, 100);
        g.min_separation(a, b, 0);
        let s = g.solve().unwrap();
        assert_eq!(s.position(a), 0, "a stays leftmost");
        assert_eq!(s.position(b), 100);
    }

    #[test]
    fn fixed_position_conflicts_are_infeasible() {
        let mut g = CompactionGraph::new();
        let a = g.add_element(10);
        let b = g.add_element(10);
        g.fix(b, 5);
        g.min_separation(a, b, 0); // needs x_b >= 10
        assert!(g.solve().is_err());
    }

    #[test]
    fn contradictory_exact_offsets_are_infeasible() {
        let mut g = CompactionGraph::new();
        let a = g.add_element(1);
        let b = g.add_element(1);
        g.exact_offset(a, b, 5);
        g.exact_offset(a, b, 6);
        let err = g.solve().unwrap_err();
        let _ = err.to_string();
    }

    #[test]
    fn positive_cycle_detected() {
        let mut g = CompactionGraph::new();
        let a = g.add_element(1);
        let b = g.add_element(1);
        g.min_distance(a, b, 3);
        g.min_distance(b, a, -3); // x_a ≥ x_b − 3 & x_b ≥ x_a + 3: tight but ok
        assert!(g.solve().is_ok());
        g.min_distance(b, a, -2); // cycle weight 3 − 2 = +1: infeasible
        assert!(g.solve().is_err());
    }

    #[test]
    fn diamond_takes_the_maximally_constrained_path() {
        // a fans to b (short) and c (long), both reach d: d's position is
        // the longest path — the thesis's "maximally constrained paths".
        let mut g = CompactionGraph::new();
        let a = g.add_element(2);
        let b = g.add_element(2);
        let c = g.add_element(20);
        let d = g.add_element(2);
        g.min_separation(a, b, 0);
        g.min_separation(a, c, 0);
        g.min_separation(b, d, 0);
        g.min_separation(c, d, 0);
        let s = g.solve().unwrap();
        assert_eq!(s.position(d), 22, "via c, not via b (which would give 6)");
    }
}
