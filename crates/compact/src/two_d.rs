//! Two-dimensional compaction by alternating 1D passes — the "vertical
//! and horizontal constraint graphs" of thesis §2.1: separation
//! constraints are generated from the layout's own adjacencies, then each
//! axis is solved by longest paths.

use crate::graph::{CompactionGraph, Infeasible};
use stem_geom::{Point, Rect};

/// Compacts a set of non-overlapping rectangles toward the origin,
/// preserving relative order on both axes and keeping at least `spacing`
/// between rectangles that face each other. Returns the new positions
/// (minimum corners), index-aligned with the input.
///
/// The classic two-pass scheme: the X pass constrains every pair whose Y
/// spans overlap (ordered by their original X), then the Y pass constrains
/// every pair whose *new* X spans overlap. Each pass is a longest-path
/// solve, so the result is leftmost/bottommost.
///
/// # Errors
///
/// [`Infeasible`] is impossible for overlap-free input (all generated
/// constraints are acyclic); it is surfaced for robustness.
///
/// # Panics
///
/// Panics if two input rectangles properly overlap.
pub fn compact_2d(rects: &[Rect], spacing: i64) -> Result<Vec<Point>, Infeasible> {
    for (i, a) in rects.iter().enumerate() {
        for b in &rects[i + 1..] {
            if let Some(x) = a.intersection(*b) {
                assert!(x.is_empty(), "input rectangles overlap: {a} and {b}");
            }
        }
    }
    let spans_overlap = |a_lo: i64, a_hi: i64, b_lo: i64, b_hi: i64| a_lo < b_hi && b_lo < a_hi;

    // X pass.
    let mut gx = CompactionGraph::new();
    let ids: Vec<_> = rects.iter().map(|r| gx.add_element(r.width())).collect();
    for i in 0..rects.len() {
        for j in 0..rects.len() {
            if i == j {
                continue;
            }
            let (a, b) = (rects[i], rects[j]);
            if spans_overlap(a.min().y, a.max().y, b.min().y, b.max().y)
                && a.min().x <= b.min().x
                && (a.min().x < b.min().x || i < j)
            {
                gx.min_separation(ids[i], ids[j], spacing);
            }
        }
    }
    let sx = gx.solve()?;

    // Y pass against the new X positions.
    let mut gy = CompactionGraph::new();
    let idsy: Vec<_> = rects.iter().map(|r| gy.add_element(r.height())).collect();
    for i in 0..rects.len() {
        for j in 0..rects.len() {
            if i == j {
                continue;
            }
            let (a, b) = (rects[i], rects[j]);
            let (ax, bx) = (sx.position(ids[i]), sx.position(ids[j]));
            if spans_overlap(ax, ax + a.width(), bx, bx + b.width())
                && a.min().y <= b.min().y
                && (a.min().y < b.min().y || i < j)
            {
                gy.min_separation(idsy[i], idsy[j], spacing);
            }
        }
    }
    let sy = gy.solve()?;

    Ok((0..rects.len())
        .map(|i| Point::new(sx.position(ids[i]), sy.position(idsy[i])))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(x: i64, y: i64, w: i64, h: i64) -> Rect {
        Rect::with_extent(Point::new(x, y), w, h)
    }

    fn placed(rects: &[Rect], positions: &[Point]) -> Vec<Rect> {
        rects
            .iter()
            .zip(positions)
            .map(|(r0, p)| Rect::with_extent(*p, r0.width(), r0.height()))
            .collect()
    }

    fn overlap_free(rs: &[Rect]) -> bool {
        for (i, a) in rs.iter().enumerate() {
            for b in &rs[i + 1..] {
                if let Some(x) = a.intersection(*b) {
                    if !x.is_empty() {
                        return false;
                    }
                }
            }
        }
        true
    }

    #[test]
    fn sparse_row_slides_together() {
        let rects = [r(0, 0, 10, 10), r(50, 0, 10, 10), r(120, 0, 10, 10)];
        let pos = compact_2d(&rects, 2).unwrap();
        assert_eq!(
            pos,
            vec![Point::new(0, 0), Point::new(12, 0), Point::new(24, 0)]
        );
    }

    #[test]
    fn column_drops_down() {
        let rects = [r(0, 100, 10, 10), r(0, 40, 10, 10)];
        let pos = compact_2d(&rects, 0).unwrap();
        // Bottom-most first: the lower original lands at y = 0.
        assert_eq!(pos[1], Point::new(0, 0));
        assert_eq!(pos[0], Point::new(0, 10));
    }

    #[test]
    fn l_shape_compacts_both_axes() {
        let rects = [r(0, 0, 20, 10), r(100, 0, 10, 10), r(0, 100, 10, 20)];
        let pos = compact_2d(&rects, 1).unwrap();
        let out = placed(&rects, &pos);
        assert!(overlap_free(&out));
        // Everything hugs the origin area.
        let bb = Rect::union_all(out.iter().copied()).unwrap();
        assert!(bb.max().x <= 32, "{bb}");
        assert!(bb.max().y <= 31, "{bb}");
    }

    #[test]
    fn diagonal_collapses_to_corner() {
        // Diagonally placed cells share no row or column: both passes can
        // pull them to the origin without conflict.
        let rects = [r(0, 0, 10, 10), r(50, 50, 10, 10)];
        let pos = compact_2d(&rects, 0).unwrap();
        assert_eq!(pos[0], Point::new(0, 0));
        // The second slides fully left (no original y-overlap) and fully
        // down (no x-overlap at the new positions… unless the X pass put
        // them in the same column — in which case Y separates them).
        let out = placed(&rects, &pos);
        assert!(overlap_free(&out));
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn overlapping_input_rejected() {
        let rects = [r(0, 0, 10, 10), r(5, 5, 10, 10)];
        let _ = compact_2d(&rects, 0);
    }

    #[test]
    fn preserves_relative_order() {
        let rects = [r(0, 0, 8, 8), r(20, 2, 8, 8), r(40, 0, 8, 8)];
        let pos = compact_2d(&rects, 3).unwrap();
        assert!(pos[0].x < pos[1].x && pos[1].x < pos[2].x);
    }
}
