//! Row compaction convenience: build and solve the constraint graph for a
//! standard-cell row with design-rule separations and alignment groups —
//! the workload generator for experiment E16.

use crate::graph::{Compacted, CompactionGraph, ElementId, Infeasible};

/// One cell of a row.
#[derive(Debug, Clone)]
pub struct RowCell {
    /// Display name.
    pub name: String,
    /// Cell width in lambda.
    pub width: i64,
}

/// A row compaction problem.
#[derive(Debug, Clone, Default)]
pub struct RowSpec {
    /// Cells in left-to-right order.
    pub cells: Vec<RowCell>,
    /// Minimum separation between horizontally adjacent cells.
    pub min_separation: i64,
    /// Exact-offset constraints `(left index, right index, offset)` on top
    /// of the adjacency rules (routing/abutment requirements).
    pub exact_offsets: Vec<(usize, usize, i64)>,
    /// Pinned cells `(index, position)`.
    pub pinned: Vec<(usize, i64)>,
}

impl RowSpec {
    /// Adds a cell; returns its index.
    pub fn cell(&mut self, name: impl Into<String>, width: i64) -> usize {
        self.cells.push(RowCell {
            name: name.into(),
            width,
        });
        self.cells.len() - 1
    }
}

/// Compacts a row: adjacency separations between consecutive cells plus
/// the spec's extra constraints. Returns the solution and the element ids
/// (index-aligned with `spec.cells`).
///
/// # Errors
///
/// [`Infeasible`] when the extra constraints contradict the design rules.
pub fn compact_row(spec: &RowSpec) -> Result<(Compacted, Vec<ElementId>), Infeasible> {
    let mut g = CompactionGraph::new();
    let ids: Vec<ElementId> = spec.cells.iter().map(|c| g.add_element(c.width)).collect();
    for w in ids.windows(2) {
        g.min_separation(w[0], w[1], spec.min_separation);
    }
    for &(a, b, d) in &spec.exact_offsets {
        g.exact_offset(ids[a], ids[b], d);
    }
    for &(i, pos) in &spec.pinned {
        g.fix(ids[i], pos);
    }
    let solution = g.solve()?;
    Ok((solution, ids))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_packs_with_separations() {
        let mut spec = RowSpec {
            min_separation: 2,
            ..Default::default()
        };
        spec.cell("inv", 6);
        spec.cell("nand", 8);
        spec.cell("ff", 12);
        let (sol, ids) = compact_row(&spec).unwrap();
        assert_eq!(sol.position(ids[0]), 0);
        assert_eq!(sol.position(ids[1]), 8);
        assert_eq!(sol.position(ids[2]), 18);
        assert_eq!(sol.total_extent, 30);
    }

    #[test]
    fn exact_offsets_stretch_the_row() {
        let mut spec = RowSpec {
            min_separation: 0,
            ..Default::default()
        };
        let a = spec.cell("a", 4);
        let b = spec.cell("b", 4);
        spec.exact_offsets.push((a, b, 20));
        let (sol, ids) = compact_row(&spec).unwrap();
        assert_eq!(sol.position(ids[b]), 20);
    }

    #[test]
    fn pinned_cell_anchors_the_row() {
        let mut spec = RowSpec {
            min_separation: 1,
            ..Default::default()
        };
        let _a = spec.cell("a", 4);
        let b = spec.cell("b", 4);
        spec.pinned.push((b, 50));
        let (sol, ids) = compact_row(&spec).unwrap();
        assert_eq!(sol.position(ids[b]), 50);
        assert_eq!(sol.position(ids[0]), 0);
    }

    #[test]
    fn infeasible_pin_reported() {
        let mut spec = RowSpec {
            min_separation: 1,
            ..Default::default()
        };
        let _a = spec.cell("a", 10);
        let b = spec.cell("b", 4);
        spec.pinned.push((b, 3));
        assert!(compact_row(&spec).is_err());
    }
}
