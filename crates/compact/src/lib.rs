//! # stem-compact — the Electric-style constraint-satisfaction baseline
//!
//! The thesis's related work (§2.1) contrasts STEM's propagation with
//! systems built on *linear inequality constraint satisfaction*:
//! "graph-based compaction algorithms build vertical and horizontal
//! constraint graphs, solve for the maximally constrained paths in the
//! graphs, and then assign node positions to satisfy all constraints" —
//! the approach of Electric \[Rubi87\] and constraint layout languages.
//! §7.4 then argues the division of labour: "low-level design checks, such
//! as layout design rule checking, are not suitable candidate applications
//! for \[propagation\] because more specialized data structures … and
//! constraint satisfaction algorithms (e.g., shortest-path algorithms on
//! graphs) are necessary".
//!
//! This crate implements that baseline so the claim is reproducible
//! (experiment E16): a 1D constraint graph over layout elements with
//! minimum-separation, exact-offset and fixed-position constraints, solved
//! by longest paths (Bellman–Ford, since exact constraints introduce
//! cycles whose positive variants signal infeasibility). Solutions are
//! *leftmost*: every position is exactly the longest constraint path
//! reaching it, the "maximally constrained path".
//!
//! It also reproduces Electric's documented limitation ("the constraint
//! that a component must be centered between two others cannot be
//! expressed in terms of linear inequality constraints", §2.1.1) and
//! STEM's answer to it — see the `centering` integration test.
//!
//! ```
//! use stem_compact::CompactionGraph;
//!
//! let mut g = CompactionGraph::new();
//! let a = g.add_element(10);
//! let b = g.add_element(20);
//! let c = g.add_element(10);
//! g.min_separation(a, b, 2); // b starts ≥ 2 past a's right edge
//! g.min_separation(b, c, 2);
//! let sol = g.solve().unwrap();
//! assert_eq!(sol.position(a), 0);
//! assert_eq!(sol.position(b), 12);
//! assert_eq!(sol.position(c), 34);
//! assert_eq!(sol.total_extent, 44);
//! ```

#![warn(missing_docs)]
mod graph;
mod row;
mod two_d;

pub use graph::{Compacted, CompactionGraph, ElementId, Infeasible};
pub use row::{compact_row, RowCell, RowSpec};
pub use two_d::compact_2d;
