use crate::{Point, Rect};
use std::fmt;

/// One of the eight layout symmetries (the dihedral group D4): four
/// rotations, optionally mirrored about the Y axis first.
///
/// STEM cell instances carry a placement transformation (thesis §3.3.2,
/// Fig. 3.3); these are its orientation part.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Orientation {
    /// Identity.
    #[default]
    R0,
    /// Rotate 90° counter-clockwise.
    R90,
    /// Rotate 180°.
    R180,
    /// Rotate 270° counter-clockwise.
    R270,
    /// Mirror about the Y axis (x → −x).
    MY,
    /// Mirror about Y, then rotate 90°.
    MY90,
    /// Mirror about the X axis (y → −y); equals MY180.
    MX,
    /// Mirror about X, then rotate 90°; equals MY270.
    MX90,
}

impl Orientation {
    /// All eight orientations, for exhaustive iteration in tests and
    /// compilers.
    pub const ALL: [Orientation; 8] = [
        Orientation::R0,
        Orientation::R90,
        Orientation::R180,
        Orientation::R270,
        Orientation::MY,
        Orientation::MY90,
        Orientation::MX,
        Orientation::MX90,
    ];

    /// Applies the orientation to a point about the origin.
    pub fn apply(self, p: Point) -> Point {
        use Orientation::*;
        match self {
            R0 => p,
            R90 => Point::new(-p.y, p.x),
            R180 => Point::new(-p.x, -p.y),
            R270 => Point::new(p.y, -p.x),
            MY => Point::new(-p.x, p.y),
            MY90 => Point::new(-p.y, -p.x),
            MX => Point::new(p.x, -p.y),
            MX90 => Point::new(p.y, p.x),
        }
    }

    /// Whether the orientation swaps the X and Y extents.
    pub fn swaps_axes(self) -> bool {
        use Orientation::*;
        matches!(self, R90 | R270 | MY90 | MX90)
    }

    /// The orientation `self ∘ other` (apply `other` first, then `self`).
    pub fn compose(self, other: Orientation) -> Orientation {
        // Derive composition by probing with two independent points.
        let probe = |o: Orientation| (o.apply(Point::new(1, 0)), o.apply(Point::new(0, 1)));
        let target = (
            self.apply(other.apply(Point::new(1, 0))),
            self.apply(other.apply(Point::new(0, 1))),
        );
        Orientation::ALL
            .into_iter()
            .find(|&o| probe(o) == target)
            .expect("D4 is closed under composition")
    }

    /// The inverse orientation.
    pub fn inverse(self) -> Orientation {
        Orientation::ALL
            .into_iter()
            .find(|&o| o.compose(self) == Orientation::R0)
            .expect("every D4 element has an inverse")
    }
}

impl fmt::Display for Orientation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A placement transform: an orientation about the origin followed by a
/// translation. This mirrors the `transformation` instance variable of STEM
/// cell instances (thesis Fig. 3.3).
///
/// ```
/// use stem_geom::{Orientation, Point, Rect, Transform};
/// let t = Transform::new(Orientation::R90, Point::new(10, 0));
/// let r = t.apply_rect(Rect::with_extent(Point::ORIGIN, 4, 2));
/// assert_eq!(r.extent(), Point::new(2, 4));
/// assert_eq!(t.inverse().apply_rect(r).extent(), Point::new(4, 2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Transform {
    /// Orientation applied about the origin first.
    pub orient: Orientation,
    /// Translation applied after orienting.
    pub translate: Point,
}

impl Transform {
    /// The identity transform.
    pub const IDENTITY: Transform = Transform {
        orient: Orientation::R0,
        translate: Point::ORIGIN,
    };

    /// Creates a transform from an orientation and translation.
    pub const fn new(orient: Orientation, translate: Point) -> Self {
        Transform { orient, translate }
    }

    /// A pure translation.
    pub const fn translation(delta: Point) -> Self {
        Transform {
            orient: Orientation::R0,
            translate: delta,
        }
    }

    /// Applies the transform to a point.
    pub fn apply(self, p: Point) -> Point {
        self.orient.apply(p) + self.translate
    }

    /// Applies the transform to a rectangle (the image of an axis-aligned
    /// rectangle under a D4 symmetry is axis-aligned).
    pub fn apply_rect(self, r: Rect) -> Rect {
        Rect::new(self.apply(r.min()), self.apply(r.max()))
    }

    /// The transform `self ∘ other` (apply `other` first).
    pub fn compose(self, other: Transform) -> Transform {
        Transform {
            orient: self.orient.compose(other.orient),
            translate: self.apply(other.translate),
        }
    }

    /// The inverse transform.
    pub fn inverse(self) -> Transform {
        let inv = self.orient.inverse();
        Transform {
            orient: inv,
            translate: inv.apply(-self.translate),
        }
    }
}

impl fmt::Display for Transform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} + {}", self.orient, self.translate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotations() {
        let p = Point::new(3, 1);
        assert_eq!(Orientation::R0.apply(p), p);
        assert_eq!(Orientation::R90.apply(p), Point::new(-1, 3));
        assert_eq!(Orientation::R180.apply(p), Point::new(-3, -1));
        assert_eq!(Orientation::R270.apply(p), Point::new(1, -3));
    }

    #[test]
    fn mirrors() {
        let p = Point::new(3, 1);
        assert_eq!(Orientation::MY.apply(p), Point::new(-3, 1));
        assert_eq!(Orientation::MX.apply(p), Point::new(3, -1));
        assert_eq!(Orientation::MY90.apply(p), Point::new(-1, -3));
        assert_eq!(Orientation::MX90.apply(p), Point::new(1, 3));
    }

    #[test]
    fn group_closure_and_inverse() {
        for a in Orientation::ALL {
            for b in Orientation::ALL {
                let c = a.compose(b);
                // compose really is function composition
                let p = Point::new(2, 5);
                assert_eq!(c.apply(p), a.apply(b.apply(p)), "{a} ∘ {b}");
            }
            assert_eq!(a.inverse().compose(a), Orientation::R0);
            assert_eq!(a.compose(a.inverse()), Orientation::R0);
        }
    }

    #[test]
    fn swaps_axes_matches_extent() {
        let r = Rect::with_extent(Point::ORIGIN, 4, 2);
        for o in Orientation::ALL {
            let t = Transform::new(o, Point::ORIGIN);
            let e = t.apply_rect(r).extent();
            if o.swaps_axes() {
                assert_eq!(e, Point::new(2, 4), "{o}");
            } else {
                assert_eq!(e, Point::new(4, 2), "{o}");
            }
        }
    }

    #[test]
    fn transform_roundtrip() {
        let t = Transform::new(Orientation::MY90, Point::new(17, -4));
        let p = Point::new(3, 9);
        assert_eq!(t.inverse().apply(t.apply(p)), p);
        assert_eq!(t.compose(t.inverse()), Transform::IDENTITY);
    }

    #[test]
    fn transform_composition_associates_with_application() {
        let a = Transform::new(Orientation::R90, Point::new(5, 0));
        let b = Transform::new(Orientation::MX, Point::new(-2, 3));
        let p = Point::new(1, 1);
        assert_eq!(a.compose(b).apply(p), a.apply(b.apply(p)));
    }
}
