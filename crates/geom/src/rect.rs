use crate::Point;
use std::fmt;

/// An axis-aligned rectangle on the lambda grid, stored as inclusive
/// min / exclusive-ish max corners (`min <= max` component-wise).
///
/// Rectangles back STEM's bounding-box variables (thesis §7.2): the class
/// bounding box is the smallest rectangle containing a cell's internal
/// structure, and an instance bounding box is the (possibly larger) area a
/// placement fills.
///
/// ```
/// use stem_geom::{Point, Rect};
/// let r = Rect::new(Point::new(0, 0), Point::new(8, 4));
/// assert_eq!(r.area(), 32);
/// assert!(r.contains_rect(Rect::new(Point::new(1, 1), Point::new(3, 3))));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Rect {
    min: Point,
    max: Point,
}

impl Rect {
    /// Creates a rectangle from two opposite corners (normalised so the
    /// stored `min` is component-wise below the stored `max`).
    pub fn new(a: Point, b: Point) -> Self {
        Rect {
            min: a.min(b),
            max: a.max(b),
        }
    }

    /// Creates a rectangle from an origin and a width/height extent.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `height` is negative.
    pub fn with_extent(origin: Point, width: i64, height: i64) -> Self {
        assert!(width >= 0 && height >= 0, "extent must be non-negative");
        Rect::new(origin, origin + Point::new(width, height))
    }

    /// The lower-left corner.
    pub fn min(&self) -> Point {
        self.min
    }

    /// The upper-right corner.
    pub fn max(&self) -> Point {
        self.max
    }

    /// Horizontal extent.
    pub fn width(&self) -> i64 {
        self.max.x - self.min.x
    }

    /// Vertical extent.
    pub fn height(&self) -> i64 {
        self.max.y - self.min.y
    }

    /// `(width, height)` as a point, matching Smalltalk's `extent`.
    pub fn extent(&self) -> Point {
        self.max - self.min
    }

    /// Enclosed area in square lambda.
    pub fn area(&self) -> i64 {
        self.width() * self.height()
    }

    /// The centre point (rounded toward `min`).
    pub fn center(&self) -> Point {
        Point::new(
            self.min.x + self.width() / 2,
            self.min.y + self.height() / 2,
        )
    }

    /// Whether the rectangle is degenerate (zero area).
    pub fn is_empty(&self) -> bool {
        self.width() == 0 || self.height() == 0
    }

    /// Whether `p` lies inside or on the border.
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Whether `other` lies entirely inside (or on the border of) `self`.
    pub fn contains_rect(&self, other: Rect) -> bool {
        self.contains(other.min) && self.contains(other.max)
    }

    /// Whether this rectangle's extent can cover `other`'s extent — the
    /// `InstanceBBox >= ClassBBox` test of thesis Fig. 7.7
    /// (`bBox extent >= selfBBox extent`).
    pub fn can_contain_extent(&self, other: Rect) -> bool {
        self.width() >= other.width() && self.height() >= other.height()
    }

    /// Smallest rectangle containing both.
    pub fn union(&self, other: Rect) -> Rect {
        Rect {
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }

    /// Intersection, or `None` when disjoint.
    pub fn intersection(&self, other: Rect) -> Option<Rect> {
        let min = self.min.max(other.min);
        let max = self.max.min(other.max);
        if min.x <= max.x && min.y <= max.y {
            Some(Rect { min, max })
        } else {
            None
        }
    }

    /// The rectangle shifted by `delta`.
    pub fn translated(&self, delta: Point) -> Rect {
        Rect {
            min: self.min + delta,
            max: self.max + delta,
        }
    }

    /// The rectangle grown by `margin` on every side.
    ///
    /// # Panics
    ///
    /// Panics if a negative `margin` would invert the rectangle.
    pub fn inflated(&self, margin: i64) -> Rect {
        let r = Rect {
            min: self.min - Point::new(margin, margin),
            max: self.max + Point::new(margin, margin),
        };
        assert!(
            r.min.x <= r.max.x && r.min.y <= r.max.y,
            "inflation inverted rect"
        );
        r
    }

    /// Aspect ratio `width / height` as a float, `None` for zero height —
    /// used by the `AspectRatioPredicate` of thesis Fig. 7.9.
    pub fn aspect_ratio(&self) -> Option<f64> {
        if self.height() == 0 {
            None
        } else {
            Some(self.width() as f64 / self.height() as f64)
        }
    }

    /// Union over an iterator of rectangles; `None` for an empty iterator.
    /// This is `calculateBoundingBox` over subcells and nets (§7.2).
    pub fn union_all<I: IntoIterator<Item = Rect>>(rects: I) -> Option<Rect> {
        rects.into_iter().reduce(|a, b| a.union(b))
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} .. {}]", self.min, self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(x0: i64, y0: i64, x1: i64, y1: i64) -> Rect {
        Rect::new(Point::new(x0, y0), Point::new(x1, y1))
    }

    #[test]
    fn normalises_corners() {
        let a = Rect::new(Point::new(5, 7), Point::new(1, 2));
        assert_eq!(a.min(), Point::new(1, 2));
        assert_eq!(a.max(), Point::new(5, 7));
    }

    #[test]
    fn extent_area_center() {
        let a = r(0, 0, 8, 4);
        assert_eq!(a.extent(), Point::new(8, 4));
        assert_eq!(a.area(), 32);
        assert_eq!(a.center(), Point::new(4, 2));
        assert!(!a.is_empty());
        assert!(r(0, 0, 0, 4).is_empty());
    }

    #[test]
    fn containment() {
        let a = r(0, 0, 10, 10);
        assert!(a.contains(Point::new(0, 0)));
        assert!(a.contains(Point::new(10, 10)));
        assert!(!a.contains(Point::new(11, 5)));
        assert!(a.contains_rect(r(2, 2, 8, 8)));
        assert!(!a.contains_rect(r(2, 2, 12, 8)));
    }

    #[test]
    fn extent_containment_ignores_position() {
        // The thesis's class-vs-instance bbox test compares extents only.
        assert!(r(100, 100, 110, 104).can_contain_extent(r(0, 0, 10, 4)));
        assert!(!r(100, 100, 109, 104).can_contain_extent(r(0, 0, 10, 4)));
    }

    #[test]
    fn union_and_intersection() {
        let a = r(0, 0, 4, 4);
        let b = r(2, 2, 6, 6);
        assert_eq!(a.union(b), r(0, 0, 6, 6));
        assert_eq!(a.intersection(b), Some(r(2, 2, 4, 4)));
        assert_eq!(a.intersection(r(5, 5, 6, 6)), None);
        // Touching rectangles intersect in a degenerate rect.
        assert_eq!(a.intersection(r(4, 0, 8, 4)), Some(r(4, 0, 4, 4)));
    }

    #[test]
    fn translate_inflate() {
        let a = r(0, 0, 4, 4).translated(Point::new(10, -2));
        assert_eq!(a, r(10, -2, 14, 2));
        assert_eq!(a.inflated(1), r(9, -3, 15, 3));
    }

    #[test]
    fn aspect_ratio() {
        assert_eq!(r(0, 0, 8, 4).aspect_ratio(), Some(2.0));
        assert_eq!(r(0, 0, 8, 0).aspect_ratio(), None);
    }

    #[test]
    fn union_all() {
        assert_eq!(Rect::union_all([]), None);
        assert_eq!(
            Rect::union_all([r(0, 0, 1, 1), r(5, 5, 6, 6), r(-1, 0, 0, 2)]),
            Some(r(-1, 0, 6, 6))
        );
    }
}
