use std::fmt;
use std::ops::{Add, Neg, Sub};

/// A point on the integer lambda grid.
///
/// All STEM layout coordinates are integers; the unit is the technology
/// lambda, which keeps the geometry technology-independent (thesis §2.1,
/// constraint layout languages).
///
/// ```
/// use stem_geom::Point;
/// assert_eq!(Point::new(1, 2) + Point::new(3, 4), Point::new(4, 6));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Point {
    /// Horizontal coordinate in lambda.
    pub x: i64,
    /// Vertical coordinate in lambda.
    pub y: i64,
}

impl Point {
    /// The origin, `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0, y: 0 };

    /// Creates a point from its coordinates.
    pub const fn new(x: i64, y: i64) -> Self {
        Point { x, y }
    }

    /// Component-wise minimum of two points.
    pub fn min(self, other: Point) -> Point {
        Point::new(self.x.min(other.x), self.y.min(other.y))
    }

    /// Component-wise maximum of two points.
    pub fn max(self, other: Point) -> Point {
        Point::new(self.x.max(other.x), self.y.max(other.y))
    }

    /// Manhattan (L1) distance to `other`, used by the delay RC estimator
    /// for wire-length heuristics.
    pub fn manhattan(self, other: Point) -> i64 {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }
}

impl Add for Point {
    type Output = Point;
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point {
    type Output = Point;
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Neg for Point {
    type Output = Point;
    fn neg(self) -> Point {
        Point::new(-self.x, -self.y)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl From<(i64, i64)> for Point {
    fn from((x, y): (i64, i64)) -> Self {
        Point::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Point::new(3, -2);
        let b = Point::new(1, 5);
        assert_eq!(a + b, Point::new(4, 3));
        assert_eq!(a - b, Point::new(2, -7));
        assert_eq!(-a, Point::new(-3, 2));
    }

    #[test]
    fn min_max() {
        let a = Point::new(3, -2);
        let b = Point::new(1, 5);
        assert_eq!(a.min(b), Point::new(1, -2));
        assert_eq!(a.max(b), Point::new(3, 5));
    }

    #[test]
    fn manhattan_distance() {
        assert_eq!(Point::new(0, 0).manhattan(Point::new(3, 4)), 7);
        assert_eq!(Point::new(-1, -1).manhattan(Point::new(1, 1)), 4);
    }

    #[test]
    fn display_and_from() {
        assert_eq!(Point::from((2, 3)).to_string(), "(2, 3)");
    }
}
