use crate::{Point, Rect};

/// A side of a rectangle, used to classify which border an io-pin sits on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// The `y == max.y` edge.
    Top,
    /// The `y == min.y` edge.
    Bottom,
    /// The `x == min.x` edge.
    Left,
    /// The `x == max.x` edge.
    Right,
}

impl Side {
    /// Classifies a border point of `rect` onto a side. Corners resolve to
    /// `Left`/`Right` before `Top`/`Bottom`. Returns `None` for interior or
    /// exterior points.
    pub fn of(rect: Rect, p: Point) -> Option<Side> {
        if !rect.contains(p) {
            return None;
        }
        if p.x == rect.min().x {
            Some(Side::Left)
        } else if p.x == rect.max().x {
            Some(Side::Right)
        } else if p.y == rect.min().y {
            Some(Side::Bottom)
        } else if p.y == rect.max().y {
            Some(Side::Top)
        } else {
            None
        }
    }
}

/// Stretches an io-pin from the border of `from` to the border of `to`,
/// preserving its side and its proportional position along that side.
///
/// This reproduces STEM's stretching routines that "extend signal ports to
/// the perimeter of the bounding box" when an instance is placed in an area
/// larger than its class bounding box (thesis §7.2, Fig. 7.6). Pins not on
/// the border of `from` are returned translated with the box origin, since
/// only border pins participate in butting connections.
///
/// ```
/// use stem_geom::{stretch_pin, Point, Rect};
/// let small = Rect::with_extent(Point::ORIGIN, 10, 10);
/// let big = Rect::with_extent(Point::ORIGIN, 20, 10);
/// // A pin centred on the top edge stays centred on the top edge.
/// assert_eq!(stretch_pin(Point::new(5, 10), small, big), Point::new(10, 10));
/// ```
pub fn stretch_pin(pin: Point, from: Rect, to: Rect) -> Point {
    let Some(side) = Side::of(from, pin) else {
        // Interior pin: keep its offset from the box origin.
        return pin - from.min() + to.min();
    };
    let scale = |v: i64, f_lo: i64, f_hi: i64, t_lo: i64, t_hi: i64| -> i64 {
        let f_span = f_hi - f_lo;
        if f_span == 0 {
            t_lo
        } else {
            // Round to nearest grid point.
            t_lo + ((v - f_lo) * (t_hi - t_lo) + f_span / 2) / f_span
        }
    };
    match side {
        Side::Left => Point::new(
            to.min().x,
            scale(pin.y, from.min().y, from.max().y, to.min().y, to.max().y),
        ),
        Side::Right => Point::new(
            to.max().x,
            scale(pin.y, from.min().y, from.max().y, to.min().y, to.max().y),
        ),
        Side::Bottom => Point::new(
            scale(pin.x, from.min().x, from.max().x, to.min().x, to.max().x),
            to.min().y,
        ),
        Side::Top => Point::new(
            scale(pin.x, from.min().x, from.max().x, to.min().x, to.max().x),
            to.max().y,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(x0: i64, y0: i64, x1: i64, y1: i64) -> Rect {
        Rect::new(Point::new(x0, y0), Point::new(x1, y1))
    }

    #[test]
    fn side_classification() {
        let b = r(0, 0, 10, 10);
        assert_eq!(Side::of(b, Point::new(0, 5)), Some(Side::Left));
        assert_eq!(Side::of(b, Point::new(10, 5)), Some(Side::Right));
        assert_eq!(Side::of(b, Point::new(5, 0)), Some(Side::Bottom));
        assert_eq!(Side::of(b, Point::new(5, 10)), Some(Side::Top));
        // Corners resolve to left/right.
        assert_eq!(Side::of(b, Point::new(0, 0)), Some(Side::Left));
        assert_eq!(Side::of(b, Point::new(10, 10)), Some(Side::Right));
        assert_eq!(Side::of(b, Point::new(5, 5)), None);
        assert_eq!(Side::of(b, Point::new(11, 5)), None);
    }

    #[test]
    fn stretch_keeps_side_and_proportion() {
        let from = r(0, 0, 10, 10);
        let to = r(0, 0, 30, 10);
        assert_eq!(stretch_pin(Point::new(5, 10), from, to), Point::new(15, 10));
        assert_eq!(stretch_pin(Point::new(5, 0), from, to), Point::new(15, 0));
        assert_eq!(stretch_pin(Point::new(0, 3), from, to), Point::new(0, 3));
        assert_eq!(stretch_pin(Point::new(10, 3), from, to), Point::new(30, 3));
    }

    #[test]
    fn stretch_to_translated_box() {
        let from = r(0, 0, 10, 10);
        let to = r(100, 100, 120, 120);
        assert_eq!(
            stretch_pin(Point::new(5, 10), from, to),
            Point::new(110, 120)
        );
    }

    #[test]
    fn interior_pin_translates() {
        let from = r(0, 0, 10, 10);
        let to = r(100, 100, 140, 140);
        assert_eq!(
            stretch_pin(Point::new(4, 6), from, to),
            Point::new(104, 106)
        );
    }

    #[test]
    fn identity_stretch_is_noop() {
        let b = r(0, 0, 10, 10);
        for p in [
            Point::new(0, 5),
            Point::new(10, 0),
            Point::new(3, 10),
            Point::new(7, 0),
        ] {
            assert_eq!(stretch_pin(p, b, b), p);
        }
    }

    #[test]
    fn degenerate_from_side() {
        // Zero-width source span collapses to the low edge of the target.
        let from = r(0, 0, 0, 10);
        let to = r(0, 0, 10, 10);
        assert_eq!(stretch_pin(Point::new(0, 5), from, to), Point::new(0, 5));
    }
}
