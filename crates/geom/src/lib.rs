//! Layout geometry substrate for the STEM reproduction.
//!
//! STEM's bounding-box checking (thesis §7.2), io-pin stretching (Fig. 7.6)
//! and module compilers (ch. 6) all work on integer lambda-grid geometry:
//! points, axis-aligned rectangles, the eight layout symmetries, and affine
//! placement transforms composed of an orientation and a translation.
//!
//! ```
//! use stem_geom::{Point, Rect, Orientation, Transform};
//!
//! let cell = Rect::new(Point::new(0, 0), Point::new(40, 20));
//! let place = Transform::new(Orientation::R90, Point::new(100, 0));
//! let placed = place.apply_rect(cell);
//! assert_eq!(placed.width(), 20);
//! assert_eq!(placed.height(), 40);
//! ```

#![warn(missing_docs)]
mod point;
mod rect;
mod stretch;
mod transform;

pub use point::Point;
pub use rect::Rect;
pub use stretch::{stretch_pin, Side};
pub use transform::{Orientation, Transform};
