//! Randomised (seeded, fully deterministic) tests for the geometry
//! substrate.
//!
//! `stem-geom` sits below `stem-core` in the dependency graph, so it
//! cannot borrow `stem_core::prng`; a minimal SplitMix64 copy lives here
//! instead.

use stem_geom::{stretch_pin, Orientation, Point, Rect, Side, Transform};

const ITERS: usize = 128;

/// Minimal SplitMix64 (same algorithm as `stem_core::prng::SplitMix64`).
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        lo + (self.next_u64() % (hi - lo) as u64) as i64
    }

    fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn point(&mut self) -> Point {
        Point::new(self.range_i64(-1000, 1000), self.range_i64(-1000, 1000))
    }

    fn rect(&mut self) -> Rect {
        Rect::new(self.point(), self.point())
    }

    fn transform(&mut self) -> Transform {
        Transform::new(Orientation::ALL[self.range_usize(0, 8)], self.point())
    }
}

#[test]
fn rect_union_contains_both() {
    let mut rng = Rng(0x6E_01);
    for _ in 0..ITERS {
        let (a, b) = (rng.rect(), rng.rect());
        let u = a.union(b);
        assert!(u.contains_rect(a));
        assert!(u.contains_rect(b));
    }
}

#[test]
fn rect_union_commutative_associative() {
    let mut rng = Rng(0x6E_02);
    for _ in 0..ITERS {
        let (a, b, c) = (rng.rect(), rng.rect(), rng.rect());
        assert_eq!(a.union(b), b.union(a));
        assert_eq!(a.union(b).union(c), a.union(b.union(c)));
    }
}

#[test]
fn rect_intersection_inside_both() {
    let mut rng = Rng(0x6E_03);
    for _ in 0..ITERS {
        let (a, b) = (rng.rect(), rng.rect());
        if let Some(i) = a.intersection(b) {
            assert!(a.contains_rect(i));
            assert!(b.contains_rect(i));
        }
    }
}

#[test]
fn transform_preserves_extent_up_to_swap() {
    let mut rng = Rng(0x6E_04);
    for _ in 0..ITERS {
        let (t, r) = (rng.transform(), rng.rect());
        let img = t.apply_rect(r);
        if t.orient.swaps_axes() {
            assert_eq!(img.width(), r.height());
            assert_eq!(img.height(), r.width());
        } else {
            assert_eq!(img.width(), r.width());
            assert_eq!(img.height(), r.height());
        }
        assert_eq!(img.area(), r.area());
    }
}

#[test]
fn transform_inverse_roundtrip() {
    let mut rng = Rng(0x6E_05);
    for _ in 0..ITERS {
        let (t, p) = (rng.transform(), rng.point());
        assert_eq!(t.inverse().apply(t.apply(p)), p);
    }
}

#[test]
fn transform_compose_matches_application() {
    let mut rng = Rng(0x6E_06);
    for _ in 0..ITERS {
        let (a, b, p) = (rng.transform(), rng.transform(), rng.point());
        assert_eq!(a.compose(b).apply(p), a.apply(b.apply(p)));
    }
}

#[test]
fn stretched_border_pin_lands_on_same_side() {
    let mut rng = Rng(0x6E_07);
    for _ in 0..ITERS {
        let (w1, h1) = (rng.range_i64(1, 200), rng.range_i64(1, 200));
        let (w2, h2) = (rng.range_i64(1, 200), rng.range_i64(1, 200));
        let (ox, oy) = (rng.range_i64(-100, 100), rng.range_i64(-100, 100));
        let frac = rng.next_f64();
        let side = rng.range_usize(0, 4);
        let from = Rect::with_extent(Point::ORIGIN, w1, h1);
        let to = Rect::with_extent(Point::new(ox, oy), w2, h2);
        let pin = match side {
            0 => Point::new((frac * w1 as f64) as i64, h1), // top
            1 => Point::new((frac * w1 as f64) as i64, 0),  // bottom
            2 => Point::new(0, (frac * h1 as f64) as i64),  // left
            _ => Point::new(w1, (frac * h1 as f64) as i64), // right
        };
        let expect = match side {
            0 => Side::Top,
            1 => Side::Bottom,
            2 => Side::Left,
            _ => Side::Right,
        };
        // Corner pins may legitimately classify to an adjacent side; restrict
        // the assertion to pins strictly inside an edge.
        if Side::of(from, pin) == Some(expect) {
            let out = stretch_pin(pin, from, to);
            assert!(to.contains(out), "stretched pin must be on target border");
            // Must at least be on the border of `to`.
            assert!(Side::of(to, out).is_some());
        }
    }
}
