//! Property-based tests for the geometry substrate.

use proptest::prelude::*;
use stem_geom::{stretch_pin, Orientation, Point, Rect, Side, Transform};

fn arb_point() -> impl Strategy<Value = Point> {
    (-1000i64..1000, -1000i64..1000).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_rect() -> impl Strategy<Value = Rect> {
    (arb_point(), arb_point()).prop_map(|(a, b)| Rect::new(a, b))
}

fn arb_orient() -> impl Strategy<Value = Orientation> {
    (0usize..8).prop_map(|i| Orientation::ALL[i])
}

fn arb_transform() -> impl Strategy<Value = Transform> {
    (arb_orient(), arb_point()).prop_map(|(o, t)| Transform::new(o, t))
}

proptest! {
    #[test]
    fn rect_union_contains_both(a in arb_rect(), b in arb_rect()) {
        let u = a.union(b);
        prop_assert!(u.contains_rect(a));
        prop_assert!(u.contains_rect(b));
    }

    #[test]
    fn rect_union_commutative_associative(a in arb_rect(), b in arb_rect(), c in arb_rect()) {
        prop_assert_eq!(a.union(b), b.union(a));
        prop_assert_eq!(a.union(b).union(c), a.union(b.union(c)));
    }

    #[test]
    fn rect_intersection_inside_both(a in arb_rect(), b in arb_rect()) {
        if let Some(i) = a.intersection(b) {
            prop_assert!(a.contains_rect(i));
            prop_assert!(b.contains_rect(i));
        }
    }

    #[test]
    fn transform_preserves_extent_up_to_swap(t in arb_transform(), r in arb_rect()) {
        let img = t.apply_rect(r);
        if t.orient.swaps_axes() {
            prop_assert_eq!(img.width(), r.height());
            prop_assert_eq!(img.height(), r.width());
        } else {
            prop_assert_eq!(img.width(), r.width());
            prop_assert_eq!(img.height(), r.height());
        }
        prop_assert_eq!(img.area(), r.area());
    }

    #[test]
    fn transform_inverse_roundtrip(t in arb_transform(), p in arb_point()) {
        prop_assert_eq!(t.inverse().apply(t.apply(p)), p);
    }

    #[test]
    fn transform_compose_matches_application(
        a in arb_transform(), b in arb_transform(), p in arb_point()
    ) {
        prop_assert_eq!(a.compose(b).apply(p), a.apply(b.apply(p)));
    }

    #[test]
    fn stretched_border_pin_lands_on_same_side(
        w1 in 1i64..200, h1 in 1i64..200,
        w2 in 1i64..200, h2 in 1i64..200,
        ox in -100i64..100, oy in -100i64..100,
        frac in 0.0f64..=1.0,
        side in 0usize..4,
    ) {
        let from = Rect::with_extent(Point::ORIGIN, w1, h1);
        let to = Rect::with_extent(Point::new(ox, oy), w2, h2);
        let pin = match side {
            0 => Point::new((frac * w1 as f64) as i64, h1), // top
            1 => Point::new((frac * w1 as f64) as i64, 0),  // bottom
            2 => Point::new(0, (frac * h1 as f64) as i64),  // left
            _ => Point::new(w1, (frac * h1 as f64) as i64), // right
        };
        let expect = match side {
            0 => Side::Top,
            1 => Side::Bottom,
            2 => Side::Left,
            _ => Side::Right,
        };
        // Corner pins may legitimately classify to an adjacent side; restrict
        // the assertion to pins strictly inside an edge.
        if Side::of(from, pin) == Some(expect) {
            let out = stretch_pin(pin, from, to);
            prop_assert!(to.contains(out), "stretched pin must be on target border");
            // Must at least be on the border of `to`.
            prop_assert!(Side::of(to, out).is_some());
        }
    }
}
