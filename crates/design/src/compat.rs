//! The compatible-constraint of thesis §7.1: for each net, one constraint
//! relates the dataType variables of all connected signals (plus the net's
//! own), and another relates the electricalType variables.

use crate::types::SharedForests;
use stem_core::{
    ConstraintId, ConstraintKind, DependencyRecord, Network, TypeTag, Value, VarId, Violation,
};

/// Compatible-constraint over signal/net type variables.
///
/// Satisfaction: all non-`Nil` argument types are pairwise compatible
/// (one an ancestor of the other). Inference: "the signal type of the net
/// is the least abstract type of all signals in the net", and unspecified
/// (or more abstract) signal types are refined toward that least abstract
/// type — the overwrite rule of the signal variables
/// ([`SignalTypeKind`](crate::SignalTypeKind)) makes refinement monotone.
#[derive(Debug, Clone)]
pub struct Compatible {
    forests: SharedForests,
}

impl Compatible {
    /// Creates the kind over shared type forests.
    pub fn new(forests: SharedForests) -> Self {
        Compatible { forests }
    }

    /// The least abstract type among the non-`Nil` argument values, or
    /// `None` if any pair is incompatible (the satisfaction sweep will then
    /// flag the conflict) or no argument is typed.
    fn least_abstract(&self, net: &Network, cid: ConstraintId) -> Option<TypeTag> {
        let forests = self.forests.borrow();
        let mut acc: Option<TypeTag> = None;
        for &arg in net.args(cid) {
            let Some(t) = net.value(arg).as_type() else {
                continue;
            };
            acc = Some(match acc {
                None => t,
                Some(cur) => forests.forest(cur)?.less_abstract(cur, t)?,
            });
        }
        acc
    }
}

impl ConstraintKind for Compatible {
    fn kind_name(&self) -> &str {
        "compatible"
    }

    fn infer(
        &self,
        net: &mut Network,
        cid: ConstraintId,
        changed: Option<VarId>,
    ) -> Result<(), Violation> {
        let Some(least) = self.least_abstract(net, cid) else {
            return Ok(());
        };
        let source = changed.unwrap_or_else(|| net.args(cid)[0]);
        for arg in net.args(cid).to_vec() {
            if Some(arg) != changed {
                net.propagate_set(
                    arg,
                    Value::TypeRef(least),
                    cid,
                    DependencyRecord::Single(source),
                )?;
            }
        }
        Ok(())
    }

    fn is_satisfied(&self, net: &Network, cid: ConstraintId) -> bool {
        let forests = self.forests.borrow();
        let typed: Vec<TypeTag> = net
            .args(cid)
            .iter()
            .filter_map(|&v| net.value(v).as_type())
            .collect();
        for (i, &a) in typed.iter().enumerate() {
            for &b in &typed[i + 1..] {
                if !forests.is_compatible(a, b) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{SignalTypeKind, TypeForests};
    use std::cell::RefCell;
    use std::rc::Rc;
    use stem_core::Justification;

    fn setup() -> (Network, SharedForests, Vec<VarId>, ConstraintId) {
        let forests: SharedForests = Rc::new(RefCell::new(TypeForests::default()));
        let mut net = Network::new();
        let kind = Rc::new(SignalTypeKind::new(forests.clone()));
        let vars: Vec<VarId> = (0..3)
            .map(|i| net.add_variable_with(format!("t{i}"), None, kind.clone()))
            .collect();
        let cid = net
            .add_constraint(Compatible::new(forests.clone()), vars.clone())
            .unwrap();
        (net, forests, vars, cid)
    }

    #[test]
    fn infers_types_for_unspecified_signals() {
        let (mut net, forests, vars, _) = setup();
        let ttl = forests.borrow().electrical.tag("TTL").unwrap();
        net.set(vars[0], Value::TypeRef(ttl), Justification::User)
            .unwrap();
        assert_eq!(net.value(vars[1]).as_type(), Some(ttl));
        assert_eq!(net.value(vars[2]).as_type(), Some(ttl));
    }

    #[test]
    fn refines_abstract_to_least_abstract() {
        let (mut net, forests, vars, _) = setup();
        let digital = forests.borrow().electrical.tag("Digital").unwrap();
        let cmos = forests.borrow().electrical.tag("CMOS").unwrap();
        net.set(vars[1], Value::TypeRef(digital), Justification::Application)
            .unwrap();
        net.set(vars[0], Value::TypeRef(cmos), Justification::User)
            .unwrap();
        // Digital refines to CMOS (less abstract wins, §7.1).
        assert_eq!(net.value(vars[1]).as_type(), Some(cmos));
        assert_eq!(net.value(vars[2]).as_type(), Some(cmos));
    }

    #[test]
    fn incompatible_types_violate() {
        let (mut net, forests, vars, _) = setup();
        let ttl = forests.borrow().electrical.tag("TTL").unwrap();
        let analog = forests.borrow().electrical.tag("Analog").unwrap();
        net.set(vars[0], Value::TypeRef(ttl), Justification::User)
            .unwrap();
        let err = net
            .set(vars[1], Value::TypeRef(analog), Justification::User)
            .unwrap_err();
        let _ = err;
        // Restored: vars[1] back to the inferred TTL.
        assert_eq!(net.value(vars[1]).as_type(), Some(ttl));
    }

    #[test]
    fn sibling_leaf_types_violate() {
        let (mut net, forests, vars, _) = setup();
        let ttl = forests.borrow().electrical.tag("TTL").unwrap();
        let cmos = forests.borrow().electrical.tag("CMOS").unwrap();
        net.set(vars[0], Value::TypeRef(ttl), Justification::User)
            .unwrap();
        assert!(net
            .set(vars[2], Value::TypeRef(cmos), Justification::User)
            .is_err());
    }

    #[test]
    fn more_abstract_assignment_is_silently_kept() {
        let (mut net, forests, vars, cid) = setup();
        let digital = forests.borrow().electrical.tag("Digital").unwrap();
        let cmos = forests.borrow().electrical.tag("CMOS").unwrap();
        net.set(vars[0], Value::TypeRef(cmos), Justification::User)
            .unwrap();
        // Propagating the more abstract Digital in cannot downgrade CMOS:
        // the constraint stays satisfied because Digital ∼ CMOS.
        net.set(vars[1], Value::TypeRef(digital), Justification::Application)
            .unwrap();
        assert_eq!(net.value(vars[0]).as_type(), Some(cmos));
        assert!(net.is_satisfied(cid));
    }
}
