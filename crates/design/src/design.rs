//! The design environment facade: an arena of cell classes, instances and
//! nets built over one constraint [`Network`], implementing STEM's
//! two-level model of the design hierarchy with dual instance variables
//! (thesis §3.3.2, Fig. 3.2/3.3) and hierarchical constraint propagation
//! (ch. 5).

use crate::compat::Compatible;
use crate::defs::{ParamDef, PropDef, PropertyLink, SignalDef, SignalDir, BOUNDING_BOX};
use crate::events::{ChangeKey, StructureEvent, StructureHook, ViewHandle, ViewRegistration};
use crate::ids::{CellClassId, CellInstanceId, NetId};
use crate::types::{BitWidthKind, SharedForests, SignalTypeKind, TypeForests};
use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::rc::Rc;
use std::sync::Arc;

use stem_core::kinds::{Equality, ImplicitLink, LinkSemantics, UpdateConstraint};
use stem_core::{
    ConstraintId, Justification, Network, PlainKind, Value, VarId, VariableKind, Violation,
};
use stem_geom::{stretch_pin, Point, Rect, Transform};

/// Link semantics for bounding boxes (thesis Fig. 7.7): the class box
/// propagates down transformed by the placement; the instance box must be
/// able to contain the transformed class box.
#[derive(Debug, Clone, Copy)]
pub struct BBoxLink {
    /// Placement transform of the instance.
    pub transform: Transform,
}

impl LinkSemantics for BBoxLink {
    fn name(&self) -> &str {
        "bboxLink"
    }

    fn downward(&self, net: &Network, class_var: VarId, _inst_var: VarId) -> Option<Value> {
        let r = net.value(class_var).as_rect()?;
        Some(Value::Rect(self.transform.apply_rect(r)))
    }

    fn is_satisfied(&self, net: &Network, class_var: VarId, inst_var: VarId) -> bool {
        let (Some(class_box), Some(inst_box)) = (
            net.value(class_var).as_rect(),
            net.value(inst_var).as_rect(),
        ) else {
            return true;
        };
        inst_box.can_contain_extent(self.transform.apply_rect(class_box))
    }
}

/// Link semantics for parameters (thesis §5.1.1): the class side holds the
/// legal range as a [`Value::Span`]; the instance value must lie inside it.
/// No value propagation in either direction (defaults are handled at
/// instantiation).
#[derive(Debug, Clone, Copy, Default)]
pub struct ParamRangeLink;

impl LinkSemantics for ParamRangeLink {
    fn name(&self) -> &str {
        "paramRangeLink"
    }

    fn downward(&self, _: &Network, _: VarId, _: VarId) -> Option<Value> {
        None
    }

    fn is_satisfied(&self, net: &Network, class_var: VarId, inst_var: VarId) -> bool {
        match (net.value(class_var).as_span(), net.value(inst_var).as_f64()) {
            (Some(range), Some(x)) => range.contains(x),
            _ => true,
        }
    }
}

/// Link semantics for signal bit widths: instance mirrors class when the
/// class width is fixed; a user-parameterised instance width must agree
/// with a fixed class width.
#[derive(Debug, Clone, Copy, Default)]
pub struct BitWidthLink;

impl LinkSemantics for BitWidthLink {
    fn name(&self) -> &str {
        "bitWidthLink"
    }

    fn downward(&self, net: &Network, class_var: VarId, _inst_var: VarId) -> Option<Value> {
        let v = net.value(class_var);
        if v.is_nil() {
            None
        } else {
            Some(v.clone())
        }
    }

    fn is_satisfied(&self, net: &Network, class_var: VarId, inst_var: VarId) -> bool {
        let (c, i) = (net.value(class_var), net.value(inst_var));
        c.is_nil() || i.is_nil() || c == i
    }
}

pub(crate) struct CellClassData {
    pub(crate) name: String,
    pub(crate) superclass: Option<CellClassId>,
    pub(crate) subclasses: Vec<CellClassId>,
    pub(crate) generic: bool,
    pub(crate) signals: Vec<SignalDef>,
    pub(crate) params: Vec<ParamDef>,
    pub(crate) props: Vec<PropDef>,
    /// Subcells of this class's internal structure.
    pub(crate) subcells: Vec<CellInstanceId>,
    /// Nets of this class's internal structure.
    pub(crate) nets: Vec<NetId>,
    /// Instances *of* this class placed anywhere.
    pub(crate) instances_of: Vec<CellInstanceId>,
    pub(crate) doc: String,
}

pub(crate) struct CellInstanceData {
    pub(crate) name: String,
    pub(crate) class: CellClassId,
    pub(crate) parent: CellClassId,
    pub(crate) transform: Transform,
    pub(crate) bit_width_vars: HashMap<String, VarId>,
    pub(crate) param_vars: HashMap<String, VarId>,
    pub(crate) prop_vars: HashMap<String, VarId>,
    /// Implicit-link constraints keyed by property/`bw:<signal>` name.
    pub(crate) links: HashMap<String, ConstraintId>,
    pub(crate) update_cids: Vec<ConstraintId>,
    pub(crate) connections: HashMap<String, NetId>,
    pub(crate) active: bool,
}

pub(crate) struct NetData {
    pub(crate) name: String,
    pub(crate) parent: CellClassId,
    pub(crate) bit_width: VarId,
    pub(crate) data_type: VarId,
    pub(crate) electrical_type: VarId,
    pub(crate) eq_bit_width: ConstraintId,
    pub(crate) compat_data: ConstraintId,
    pub(crate) compat_electrical: ConstraintId,
    pub(crate) connections: Vec<(CellInstanceId, String)>,
    pub(crate) io_connections: Vec<String>,
    pub(crate) active: bool,
}

/// The integrated design environment: cell library + design hierarchy +
/// constraint network.
///
/// ```
/// use stem_design::{Design, SignalDir};
/// use stem_core::{Value, Justification};
///
/// let mut d = Design::new();
/// let adder = d.define_class("ADDER");
/// d.add_signal(adder, "in1", SignalDir::Input);
/// d.set_signal_bit_width(adder, "in1", 8).unwrap();
/// assert_eq!(d.signal_bit_width(adder, "in1"), Some(8));
/// ```
pub struct Design {
    network: Network,
    forests: SharedForests,
    classes: Vec<CellClassData>,
    instances: Vec<CellInstanceData>,
    nets: Vec<NetData>,
    by_name: HashMap<String, CellClassId>,
    hooks: Vec<StructureHook>,
    views: Vec<ViewRegistration>,
    signal_type_kind: Rc<SignalTypeKind>,
    bit_width_kind: Rc<BitWidthKind>,
}

impl std::fmt::Debug for Design {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Design")
            .field("classes", &self.classes.len())
            .field("instances", &self.instances.len())
            .field("nets", &self.nets.len())
            .field("network", &self.network)
            .finish()
    }
}

impl Default for Design {
    fn default() -> Self {
        Self::new()
    }
}

impl Design {
    /// Creates an empty design environment with the standard type forests.
    pub fn new() -> Self {
        Self::with_forests(TypeForests::default())
    }

    /// Creates a design environment over custom type forests.
    pub fn with_forests(forests: TypeForests) -> Self {
        let forests: SharedForests = Rc::new(RefCell::new(forests));
        Design {
            network: Network::new(),
            signal_type_kind: Rc::new(SignalTypeKind::new(forests.clone())),
            bit_width_kind: Rc::new(BitWidthKind),
            forests,
            classes: Vec::new(),
            instances: Vec::new(),
            nets: Vec::new(),
            by_name: HashMap::new(),
            hooks: Vec::new(),
            views: Vec::new(),
        }
    }

    /// The underlying constraint network.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Mutable access to the underlying constraint network (for tools that
    /// add their own constraints, the STEM extension story).
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.network
    }

    /// The shared type forests.
    pub fn forests(&self) -> &SharedForests {
        &self.forests
    }

    // ------------------------------------------------------------------
    // Classes
    // ------------------------------------------------------------------

    /// Defines a new root cell class. Every class carries the built-in
    /// `boundingBox` property (§7.2).
    ///
    /// # Panics
    ///
    /// Panics on a duplicate class name.
    pub fn define_class(&mut self, name: impl Into<String>) -> CellClassId {
        let name = name.into();
        assert!(
            !self.by_name.contains_key(&name),
            "duplicate cell class {name:?}"
        );
        let id = CellClassId(self.classes.len() as u32);
        let owner: Arc<str> = Arc::from(name.as_str());
        let bbox_var =
            self.network
                .add_variable_with(BOUNDING_BOX, Some(owner), Rc::new(PlainKind));
        self.classes.push(CellClassData {
            name: name.clone(),
            superclass: None,
            subclasses: Vec::new(),
            generic: false,
            signals: Vec::new(),
            params: Vec::new(),
            props: vec![PropDef {
                name: BOUNDING_BOX.to_string(),
                class_var: bbox_var,
                link: PropertyLink::Custom(Rc::new(|d: &Design, inst: CellInstanceId| {
                    Rc::new(BBoxLink {
                        transform: d.instance_transform(inst),
                    }) as Rc<dyn LinkSemantics>
                })),
            }],
            subcells: Vec::new(),
            nets: Vec::new(),
            instances_of: Vec::new(),
            doc: String::new(),
        });
        self.by_name.insert(name, id);
        id
    }

    /// Defines a subclass inheriting the superclass's interface — signals,
    /// parameters and properties are copied with *fresh* class-side
    /// variables ("values of the inherited variables can be different among
    /// different subclasses", §3.3.2); current non-`Nil` class values are
    /// copied over.
    pub fn derive_class(
        &mut self,
        name: impl Into<String>,
        superclass: CellClassId,
    ) -> CellClassId {
        let id = self.define_class(name);
        self.classes[id.index()].superclass = Some(superclass);
        self.classes[superclass.index()].subclasses.push(id);

        // Copy signals.
        for i in 0..self.classes[superclass.index()].signals.len() {
            let (sig_name, dir, pin) = {
                let s = &self.classes[superclass.index()].signals[i];
                (s.name.clone(), s.dir, s.pin)
            };
            self.add_signal(id, sig_name.clone(), dir);
            if let Some(p) = pin {
                self.set_signal_pin(id, &sig_name, p);
            }
            let (src, dst) = {
                let s = &self.classes[superclass.index()].signals[i];
                let d = self.classes[id.index()]
                    .signals
                    .iter()
                    .find(|x| x.name == sig_name)
                    .expect("just added");
                (
                    [
                        s.class_bit_width,
                        s.class_data_type,
                        s.class_electrical_type,
                    ],
                    [
                        d.class_bit_width,
                        d.class_data_type,
                        d.class_electrical_type,
                    ],
                )
            };
            for (s, d) in src.into_iter().zip(dst) {
                self.copy_class_value(s, d);
            }
        }
        // Copy parameters.
        for i in 0..self.classes[superclass.index()].params.len() {
            let (p_name, default, src) = {
                let p = &self.classes[superclass.index()].params[i];
                (p.name.clone(), p.default.clone(), p.class_var)
            };
            let dst = self.add_parameter(id, p_name, default);
            self.copy_class_value(src, dst);
        }
        // Copy non-built-in properties (boundingBox already exists).
        for i in 0..self.classes[superclass.index()].props.len() {
            let (p_name, link, src) = {
                let p = &self.classes[superclass.index()].props[i];
                (p.name.clone(), p.link.clone(), p.class_var)
            };
            let dst = if p_name == BOUNDING_BOX {
                self.class_property_var(id, BOUNDING_BOX).expect("built-in")
            } else {
                self.add_property(id, p_name, link)
            };
            self.copy_class_value(src, dst);
        }
        id
    }

    fn copy_class_value(&mut self, src: VarId, dst: VarId) {
        let v = self.network.value(src).clone();
        if !v.is_nil() {
            let just = match self.network.justification(src) {
                Justification::User => Justification::User,
                _ => Justification::Application,
            };
            self.network
                .set(dst, v, just)
                .expect("fresh variable accepts copy");
        }
    }

    /// Looks up a class by name.
    pub fn class_by_name(&self, name: &str) -> Option<CellClassId> {
        self.by_name.get(name).copied()
    }

    /// The class's name.
    pub fn class_name(&self, class: CellClassId) -> &str {
        &self.classes[class.index()].name
    }

    /// Sets the documentation string of a class.
    pub fn set_doc(&mut self, class: CellClassId, doc: impl Into<String>) {
        self.classes[class.index()].doc = doc.into();
    }

    /// The documentation string of a class.
    pub fn doc(&self, class: CellClassId) -> &str {
        &self.classes[class.index()].doc
    }

    /// Marks a class as generic — no physical realisation; a stand-in whose
    /// descendants are candidate implementations (ch. 8).
    pub fn set_generic(&mut self, class: CellClassId, generic: bool) {
        self.classes[class.index()].generic = generic;
    }

    /// Whether the class is generic.
    pub fn is_generic(&self, class: CellClassId) -> bool {
        self.classes[class.index()].generic
    }

    /// The direct superclass.
    pub fn superclass(&self, class: CellClassId) -> Option<CellClassId> {
        self.classes[class.index()].superclass
    }

    /// Direct subclasses, in definition order.
    pub fn subclasses(&self, class: CellClassId) -> &[CellClassId] {
        &self.classes[class.index()].subclasses
    }

    /// All transitive subclasses (excluding `class` itself), pre-order —
    /// Smalltalk's `allSubclasses` used by module selection (Fig. 7.3, 8.3).
    pub fn all_subclasses(&self, class: CellClassId) -> Vec<CellClassId> {
        let mut out = Vec::new();
        let mut stack: Vec<CellClassId> = self.subclasses(class).to_vec();
        stack.reverse();
        while let Some(c) = stack.pop() {
            out.push(c);
            for &s in self.subclasses(c).iter().rev() {
                stack.push(s);
            }
        }
        out
    }

    /// Whether `descendant` is `ancestor` or below it in the class tree.
    pub fn is_descendant(&self, descendant: CellClassId, ancestor: CellClassId) -> bool {
        let mut cur = Some(descendant);
        while let Some(c) = cur {
            if c == ancestor {
                return true;
            }
            cur = self.superclass(c);
        }
        false
    }

    /// Iterator over all class ids.
    pub fn classes(&self) -> impl Iterator<Item = CellClassId> + '_ {
        (0..self.classes.len() as u32).map(CellClassId)
    }

    // ------------------------------------------------------------------
    // Signals
    // ------------------------------------------------------------------

    /// Adds an io-signal to a class, creating its class-side bit-width and
    /// type variables.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate signal name.
    pub fn add_signal(&mut self, class: CellClassId, name: impl Into<String>, dir: SignalDir) {
        let name = name.into();
        assert!(
            self.signal_def(class, &name).is_none(),
            "duplicate signal {name:?}"
        );
        let owner: Arc<str> = Arc::from(format!("{}.{}", self.class_name(class), name).as_str());
        let bw = self.network.add_variable_with(
            "bitWidth",
            Some(owner.clone()),
            self.bit_width_kind.clone() as Rc<dyn VariableKind>,
        );
        let dt = self.network.add_variable_with(
            "dataType",
            Some(owner.clone()),
            self.signal_type_kind.clone() as Rc<dyn VariableKind>,
        );
        let et = self.network.add_variable_with(
            "electricalType",
            Some(owner),
            self.signal_type_kind.clone() as Rc<dyn VariableKind>,
        );
        self.classes[class.index()].signals.push(SignalDef {
            name,
            dir,
            class_bit_width: bw,
            class_data_type: dt,
            class_electrical_type: et,
            pin: None,
        });
    }

    /// The signal definitions of a class.
    pub fn signals(&self, class: CellClassId) -> &[SignalDef] {
        &self.classes[class.index()].signals
    }

    /// One signal definition by name.
    pub fn signal_def(&self, class: CellClassId, name: &str) -> Option<&SignalDef> {
        self.classes[class.index()]
            .signals
            .iter()
            .find(|s| s.name == name)
    }

    /// Sets a signal's pin location (class-local border coordinates).
    ///
    /// # Panics
    ///
    /// Panics if the signal does not exist.
    pub fn set_signal_pin(&mut self, class: CellClassId, signal: &str, pin: Point) {
        let s = self.classes[class.index()]
            .signals
            .iter_mut()
            .find(|s| s.name == signal)
            .unwrap_or_else(|| panic!("no signal {signal:?}"));
        s.pin = Some(pin);
    }

    /// Sets the class-side bit width of a signal (designer specification).
    ///
    /// # Errors
    ///
    /// Returns a violation if propagation detects a conflict.
    pub fn set_signal_bit_width(
        &mut self,
        class: CellClassId,
        signal: &str,
        width: u32,
    ) -> Result<(), Violation> {
        let var = self
            .signal_def(class, signal)
            .unwrap_or_else(|| panic!("no signal {signal:?}"))
            .class_bit_width;
        self.network
            .set(var, Value::BitWidth(width), Justification::User)
    }

    /// The class-side bit width of a signal, if known.
    pub fn signal_bit_width(&self, class: CellClassId, signal: &str) -> Option<u32> {
        self.signal_def(class, signal)
            .and_then(|s| self.network.value(s.class_bit_width).as_bit_width())
    }

    /// Sets a signal's data type by hierarchy name (e.g. `"IntegerSignal"`).
    ///
    /// # Errors
    ///
    /// Returns a violation on type conflicts.
    ///
    /// # Panics
    ///
    /// Panics on unknown signal or type name.
    pub fn set_signal_data_type(
        &mut self,
        class: CellClassId,
        signal: &str,
        type_name: &str,
    ) -> Result<(), Violation> {
        let tag = self
            .forests
            .borrow()
            .data
            .tag(type_name)
            .unwrap_or_else(|| panic!("unknown data type {type_name:?}"));
        let var = self
            .signal_def(class, signal)
            .unwrap_or_else(|| panic!("no signal {signal:?}"))
            .class_data_type;
        self.network
            .set(var, Value::TypeRef(tag), Justification::User)
    }

    /// Sets a signal's electrical type by hierarchy name (e.g. `"CMOS"`).
    ///
    /// # Errors
    ///
    /// Returns a violation on type conflicts.
    ///
    /// # Panics
    ///
    /// Panics on unknown signal or type name.
    pub fn set_signal_electrical_type(
        &mut self,
        class: CellClassId,
        signal: &str,
        type_name: &str,
    ) -> Result<(), Violation> {
        let tag = self
            .forests
            .borrow()
            .electrical
            .tag(type_name)
            .unwrap_or_else(|| panic!("unknown electrical type {type_name:?}"));
        let var = self
            .signal_def(class, signal)
            .unwrap_or_else(|| panic!("no signal {signal:?}"))
            .class_electrical_type;
        self.network
            .set(var, Value::TypeRef(tag), Justification::User)
    }

    // ------------------------------------------------------------------
    // Parameters & properties
    // ------------------------------------------------------------------

    /// Adds a parameter to a class; returns the class-side range variable.
    pub fn add_parameter(
        &mut self,
        class: CellClassId,
        name: impl Into<String>,
        default: Option<Value>,
    ) -> VarId {
        let name = name.into();
        let owner: Arc<str> = Arc::from(self.class_name(class));
        let var = self
            .network
            .add_variable_with(name.clone(), Some(owner), Rc::new(PlainKind));
        self.classes[class.index()].params.push(ParamDef {
            name,
            class_var: var,
            default,
        });
        var
    }

    /// Adds a property to a class; returns the class-side variable.
    pub fn add_property(
        &mut self,
        class: CellClassId,
        name: impl Into<String>,
        link: PropertyLink,
    ) -> VarId {
        let name = name.into();
        let owner: Arc<str> = Arc::from(self.class_name(class));
        let var = self
            .network
            .add_variable_with(name.clone(), Some(owner), Rc::new(PlainKind));
        self.classes[class.index()].props.push(PropDef {
            name,
            class_var: var,
            link,
        });
        var
    }

    /// The property definitions of a class.
    pub fn properties(&self, class: CellClassId) -> &[PropDef] {
        &self.classes[class.index()].props
    }

    /// The parameter definitions of a class.
    pub fn parameters(&self, class: CellClassId) -> &[ParamDef] {
        &self.classes[class.index()].params
    }

    /// The class-side variable of a property.
    pub fn class_property_var(&self, class: CellClassId, name: &str) -> Option<VarId> {
        self.classes[class.index()]
            .props
            .iter()
            .find(|p| p.name == name)
            .map(|p| p.class_var)
    }

    /// The class-side variable of a parameter.
    pub fn class_parameter_var(&self, class: CellClassId, name: &str) -> Option<VarId> {
        self.classes[class.index()]
            .params
            .iter()
            .find(|p| p.name == name)
            .map(|p| p.class_var)
    }

    /// Assigns a class property value; propagates hierarchically.
    ///
    /// # Errors
    ///
    /// Returns a violation on conflicts.
    ///
    /// # Panics
    ///
    /// Panics on unknown property.
    pub fn set_class_property(
        &mut self,
        class: CellClassId,
        name: &str,
        value: Value,
        justification: Justification,
    ) -> Result<(), Violation> {
        let var = self
            .class_property_var(class, name)
            .unwrap_or_else(|| panic!("no property {name:?}"));
        self.network.set(var, value, justification)
    }

    // ------------------------------------------------------------------
    // Instances
    // ------------------------------------------------------------------

    /// Places an instance of `class` inside `parent`'s internal structure
    /// (`addCell`). Creates the dual instance variables, implicit links,
    /// the parent-bbox update constraint (Fig. 7.8), propagates parameter
    /// defaults, fires [`StructureEvent::InstanceAdded`] and broadcasts
    /// `#changed`.
    ///
    /// # Errors
    ///
    /// Returns a violation when the class's current characteristics
    /// conflict with constraints in the parent context.
    ///
    /// # Panics
    ///
    /// Panics if `parent == class`.
    pub fn instantiate(
        &mut self,
        class: CellClassId,
        parent: CellClassId,
        name: impl Into<String>,
        transform: Transform,
    ) -> Result<CellInstanceId, Violation> {
        assert!(
            !self.structure_contains(class, parent),
            "containment cycle: {} already contains {} (directly or transitively)",
            self.class_name(class),
            self.class_name(parent),
        );
        let id = CellInstanceId(self.instances.len() as u32);
        let name = name.into();
        self.instances.push(CellInstanceData {
            name: name.clone(),
            class,
            parent,
            transform,
            bit_width_vars: HashMap::new(),
            param_vars: HashMap::new(),
            prop_vars: HashMap::new(),
            links: HashMap::new(),
            update_cids: Vec::new(),
            connections: HashMap::new(),
            active: true,
        });
        let owner: Arc<str> = Arc::from(format!("{}.{}", self.class_name(parent), name).as_str());

        // Dual bit-width variables per signal.
        for i in 0..self.classes[class.index()].signals.len() {
            let (sig_name, class_bw) = {
                let s = &self.classes[class.index()].signals[i];
                (s.name.clone(), s.class_bit_width)
            };
            let inst_bw = self.network.add_variable_with(
                format!("{sig_name}.bitWidth"),
                Some(owner.clone()),
                self.bit_width_kind.clone() as Rc<dyn VariableKind>,
            );
            self.instances[id.index()]
                .bit_width_vars
                .insert(sig_name.clone(), inst_bw);
            let cid = self
                .network
                .add_constraint(ImplicitLink::new(BitWidthLink), [class_bw, inst_bw])?;
            self.instances[id.index()]
                .links
                .insert(format!("bw:{sig_name}"), cid);
        }

        // Dual parameter variables.
        for i in 0..self.classes[class.index()].params.len() {
            let (p_name, class_var, default) = {
                let p = &self.classes[class.index()].params[i];
                (p.name.clone(), p.class_var, p.default.clone())
            };
            let inst_var = self.network.add_variable_with(
                p_name.clone(),
                Some(owner.clone()),
                Rc::new(PlainKind),
            );
            self.instances[id.index()]
                .param_vars
                .insert(p_name.clone(), inst_var);
            if let Some(v) = default {
                self.network.set(inst_var, v, Justification::DefaultValue)?;
            }
            let cid = self
                .network
                .add_constraint(ImplicitLink::new(ParamRangeLink), [class_var, inst_var])?;
            self.instances[id.index()]
                .links
                .insert(format!("param:{p_name}"), cid);
        }

        // Dual property variables + links.
        for i in 0..self.classes[class.index()].props.len() {
            let (p_name, class_var, link) = {
                let p = &self.classes[class.index()].props[i];
                (p.name.clone(), p.class_var, p.link.clone())
            };
            let inst_var = self.network.add_variable_with(
                p_name.clone(),
                Some(owner.clone()),
                Rc::new(PlainKind),
            );
            self.instances[id.index()]
                .prop_vars
                .insert(p_name.clone(), inst_var);
            let semantics: Option<Rc<dyn LinkSemantics>> = match link {
                PropertyLink::Mirror => Some(Rc::new(stem_core::kinds::EqualLink)),
                PropertyLink::Custom(factory) => Some(factory(self, id)),
                PropertyLink::Independent => None,
            };
            if let Some(sem) = semantics {
                let cid = self
                    .network
                    .add_constraint(ImplicitLink::from_rc(sem), [class_var, inst_var])?;
                self.instances[id.index()].links.insert(p_name.clone(), cid);
            }
        }

        // Parent bounding box depends on every subcell bounding box
        // (Fig. 7.8, expressed as an update-constraint).
        let inst_bbox = self.instances[id.index()].prop_vars[BOUNDING_BOX];
        let parent_bbox = self
            .class_property_var(parent, BOUNDING_BOX)
            .expect("built-in");
        let upd = self
            .network
            .add_constraint(UpdateConstraint::new(1), [inst_bbox, parent_bbox])?;
        self.instances[id.index()].update_cids.push(upd);

        self.classes[class.index()].instances_of.push(id);
        self.classes[parent.index()].subcells.push(id);
        self.invalidate_class_bbox(parent);
        self.fire(StructureEvent::InstanceAdded { instance: id });
        self.notify_changed(parent, ChangeKey::Structure);
        Ok(id)
    }

    /// Removes an instance (`removeCell`): disconnects its nets, removes
    /// its implicit links and update constraints (with dependency-directed
    /// erasure), and broadcasts the change.
    pub fn remove_instance(&mut self, inst: CellInstanceId) {
        if !self.instances[inst.index()].active {
            return;
        }
        // Disconnect from all nets first.
        let conns: Vec<(String, NetId)> = self.instances[inst.index()]
            .connections
            .iter()
            .map(|(s, &n)| (s.clone(), n))
            .collect();
        for (signal, net) in conns {
            let _ = self.disconnect(net, inst, &signal);
        }
        let links: Vec<ConstraintId> = self.instances[inst.index()]
            .links
            .values()
            .copied()
            .collect();
        for cid in links {
            self.network.remove_constraint(cid);
        }
        let upds = std::mem::take(&mut self.instances[inst.index()].update_cids);
        for cid in upds {
            self.network.remove_constraint(cid);
        }
        let parent = self.instances[inst.index()].parent;
        let class = self.instances[inst.index()].class;
        self.instances[inst.index()].active = false;
        self.classes[parent.index()].subcells.retain(|&i| i != inst);
        self.classes[class.index()]
            .instances_of
            .retain(|&i| i != inst);
        self.invalidate_class_bbox(parent);
        self.fire(StructureEvent::InstanceRemoved {
            instance: inst,
            parent,
        });
        self.notify_changed(parent, ChangeKey::Structure);
    }

    /// Whether `inner`'s internal structure (transitively) uses `outer` —
    /// including `inner == outer`. Used to reject containment cycles.
    pub fn structure_contains(&self, inner: CellClassId, outer: CellClassId) -> bool {
        if inner == outer {
            return true;
        }
        let mut stack = vec![inner];
        let mut seen = HashSet::new();
        while let Some(c) = stack.pop() {
            if !seen.insert(c) {
                continue;
            }
            for &i in self.subcells(c) {
                let sc = self.instance_class(i);
                if sc == outer {
                    return true;
                }
                stack.push(sc);
            }
        }
        false
    }

    /// The class an instance instantiates.
    pub fn instance_class(&self, inst: CellInstanceId) -> CellClassId {
        self.instances[inst.index()].class
    }

    /// The composite cell containing an instance.
    pub fn instance_parent(&self, inst: CellInstanceId) -> CellClassId {
        self.instances[inst.index()].parent
    }

    /// The instance's name.
    pub fn instance_name(&self, inst: CellInstanceId) -> &str {
        &self.instances[inst.index()].name
    }

    /// Whether the instance is still placed.
    pub fn instance_active(&self, inst: CellInstanceId) -> bool {
        self.instances[inst.index()].active
    }

    /// The instance's placement transform.
    pub fn instance_transform(&self, inst: CellInstanceId) -> Transform {
        self.instances[inst.index()].transform
    }

    /// Moves an instance: rebuilds its bounding-box link with the new
    /// transform and invalidates the parent bounding box.
    ///
    /// # Errors
    ///
    /// Returns a violation — and leaves the instance where it was — when
    /// the new orientation no longer fits a user-allotted instance box.
    pub fn set_instance_transform(
        &mut self,
        inst: CellInstanceId,
        transform: Transform,
    ) -> Result<(), Violation> {
        let previous = self.instances[inst.index()].transform;
        self.instances[inst.index()].transform = transform;
        // Rebuild the bbox link so its baked transform is current.
        if let Some(&old) = self.instances[inst.index()].links.get(BOUNDING_BOX) {
            self.network.remove_constraint(old);
            let class_var = self
                .class_property_var(self.instance_class(inst), BOUNDING_BOX)
                .expect("built-in");
            let inst_var = self.instances[inst.index()].prop_vars[BOUNDING_BOX];
            let cid = match self.network.add_constraint(
                ImplicitLink::new(BBoxLink { transform }),
                [class_var, inst_var],
            ) {
                Ok(cid) => cid,
                Err(v) => {
                    // Roll the move back: restore the old transform/link.
                    self.instances[inst.index()].transform = previous;
                    let cid = self
                        .network
                        .add_constraint(
                            ImplicitLink::new(BBoxLink {
                                transform: previous,
                            }),
                            [class_var, inst_var],
                        )
                        .expect("previous placement was consistent");
                    self.instances[inst.index()]
                        .links
                        .insert(BOUNDING_BOX.to_string(), cid);
                    return Err(v);
                }
            };
            self.instances[inst.index()]
                .links
                .insert(BOUNDING_BOX.to_string(), cid);
        }
        let parent = self.instance_parent(inst);
        self.invalidate_class_bbox(parent);
        self.fire(StructureEvent::TransformChanged { instance: inst });
        self.notify_changed(parent, ChangeKey::Layout);
        Ok(())
    }

    /// The subcells of a class's internal structure.
    pub fn subcells(&self, class: CellClassId) -> &[CellInstanceId] {
        &self.classes[class.index()].subcells
    }

    /// All placements of a class anywhere in the environment.
    pub fn instances_of(&self, class: CellClassId) -> &[CellInstanceId] {
        &self.classes[class.index()].instances_of
    }

    /// The instance-side variable of a property.
    pub fn instance_property_var(&self, inst: CellInstanceId, name: &str) -> Option<VarId> {
        self.instances[inst.index()].prop_vars.get(name).copied()
    }

    /// The instance-side variable of a parameter.
    pub fn instance_parameter_var(&self, inst: CellInstanceId, name: &str) -> Option<VarId> {
        self.instances[inst.index()].param_vars.get(name).copied()
    }

    /// The instance-side bit-width variable of a signal.
    pub fn instance_bit_width_var(&self, inst: CellInstanceId, signal: &str) -> Option<VarId> {
        self.instances[inst.index()]
            .bit_width_vars
            .get(signal)
            .copied()
    }

    /// Assigns an instance parameter value (checked against the class
    /// range by the implicit link).
    ///
    /// # Errors
    ///
    /// Returns a violation when the value falls outside the class range or
    /// conflicts with other constraints.
    ///
    /// # Panics
    ///
    /// Panics on unknown parameter.
    pub fn set_parameter(
        &mut self,
        inst: CellInstanceId,
        name: &str,
        value: Value,
    ) -> Result<(), Violation> {
        let var = self
            .instance_parameter_var(inst, name)
            .unwrap_or_else(|| panic!("no parameter {name:?}"));
        self.network.set(var, value, Justification::User)
    }

    /// The net a signal of an instance is connected to, if any.
    pub fn connection(&self, inst: CellInstanceId, signal: &str) -> Option<NetId> {
        self.instances[inst.index()]
            .connections
            .get(signal)
            .copied()
    }

    // ------------------------------------------------------------------
    // Bounding boxes (lazy recomputation, §6.5.1 + §7.2)
    // ------------------------------------------------------------------

    /// Erases a class bounding box (it will be recomputed on demand).
    pub fn invalidate_class_bbox(&mut self, class: CellClassId) {
        let var = self
            .class_property_var(class, BOUNDING_BOX)
            .expect("built-in");
        if !self.network.value(var).is_nil() {
            // Plain store: erasure must not be blocked by propagation
            // conflicts (it is consistency maintenance, not a design step).
            let enabled = self.network.is_propagation_enabled();
            self.network.set_propagation_enabled(false);
            self.network
                .set(var, Value::Nil, Justification::Update)
                .expect("plain store");
            self.network.set_propagation_enabled(enabled);
        }
    }

    /// The class bounding box, recomputing it from the internal structure
    /// when erased (`calculateBoundingBox`): the union of all subcell
    /// instance boxes. Leaf cells (no subcells) return whatever value the
    /// designer assigned, or `None`.
    pub fn class_bounding_box(&mut self, class: CellClassId) -> Option<Rect> {
        let var = self
            .class_property_var(class, BOUNDING_BOX)
            .expect("built-in");
        if let Some(r) = self.network.value(var).as_rect() {
            return Some(r);
        }
        let subs = self.classes[class.index()].subcells.clone();
        if subs.is_empty() {
            return None;
        }
        let mut boxes = Vec::new();
        for s in subs {
            if let Some(b) = self.instance_bounding_box(s) {
                boxes.push(b);
            }
        }
        let union = Rect::union_all(boxes)?;
        // Assign with propagation: instances of this class get fresh
        // default boxes, and their parents' boxes are invalidated in turn.
        match self
            .network
            .set(var, Value::Rect(union), Justification::Application)
        {
            Ok(()) => Some(union),
            Err(_) => Some(union), // conflicting spec: report value, keep spec
        }
    }

    /// Sets a (leaf) class's bounding box directly.
    ///
    /// # Errors
    ///
    /// Returns a violation when instances cannot accommodate the new box.
    pub fn set_class_bounding_box(&mut self, class: CellClassId, r: Rect) -> Result<(), Violation> {
        let var = self
            .class_property_var(class, BOUNDING_BOX)
            .expect("built-in");
        self.network.set(var, Value::Rect(r), Justification::User)
    }

    /// The bounding box of an instance, in parent coordinates: the stored
    /// instance box if any, else the transformed class box.
    pub fn instance_bounding_box(&mut self, inst: CellInstanceId) -> Option<Rect> {
        let class = self.instance_class(inst);
        let class_box = self.class_bounding_box(class);
        let var = self.instances[inst.index()].prop_vars[BOUNDING_BOX];
        if let Some(r) = self.network.value(var).as_rect() {
            return Some(r);
        }
        class_box.map(|r| self.instance_transform(inst).apply_rect(r))
    }

    /// Stretches an instance into a larger area (§7.2): the instance box
    /// must be able to contain the transformed class box.
    ///
    /// # Errors
    ///
    /// Returns a violation if the area is too small.
    pub fn set_instance_bounding_box(
        &mut self,
        inst: CellInstanceId,
        r: Rect,
    ) -> Result<(), Violation> {
        let var = self.instances[inst.index()].prop_vars[BOUNDING_BOX];
        self.network.set(var, Value::Rect(r), Justification::User)
    }

    /// The io-pins of an instance in parent coordinates, stretched to the
    /// instance bounding box (Fig. 7.6).
    pub fn instance_pins(&mut self, inst: CellInstanceId) -> Vec<(String, Point)> {
        let class = self.instance_class(inst);
        let Some(class_box) = self.class_bounding_box(class) else {
            return Vec::new();
        };
        let t = self.instance_transform(inst);
        let inst_box = self
            .instance_bounding_box(inst)
            .unwrap_or_else(|| t.apply_rect(class_box));
        let local_target = t.inverse().apply_rect(inst_box);
        self.classes[class.index()]
            .signals
            .iter()
            .filter_map(|s| {
                let pin = s.pin?;
                let stretched = stretch_pin(pin, class_box, local_target);
                Some((s.name.clone(), t.apply(stretched)))
            })
            .collect()
    }

    // ------------------------------------------------------------------
    // Nets
    // ------------------------------------------------------------------

    /// Creates a net inside `parent`'s internal structure, with its typing
    /// variables and (initially single-argument) typing constraints.
    pub fn add_net(&mut self, parent: CellClassId, name: impl Into<String>) -> NetId {
        let name = name.into();
        let id = NetId(self.nets.len() as u32);
        let owner: Arc<str> = Arc::from(format!("{}.{}", self.class_name(parent), name).as_str());
        let bw = self.network.add_variable_with(
            "bitWidth",
            Some(owner.clone()),
            self.bit_width_kind.clone() as Rc<dyn VariableKind>,
        );
        let dt = self.network.add_variable_with(
            "dataType",
            Some(owner.clone()),
            self.signal_type_kind.clone() as Rc<dyn VariableKind>,
        );
        let et = self.network.add_variable_with(
            "electricalType",
            Some(owner),
            self.signal_type_kind.clone() as Rc<dyn VariableKind>,
        );
        let eq = self.network.add_constraint_quiet(Equality::new(), [bw]);
        let cd = self
            .network
            .add_constraint_quiet(Compatible::new(self.forests.clone()), [dt]);
        let ce = self
            .network
            .add_constraint_quiet(Compatible::new(self.forests.clone()), [et]);
        self.nets.push(NetData {
            name,
            parent,
            bit_width: bw,
            data_type: dt,
            electrical_type: et,
            eq_bit_width: eq,
            compat_data: cd,
            compat_electrical: ce,
            connections: Vec::new(),
            io_connections: Vec::new(),
            active: true,
        });
        self.classes[parent.index()].nets.push(id);
        id
    }

    /// The nets of a class's internal structure.
    pub fn nets_of(&self, class: CellClassId) -> &[NetId] {
        &self.classes[class.index()].nets
    }

    /// The net's name.
    pub fn net_name(&self, net: NetId) -> &str {
        &self.nets[net.index()].name
    }

    /// The cell class whose internal structure contains the net.
    pub fn net_parent(&self, net: NetId) -> CellClassId {
        self.nets[net.index()].parent
    }

    /// The net's typing variables `(bitWidth, dataType, electricalType)`.
    pub fn net_type_vars(&self, net: NetId) -> (VarId, VarId, VarId) {
        let n = &self.nets[net.index()];
        (n.bit_width, n.data_type, n.electrical_type)
    }

    /// Instance-pin connections of a net.
    pub fn net_connections(&self, net: NetId) -> &[(CellInstanceId, String)] {
        &self.nets[net.index()].connections
    }

    /// Io-signal connections of a net (signals of the *parent* cell).
    pub fn net_io_connections(&self, net: NetId) -> &[String] {
        &self.nets[net.index()].io_connections
    }

    /// Connects an instance pin to a net, installing the signal typing
    /// constraints of §7.1 (bit-width equality plus data/electrical
    /// compatibility). This is where Fig. 7.1's bit-width violation fires.
    ///
    /// # Errors
    ///
    /// Returns a violation on type/width conflicts; the connection is
    /// rolled back.
    ///
    /// # Panics
    ///
    /// Panics if the instance has no such signal or lives in a different
    /// parent cell.
    pub fn connect(
        &mut self,
        net: NetId,
        inst: CellInstanceId,
        signal: &str,
    ) -> Result<(), Violation> {
        assert_eq!(
            self.instances[inst.index()].parent,
            self.nets[net.index()].parent,
            "net and instance belong to different cells"
        );
        let inst_bw = self
            .instance_bit_width_var(inst, signal)
            .unwrap_or_else(|| panic!("no signal {signal:?} on {inst}"));
        let class = self.instance_class(inst);
        let sig = self
            .signal_def(class, signal)
            .expect("signal exists on class")
            .clone();
        let (eq, cd, ce) = {
            let n = &self.nets[net.index()];
            (n.eq_bit_width, n.compat_data, n.compat_electrical)
        };
        self.network.attach_arg(eq, inst_bw)?;
        if let Err(v) = self.network.attach_arg(cd, sig.class_data_type) {
            let _ = self.network.detach_arg(eq, inst_bw);
            return Err(v);
        }
        if let Err(v) = self.network.attach_arg(ce, sig.class_electrical_type) {
            let _ = self.network.detach_arg(eq, inst_bw);
            let _ = self.network.detach_arg(cd, sig.class_data_type);
            return Err(v);
        }
        self.nets[net.index()]
            .connections
            .push((inst, signal.to_string()));
        self.instances[inst.index()]
            .connections
            .insert(signal.to_string(), net);
        let parent = self.nets[net.index()].parent;
        self.fire(StructureEvent::NetConnected {
            net,
            instance: Some(inst),
            signal: signal.to_string(),
        });
        self.notify_changed(parent, ChangeKey::Netlist);
        Ok(())
    }

    /// Connects a net to one of the *parent cell's own* io-signals,
    /// linking internal structure to the cell interface.
    ///
    /// # Errors
    ///
    /// Returns a violation on type/width conflicts; rolled back.
    ///
    /// # Panics
    ///
    /// Panics on unknown signal.
    pub fn connect_io(&mut self, net: NetId, signal: &str) -> Result<(), Violation> {
        let parent = self.nets[net.index()].parent;
        let sig = self
            .signal_def(parent, signal)
            .unwrap_or_else(|| panic!("no io-signal {signal:?}"))
            .clone();
        let (eq, cd, ce) = {
            let n = &self.nets[net.index()];
            (n.eq_bit_width, n.compat_data, n.compat_electrical)
        };
        self.network.attach_arg(eq, sig.class_bit_width)?;
        if let Err(v) = self.network.attach_arg(cd, sig.class_data_type) {
            let _ = self.network.detach_arg(eq, sig.class_bit_width);
            return Err(v);
        }
        if let Err(v) = self.network.attach_arg(ce, sig.class_electrical_type) {
            let _ = self.network.detach_arg(eq, sig.class_bit_width);
            let _ = self.network.detach_arg(cd, sig.class_data_type);
            return Err(v);
        }
        self.nets[net.index()]
            .io_connections
            .push(signal.to_string());
        self.fire(StructureEvent::NetConnected {
            net,
            instance: None,
            signal: signal.to_string(),
        });
        self.notify_changed(parent, ChangeKey::Netlist);
        Ok(())
    }

    /// Disconnects an instance pin from a net, removing its contribution
    /// to the typing constraints (dependency-directed erasure applies).
    ///
    /// # Errors
    ///
    /// Propagates violations raised while the remaining arguments
    /// re-assert their values.
    pub fn disconnect(
        &mut self,
        net: NetId,
        inst: CellInstanceId,
        signal: &str,
    ) -> Result<(), Violation> {
        let Some(pos) = self.nets[net.index()]
            .connections
            .iter()
            .position(|(i, s)| *i == inst && s == signal)
        else {
            return Ok(());
        };
        self.nets[net.index()].connections.remove(pos);
        self.instances[inst.index()].connections.remove(signal);
        let inst_bw = self
            .instance_bit_width_var(inst, signal)
            .expect("signal exists");
        let class = self.instance_class(inst);
        let sig = self
            .signal_def(class, signal)
            .expect("signal exists")
            .clone();
        let (eq, cd, ce) = {
            let n = &self.nets[net.index()];
            (n.eq_bit_width, n.compat_data, n.compat_electrical)
        };
        let still_used = |d: &Design, var: VarId| {
            d.nets[net.index()].connections.iter().any(|(i, s)| {
                let c = d.instance_class(*i);
                d.signal_def(c, s)
                    .map(|sd| sd.class_data_type == var || sd.class_electrical_type == var)
                    .unwrap_or(false)
            })
        };
        self.network.detach_arg(eq, inst_bw)?;
        // Class-side type vars may be shared by sibling instances of the
        // same class on this net; detach only when no longer used.
        if !still_used(self, sig.class_data_type) {
            self.network.detach_arg(cd, sig.class_data_type)?;
        }
        if !still_used(self, sig.class_electrical_type) {
            self.network.detach_arg(ce, sig.class_electrical_type)?;
        }
        let parent = self.nets[net.index()].parent;
        self.fire(StructureEvent::NetDisconnected {
            net,
            instance: Some(inst),
            signal: signal.to_string(),
        });
        self.notify_changed(parent, ChangeKey::Netlist);
        Ok(())
    }

    /// Removes a net entirely: disconnects everything and removes the
    /// typing constraints (dependency-directed erasure resets inferred
    /// signal types).
    pub fn remove_net(&mut self, net: NetId) {
        if !self.nets[net.index()].active {
            return;
        }
        let conns = self.nets[net.index()].connections.clone();
        for (inst, signal) in conns {
            let _ = self.disconnect(net, inst, &signal);
        }
        let (eq, cd, ce) = {
            let n = &self.nets[net.index()];
            (n.eq_bit_width, n.compat_data, n.compat_electrical)
        };
        self.network.remove_constraint(eq);
        self.network.remove_constraint(cd);
        self.network.remove_constraint(ce);
        let parent = self.nets[net.index()].parent;
        self.nets[net.index()].io_connections.clear();
        self.nets[net.index()].active = false;
        self.classes[parent.index()].nets.retain(|&n| n != net);
        self.invalidate_class_bbox(parent);
        self.notify_changed(parent, ChangeKey::Structure);
    }

    /// Whether the net still exists.
    pub fn net_active(&self, net: NetId) -> bool {
        self.nets[net.index()].active
    }

    // ------------------------------------------------------------------
    // Hooks, views and change broadcast (§6.5.2)
    // ------------------------------------------------------------------

    /// Registers a structural-edit hook (tool integration: signal typing,
    /// delay networks, …).
    pub fn add_hook(&mut self, hook: impl Fn(&mut Design, &StructureEvent) + 'static) {
        self.hooks.push(Rc::new(hook));
    }

    fn fire(&mut self, ev: StructureEvent) {
        let hooks = self.hooks.clone();
        for h in &hooks {
            h(self, &ev);
        }
    }

    /// Registers a calculated view's erasure callback against its model
    /// class. The callback receives the change key and decides whether to
    /// erase (selective erasure, `#changed:key`).
    pub fn register_view(
        &mut self,
        model: CellClassId,
        callback: impl Fn(ChangeKey) + 'static,
    ) -> ViewHandle {
        let h = ViewHandle(self.views.len());
        self.views.push(ViewRegistration {
            model,
            callback: Rc::new(callback),
            active: true,
        });
        h
    }

    /// Unregisters a view.
    pub fn unregister_view(&mut self, handle: ViewHandle) {
        if let Some(v) = self.views.get_mut(handle.0) {
            v.active = false;
        }
    }

    /// Broadcasts `#changed:key` from a model class: its views erase, and
    /// — when the key can affect external properties — the change
    /// propagates to every cell containing an instance of it (§6.5.2).
    pub fn notify_changed(&mut self, class: CellClassId, key: ChangeKey) {
        let mut seen = HashSet::new();
        self.notify_changed_inner(class, key, &mut seen);
    }

    fn notify_changed_inner(
        &mut self,
        class: CellClassId,
        key: ChangeKey,
        seen: &mut HashSet<CellClassId>,
    ) {
        if !seen.insert(class) {
            return;
        }
        let callbacks: Vec<Rc<dyn Fn(ChangeKey)>> = self
            .views
            .iter()
            .filter(|v| v.active && v.model == class)
            .map(|v| v.callback.clone())
            .collect();
        for cb in callbacks {
            cb(key);
        }
        if key.propagates_up() {
            let parents: Vec<CellClassId> = self.classes[class.index()]
                .instances_of
                .iter()
                .filter(|&&i| self.instances[i.index()].active)
                .map(|&i| self.instances[i.index()].parent)
                .collect();
            for p in parents {
                self.notify_changed_inner(p, key, seen);
            }
        }
    }
}
