//! Signal type hierarchies (thesis §7.1, Fig. 7.2) and the signal-variable
//! overwrite rules (Fig. 7.4).
//!
//! Data and electrical types of signals "are defined hierarchically, with
//! the most abstract types at the roots". Compatibility is purely
//! positional: two types are compatible iff one is an ancestor of the
//! other; the less abstract of two compatible types is the descendant.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use stem_core::{Network, Overwrite, TypeTag, Value, VarId, VariableKind};

/// Identifier of the data-type forest created by
/// [`TypeHierarchy::standard_data_types`].
pub const DATA_TYPE_HIERARCHY: u32 = 0;

/// Identifier of the electrical-type forest created by
/// [`TypeHierarchy::standard_electrical_types`].
pub const ELECTRICAL_TYPE_HIERARCHY: u32 = 1;

/// A rooted type tree; node 0 is the (most abstract) root.
///
/// ```
/// use stem_design::TypeHierarchy;
/// let h = TypeHierarchy::standard_data_types();
/// let bit = h.tag("Bit").unwrap();
/// let bcd = h.tag("BCDSignal").unwrap();
/// let int = h.tag("IntegerSignal").unwrap();
/// assert!(h.is_compatible(int, bcd));
/// assert!(!h.is_compatible(bit, bcd));
/// assert_eq!(h.less_abstract(int, bcd), Some(bcd));
/// ```
#[derive(Debug, Clone)]
pub struct TypeHierarchy {
    id: u32,
    names: Vec<String>,
    parents: Vec<Option<u32>>,
    by_name: HashMap<String, u32>,
}

impl TypeHierarchy {
    /// Creates a hierarchy with a single root type.
    pub fn new(id: u32, root: impl Into<String>) -> Self {
        let root = root.into();
        let mut by_name = HashMap::new();
        by_name.insert(root.clone(), 0);
        TypeHierarchy {
            id,
            names: vec![root],
            parents: vec![None],
            by_name,
        }
    }

    /// The hierarchy id (used inside [`TypeTag`]s).
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Adds a type under `parent`.
    ///
    /// # Panics
    ///
    /// Panics if `parent` belongs to another hierarchy or the name exists.
    pub fn add(&mut self, name: impl Into<String>, parent: TypeTag) -> TypeTag {
        assert_eq!(parent.hierarchy, self.id, "parent from another hierarchy");
        assert!((parent.node as usize) < self.names.len(), "bad parent");
        let name = name.into();
        assert!(
            !self.by_name.contains_key(&name),
            "duplicate type name {name:?}"
        );
        let node = self.names.len() as u32;
        self.by_name.insert(name.clone(), node);
        self.names.push(name);
        self.parents.push(Some(parent.node));
        TypeTag {
            hierarchy: self.id,
            node,
        }
    }

    /// The root tag.
    pub fn root(&self) -> TypeTag {
        TypeTag {
            hierarchy: self.id,
            node: 0,
        }
    }

    /// Looks up a type by name.
    pub fn tag(&self, name: &str) -> Option<TypeTag> {
        self.by_name.get(name).map(|&node| TypeTag {
            hierarchy: self.id,
            node,
        })
    }

    /// Name of a tag.
    ///
    /// # Panics
    ///
    /// Panics if `tag` is not from this hierarchy.
    pub fn name(&self, tag: TypeTag) -> &str {
        assert_eq!(tag.hierarchy, self.id);
        &self.names[tag.node as usize]
    }

    /// Whether `a` is an ancestor of, or equal to, `b` (i.e. `a` is at
    /// least as abstract).
    pub fn is_ancestor(&self, a: TypeTag, b: TypeTag) -> bool {
        if a.hierarchy != self.id || b.hierarchy != self.id {
            return false;
        }
        let mut cur = Some(b.node);
        while let Some(n) = cur {
            if n == a.node {
                return true;
            }
            cur = self.parents[n as usize];
        }
        false
    }

    /// `isCompatibleWith:` (Fig. 7.3): compatible iff one is a sub-type of
    /// the other (or equal).
    pub fn is_compatible(&self, a: TypeTag, b: TypeTag) -> bool {
        self.is_ancestor(a, b) || self.is_ancestor(b, a)
    }

    /// Of two compatible types, the less abstract one (the descendant);
    /// `None` when incompatible.
    pub fn less_abstract(&self, a: TypeTag, b: TypeTag) -> Option<TypeTag> {
        if self.is_ancestor(a, b) {
            Some(b)
        } else if self.is_ancestor(b, a) {
            Some(a)
        } else {
            None
        }
    }

    /// The data-type hierarchy of thesis Fig. 7.2.
    pub fn standard_data_types() -> Self {
        let mut h = TypeHierarchy::new(DATA_TYPE_HIERARCHY, "DataType");
        let root = h.root();
        h.add("Bit", root);
        let float = h.add("FloatSignal", root);
        let _ = float;
        let int = h.add("IntegerSignal", root);
        h.add("A2CIntSignal", int);
        h.add("BCDSignal", int);
        h.add("SignedMagIntSignal", int);
        h.add("WholeSignal", int);
        h
    }

    /// The electrical-type hierarchy of thesis Fig. 7.2.
    pub fn standard_electrical_types() -> Self {
        let mut h = TypeHierarchy::new(ELECTRICAL_TYPE_HIERARCHY, "ElectricalType");
        let root = h.root();
        h.add("Analog", root);
        let digital = h.add("Digital", root);
        h.add("BIPOLAR", digital);
        h.add("TTL", digital);
        h.add("CMOS", digital);
        h
    }
}

/// The pair of forests every design carries (data + electrical).
#[derive(Debug, Clone)]
pub struct TypeForests {
    /// Data types (integer, boolean, …).
    pub data: TypeHierarchy,
    /// Electrical types (analog, digital families).
    pub electrical: TypeHierarchy,
}

impl Default for TypeForests {
    fn default() -> Self {
        TypeForests {
            data: TypeHierarchy::standard_data_types(),
            electrical: TypeHierarchy::standard_electrical_types(),
        }
    }
}

impl TypeForests {
    /// The forest a tag belongs to, if any.
    pub fn forest(&self, tag: TypeTag) -> Option<&TypeHierarchy> {
        if tag.hierarchy == self.data.id() {
            Some(&self.data)
        } else if tag.hierarchy == self.electrical.id() {
            Some(&self.electrical)
        } else {
            None
        }
    }

    /// Compatibility across whichever forest the tags share.
    pub fn is_compatible(&self, a: TypeTag, b: TypeTag) -> bool {
        a.hierarchy == b.hierarchy
            && self
                .forest(a)
                .map(|h| h.is_compatible(a, b))
                .unwrap_or(false)
    }
}

/// Shared, mutable handle to the forests: the overwrite rule of signal
/// variables must consult the hierarchy at propagation time, so the kind
/// objects and the [`Design`](crate::Design) share one copy.
pub type SharedForests = Rc<RefCell<TypeForests>>;

/// Variable kind for signal *type* variables (dataType / electricalType),
/// implementing the overwrite rule of thesis Fig. 7.4 and §7.1: a
/// propagated type may replace the current one only if it is **less
/// abstract** (a strict descendant); otherwise the variable silently keeps
/// its value and the compatible-constraint's satisfaction check decides
/// whether that is a conflict.
#[derive(Debug, Clone)]
pub struct SignalTypeKind {
    forests: SharedForests,
}

impl SignalTypeKind {
    /// Creates the kind over shared forests.
    pub fn new(forests: SharedForests) -> Self {
        SignalTypeKind { forests }
    }
}

impl VariableKind for SignalTypeKind {
    fn kind_name(&self) -> &str {
        "signalType"
    }

    fn overwrite(
        &self,
        net: &Network,
        var: VarId,
        new: &Value,
        _source: Option<stem_core::ConstraintId>,
    ) -> Overwrite {
        // To or from Nil is free (handled by the engine before this call
        // for Nil current values; here current is non-Nil).
        if new.is_nil() {
            return Overwrite::Allow;
        }
        let (Some(cur), Some(new)) = (net.value(var).as_type(), new.as_type()) else {
            return Overwrite::Ignore;
        };
        let forests = self.forests.borrow();
        let Some(h) = forests.forest(cur) else {
            return Overwrite::Ignore;
        };
        if h.is_ancestor(cur, new) && cur != new {
            Overwrite::Allow
        } else {
            Overwrite::Ignore
        }
    }
}

/// Variable kind for signal bit-width variables: "a propagated bitWidth
/// value is rejected by a signal variable if the signal has a constrained
/// bitWidth that has a different value" (§7.1) — rejection is silent; the
/// equality constraint's final check raises the violation (Fig. 7.1).
#[derive(Debug, Clone, Copy, Default)]
pub struct BitWidthKind;

impl VariableKind for BitWidthKind {
    fn kind_name(&self) -> &str {
        "bitWidth"
    }

    fn overwrite(
        &self,
        _net: &Network,
        _var: VarId,
        new: &Value,
        _source: Option<stem_core::ConstraintId>,
    ) -> Overwrite {
        if new.is_nil() {
            Overwrite::Allow
        } else {
            Overwrite::Ignore
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_hierarchies_match_fig7_2() {
        let d = TypeHierarchy::standard_data_types();
        for name in [
            "DataType",
            "Bit",
            "FloatSignal",
            "IntegerSignal",
            "A2CIntSignal",
            "BCDSignal",
            "SignedMagIntSignal",
            "WholeSignal",
        ] {
            assert!(d.tag(name).is_some(), "{name} missing");
        }
        let e = TypeHierarchy::standard_electrical_types();
        for name in [
            "ElectricalType",
            "Analog",
            "Digital",
            "BIPOLAR",
            "TTL",
            "CMOS",
        ] {
            assert!(e.tag(name).is_some(), "{name} missing");
        }
    }

    #[test]
    fn ancestry() {
        let d = TypeHierarchy::standard_data_types();
        let root = d.root();
        let int = d.tag("IntegerSignal").unwrap();
        let bcd = d.tag("BCDSignal").unwrap();
        assert!(d.is_ancestor(root, bcd));
        assert!(d.is_ancestor(int, bcd));
        assert!(d.is_ancestor(bcd, bcd));
        assert!(!d.is_ancestor(bcd, int));
    }

    #[test]
    fn compatibility_is_ancestor_or_descendant() {
        let e = TypeHierarchy::standard_electrical_types();
        let digital = e.tag("Digital").unwrap();
        let ttl = e.tag("TTL").unwrap();
        let cmos = e.tag("CMOS").unwrap();
        let analog = e.tag("Analog").unwrap();
        assert!(e.is_compatible(digital, ttl));
        assert!(e.is_compatible(ttl, digital));
        assert!(!e.is_compatible(ttl, cmos), "siblings are incompatible");
        assert!(!e.is_compatible(analog, ttl));
    }

    #[test]
    fn less_abstract_picks_descendant() {
        let e = TypeHierarchy::standard_electrical_types();
        let digital = e.tag("Digital").unwrap();
        let ttl = e.tag("TTL").unwrap();
        assert_eq!(e.less_abstract(digital, ttl), Some(ttl));
        assert_eq!(e.less_abstract(ttl, digital), Some(ttl));
        assert_eq!(e.less_abstract(ttl, ttl), Some(ttl));
        let cmos = e.tag("CMOS").unwrap();
        assert_eq!(e.less_abstract(ttl, cmos), None);
    }

    #[test]
    fn forests_route_by_hierarchy_id() {
        let f = TypeForests::default();
        let bit = f.data.tag("Bit").unwrap();
        let ttl = f.electrical.tag("TTL").unwrap();
        assert!(f.forest(bit).is_some());
        assert!(!f.is_compatible(bit, ttl), "cross-forest never compatible");
    }

    #[test]
    fn tags_are_stable_across_clone() {
        let d = TypeHierarchy::standard_data_types();
        let t = d.tag("WholeSignal").unwrap();
        let d2 = d.clone();
        assert_eq!(d2.name(t), "WholeSignal");
        assert_eq!(d.name(t), "WholeSignal", "original unaffected");
    }

    #[test]
    #[should_panic(expected = "duplicate type name")]
    fn duplicate_names_rejected() {
        let mut d = TypeHierarchy::standard_data_types();
        let root = d.root();
        d.add("Bit", root);
    }
}
