use std::fmt;

/// Handle to a cell class — the library version of a cell, encapsulating
/// its characteristics, interface and internal structure (thesis §3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CellClassId(pub(crate) u32);

impl CellClassId {
    /// Arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CellClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "class#{}", self.0)
    }
}

/// Handle to a cell instance — an individual placement of a cell class as a
/// component of a larger design (thesis §3.2, Fig. 3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CellInstanceId(pub(crate) u32);

impl CellInstanceId {
    /// Arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CellInstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "inst#{}", self.0)
    }
}

/// Handle to a net inside a cell class's internal structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NetId(pub(crate) u32);

impl NetId {
    /// Arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "net#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_index() {
        assert_eq!(CellClassId(1).to_string(), "class#1");
        assert_eq!(CellInstanceId(2).to_string(), "inst#2");
        assert_eq!(NetId(3).to_string(), "net#3");
        assert_eq!(CellClassId(4).index(), 4);
    }
}
