//! Structure events, tool-integration hooks, and the change-broadcast
//! mechanism of thesis §6.5.2.
//!
//! Views are dependents of their models: "whenever an object changes a
//! database object (a model), it must send the database object the message
//! `#changed`", optionally qualified with a key describing the nature of
//! the change. Changes also propagate up the design hierarchy, terminating
//! at cells whose external properties are unaffected.

use crate::ids::{CellClassId, CellInstanceId, NetId};
use std::fmt;
use std::rc::Rc;

/// What kind of change a `#changed:key` broadcast describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChangeKey {
    /// Internal structure changed (subcells or nets added/removed).
    Structure,
    /// Only the layout changed ("no electrical connectivity has been
    /// modified" — a SpiceNet view need not erase).
    Layout,
    /// Electrical connectivity changed.
    Netlist,
    /// A characteristic value changed without structural edits.
    Values,
}

impl ChangeKey {
    /// Whether a change of this kind can affect the external properties of
    /// containing cells, and so must propagate up the hierarchy (§6.5.2).
    pub fn propagates_up(self) -> bool {
        !matches!(self, ChangeKey::Values)
    }
}

impl fmt::Display for ChangeKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A structural edit of a design, delivered to registered hooks so design
/// tools (signal typing, delay networks, …) can install or remove their
/// constraints (§5.3: "delay constraints are instantiated when subcells are
/// added and removed when subcells are removed").
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StructureEvent {
    /// A subcell was placed.
    InstanceAdded {
        /// The new instance.
        instance: CellInstanceId,
    },
    /// A subcell was removed.
    InstanceRemoved {
        /// The removed instance (already inactive).
        instance: CellInstanceId,
        /// The composite it was removed from.
        parent: CellClassId,
    },
    /// A signal was connected to a net.
    NetConnected {
        /// The net.
        net: NetId,
        /// The connected instance, or `None` for the parent cell's own
        /// io-signal.
        instance: Option<CellInstanceId>,
        /// Signal name.
        signal: String,
    },
    /// A signal was disconnected from a net.
    NetDisconnected {
        /// The net.
        net: NetId,
        /// The disconnected instance, or `None` for an io-signal.
        instance: Option<CellInstanceId>,
        /// Signal name.
        signal: String,
    },
    /// A subcell's placement transform changed.
    TransformChanged {
        /// The moved instance.
        instance: CellInstanceId,
    },
}

/// Hook invoked after each structural edit.
pub type StructureHook = Rc<dyn Fn(&mut crate::Design, &StructureEvent)>;

/// Handle returned by [`Design::register_view`](crate::Design::register_view),
/// used to unregister.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ViewHandle(pub(crate) usize);

/// Registration record of a calculated view's erasure callback.
pub(crate) struct ViewRegistration {
    pub(crate) model: CellClassId,
    pub(crate) callback: Rc<dyn Fn(ChangeKey)>,
    pub(crate) active: bool,
}

impl fmt::Debug for ViewRegistration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ViewRegistration")
            .field("model", &self.model)
            .field("active", &self.active)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn propagation_policy() {
        assert!(ChangeKey::Structure.propagates_up());
        assert!(ChangeKey::Layout.propagates_up());
        assert!(ChangeKey::Netlist.propagates_up());
        assert!(!ChangeKey::Values.propagates_up());
    }
}
