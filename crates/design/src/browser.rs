//! Textual cell browsing — the "Cell Browser" user interface of STEM
//! ([Girc87], referenced throughout the thesis: module selection, for
//! instance, "is implemented as a menu action in the Cell Browser"),
//! rendered as a report.

use crate::defs::BOUNDING_BOX;
use crate::design::Design;
use crate::ids::CellClassId;
use std::fmt::Write as _;

/// Renders a full report of one cell class: identity, interface,
/// parameters, properties, internal structure and uses.
pub fn class_report(d: &mut Design, class: CellClassId) -> String {
    let mut out = String::new();
    let name = d.class_name(class).to_string();
    let _ = writeln!(
        out,
        "╔═ cell class {name} {}",
        if d.is_generic(class) { "(generic)" } else { "" }
    );
    if let Some(sup) = d.superclass(class) {
        let _ = writeln!(out, "║ superclass: {}", d.class_name(sup));
    }
    let subs: Vec<&str> = d
        .subclasses(class)
        .to_vec()
        .into_iter()
        .map(|c| d.class_name(c))
        .collect();
    if !subs.is_empty() {
        let _ = writeln!(out, "║ subclasses: {}", subs.join(", "));
    }
    if !d.doc(class).is_empty() {
        let _ = writeln!(out, "║ doc: {}", d.doc(class));
    }
    if let Some(b) = d.class_bounding_box(class) {
        let _ = writeln!(out, "║ bounding box: {b} (area {})", b.area());
    }

    let _ = writeln!(out, "║ interface:");
    for s in d.signals(class).to_vec() {
        let width = d
            .network()
            .value(s.class_bit_width)
            .as_bit_width()
            .map(|w| format!("{w}b"))
            .unwrap_or_else(|| "?".into());
        let forests = d.forests().clone();
        let dt = d
            .network()
            .value(s.class_data_type)
            .as_type()
            .map(|t| forests.borrow().data.name(t).to_string())
            .unwrap_or_else(|| "-".into());
        let et = d
            .network()
            .value(s.class_electrical_type)
            .as_type()
            .map(|t| forests.borrow().electrical.name(t).to_string())
            .unwrap_or_else(|| "-".into());
        let pin = s.pin.map(|p| format!(" pin {p}")).unwrap_or_default();
        let _ = writeln!(
            out,
            "║   {:8} {:5} {width:4} {dt}/{et}{pin}",
            s.name,
            s.dir.to_string()
        );
    }
    for p in d.parameters(class).to_vec() {
        let _ = writeln!(
            out,
            "║   param {} = {} (default {})",
            p.name,
            d.network().value(p.class_var),
            p.default
                .as_ref()
                .map(|v| v.to_string())
                .unwrap_or_else(|| "-".into()),
        );
    }
    for p in d.properties(class).to_vec() {
        if p.name == BOUNDING_BOX {
            continue; // reported above
        }
        let _ = writeln!(
            out,
            "║   property {} = {}",
            p.name,
            d.network().value(p.class_var)
        );
    }

    let subcells = d.subcells(class).to_vec();
    let _ = writeln!(
        out,
        "║ structure: {} subcells, {} nets",
        subcells.len(),
        d.nets_of(class).len()
    );
    for inst in subcells {
        let _ = writeln!(
            out,
            "║   {} : {} @ {}",
            d.instance_name(inst),
            d.class_name(d.instance_class(inst)),
            d.instance_transform(inst),
        );
    }
    for net in d.nets_of(class).to_vec() {
        let _ = writeln!(
            out,
            "║   net {} ({} pins, {} io)",
            d.net_name(net),
            d.net_connections(net).len(),
            d.net_io_connections(net).len(),
        );
    }
    let _ = writeln!(out, "║ used in {} place(s)", d.instances_of(class).len());
    let _ = writeln!(out, "╚═");
    out
}

/// One line per class in the library, as the browser's class list pane.
pub fn library_listing(d: &Design) -> String {
    let mut out = String::new();
    for c in d.classes() {
        let _ = writeln!(
            out,
            "{}{} ({} subcells, used {}×)",
            d.class_name(c),
            if d.is_generic(c) { " [generic]" } else { "" },
            d.subcells(c).len(),
            d.instances_of(c).len(),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::defs::SignalDir;
    use stem_geom::{Point, Rect, Transform};

    #[test]
    fn report_covers_everything() {
        let mut d = Design::new();
        let inv = d.define_class("INV");
        d.add_signal(inv, "a", SignalDir::Input);
        d.set_signal_bit_width(inv, "a", 1).unwrap();
        d.set_signal_data_type(inv, "a", "Bit").unwrap();
        d.set_signal_pin(inv, "a", Point::new(0, 5));
        d.set_class_bounding_box(inv, Rect::with_extent(Point::ORIGIN, 6, 10))
            .unwrap();
        d.set_doc(inv, "a humble inverter");
        d.add_parameter(inv, "drive", Some(stem_core::Value::Int(1)));

        let top = d.define_class("TOP");
        d.instantiate(inv, top, "i1", Transform::IDENTITY).unwrap();
        let n = d.add_net(top, "n1");
        let i1 = d.subcells(top)[0];
        d.connect(n, i1, "a").unwrap();

        let rep = class_report(&mut d, inv);
        for needle in [
            "cell class INV",
            "a humble inverter",
            "1b",
            "Bit",
            "pin (0, 5)",
            "param drive",
            "used in 1 place(s)",
        ] {
            assert!(rep.contains(needle), "missing {needle:?} in:\n{rep}");
        }

        let rep_top = class_report(&mut d, top);
        assert!(rep_top.contains("i1 : INV"), "{rep_top}");
        assert!(rep_top.contains("net n1 (1 pins, 0 io)"), "{rep_top}");

        let listing = library_listing(&d);
        assert!(listing.contains("INV"));
        assert!(listing.contains("TOP"));
    }

    #[test]
    fn generic_and_hierarchy_flags() {
        let mut d = Design::new();
        let root = d.define_class("ROOT");
        d.set_generic(root, true);
        let leaf = d.derive_class("LEAF", root);
        let rep = class_report(&mut d, root);
        assert!(rep.contains("(generic)"));
        assert!(rep.contains("subclasses: LEAF"));
        let rep = class_report(&mut d, leaf);
        assert!(rep.contains("superclass: ROOT"));
        assert!(library_listing(&d).contains("ROOT [generic]"));
    }
}
