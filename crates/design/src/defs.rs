//! Interface definitions of a cell class: signals, parameters and
//! properties, each dual-declared (thesis §3.3.2): the class-side variable
//! holds the characteristic/limit, the instance-side variable (created per
//! placement) holds the contextual value.

use crate::design::Design;
use crate::ids::CellInstanceId;
use std::fmt;
use std::rc::Rc;
use stem_core::kinds::LinkSemantics;
use stem_core::{Value, VarId};
use stem_geom::Point;

/// Direction of an io-signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SignalDir {
    /// Driven from outside the cell.
    Input,
    /// Driven by the cell.
    Output,
    /// Bidirectional.
    InOut,
}

impl fmt::Display for SignalDir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SignalDir::Input => write!(f, "in"),
            SignalDir::Output => write!(f, "out"),
            SignalDir::InOut => write!(f, "inout"),
        }
    }
}

/// An io-signal of a cell class, with its class-side type variables
/// (§3.3.2: "this instance variable contains the data type, electrical
/// type, bit width … of the signal").
#[derive(Debug, Clone)]
pub struct SignalDef {
    /// Signal name, unique within the class.
    pub name: String,
    /// Direction.
    pub dir: SignalDir,
    /// Class-side bit-width variable.
    pub class_bit_width: VarId,
    /// Class-side data-type variable (shared by all instances, §7.1).
    pub class_data_type: VarId,
    /// Class-side electrical-type variable (shared by all instances).
    pub class_electrical_type: VarId,
    /// Pin location on the class bounding-box border, in class-local
    /// coordinates (for butting and stretching, §7.2).
    pub pin: Option<Point>,
}

/// A parameter of a cell class (§5.1.1): the class-side variable
/// characterises the legal range ([`Value::Span`]); instance-side variables
/// hold actual values, checked against the range by an implicit link.
#[derive(Debug, Clone)]
pub struct ParamDef {
    /// Parameter name, unique within the class.
    pub name: String,
    /// Class-side range variable.
    pub class_var: VarId,
    /// Default value propagated to fresh instances.
    pub default: Option<Value>,
}

/// Factory producing the link semantics tying one instance's property
/// variable to the class variable, with access to the instance context
/// (transform, loading, …).
pub type LinkFactory = Rc<dyn Fn(&Design, CellInstanceId) -> Rc<dyn LinkSemantics>>;

/// How a property's dual variables are linked (§5.1.1, properties).
#[derive(Clone)]
pub enum PropertyLink {
    /// Instance value mirrors the class value unchanged.
    Mirror,
    /// Per-instance semantics from a factory (bounding boxes apply the
    /// placement transform; delays apply RC loading adjustments).
    Custom(LinkFactory),
    /// No implicit link: the duals are independent.
    Independent,
}

impl fmt::Debug for PropertyLink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PropertyLink::Mirror => write!(f, "Mirror"),
            PropertyLink::Custom(_) => write!(f, "Custom(..)"),
            PropertyLink::Independent => write!(f, "Independent"),
        }
    }
}

/// A property of a cell class (delay, bounding box, area, …): the
/// class-side variable characterises the nominal value; instance-side
/// variables hold values "adjusted to the contexts of each cell instance".
#[derive(Debug, Clone)]
pub struct PropDef {
    /// Property name, unique within the class.
    pub name: String,
    /// Class-side nominal variable.
    pub class_var: VarId,
    /// Link semantics for instances.
    pub link: PropertyLink,
}

/// The built-in property every cell class carries: its bounding box (§7.2).
pub const BOUNDING_BOX: &str = "boundingBox";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direction_display() {
        assert_eq!(SignalDir::Input.to_string(), "in");
        assert_eq!(SignalDir::Output.to_string(), "out");
        assert_eq!(SignalDir::InOut.to_string(), "inout");
    }

    #[test]
    fn property_link_debug() {
        assert_eq!(format!("{:?}", PropertyLink::Mirror), "Mirror");
        assert_eq!(format!("{:?}", PropertyLink::Independent), "Independent");
    }
}
