//! # stem-design — the object-oriented IC design environment substrate
//!
//! STEM's design representation (thesis ch. 3) and its integration with
//! constraint propagation (ch. 5–6):
//!
//! - **Cell classes** encapsulate a cell's interface (signals with bit
//!   width / data type / electrical type, parameters, properties) and
//!   internal structure (subcells, nets); **cell instances** are individual
//!   placements carrying contextual values.
//! - **Dual variables** (Fig. 3.3): every signal/parameter/property is
//!   declared twice — a class-side characteristic variable and a per-
//!   instance contextual variable, joined by implicit-link constraints on
//!   the lowest-priority agenda. This is what makes constraint propagation
//!   *hierarchical* (ch. 5): internal networks of a cell propagate once
//!   and fan out to every use of the cell.
//! - **Signal typing** (§7.1): nets install bit-width equality and
//!   data/electrical compatible-constraints as signals connect, with the
//!   least-abstract overwrite rule of Fig. 7.4.
//! - **Consistency maintenance** (ch. 6): lazy bounding-box recomputation,
//!   update-constraints, calculated-view registration and `#changed:key`
//!   broadcast up the hierarchy.
//!
//! ```
//! use stem_design::{Design, SignalDir};
//! use stem_geom::Transform;
//!
//! let mut d = Design::new();
//! let inv = d.define_class("INV");
//! d.add_signal(inv, "a", SignalDir::Input);
//! d.add_signal(inv, "y", SignalDir::Output);
//!
//! let buf = d.define_class("BUF");
//! let i1 = d.instantiate(inv, buf, "inv1", Transform::IDENTITY).unwrap();
//! let i2 = d.instantiate(inv, buf, "inv2", Transform::IDENTITY).unwrap();
//! let n = d.add_net(buf, "mid");
//! d.connect(n, i1, "y").unwrap();
//! d.connect(n, i2, "a").unwrap();
//! assert_eq!(d.net_connections(n).len(), 2);
//! ```

#![warn(missing_docs)]
mod browser;
mod compat;
mod defs;
mod design;
mod events;
mod ids;
mod types;

pub use browser::{class_report, library_listing};
pub use compat::Compatible;
pub use defs::{LinkFactory, ParamDef, PropDef, PropertyLink, SignalDef, SignalDir, BOUNDING_BOX};
pub use design::{BBoxLink, BitWidthLink, Design, ParamRangeLink};
pub use events::{ChangeKey, StructureEvent, StructureHook, ViewHandle};
pub use ids::{CellClassId, CellInstanceId, NetId};
pub use types::{
    BitWidthKind, SharedForests, SignalTypeKind, TypeForests, TypeHierarchy, DATA_TYPE_HIERARCHY,
    ELECTRICAL_TYPE_HIERARCHY,
};
