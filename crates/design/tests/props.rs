//! Randomised (seeded, fully deterministic) tests over the design
//! environment: bounding-box composition, hierarchical propagation, and
//! connect/disconnect round-trips on random structures.

use stem_core::prng::SplitMix64;
use stem_core::{Justification, Value};
use stem_design::{Design, PropertyLink, SignalDir};
use stem_geom::{Point, Rect, Transform};

const ITERS: usize = 32;

/// A parent's computed bounding box is exactly the union of its subcells'
/// placed boxes, for random placements.
#[test]
fn parent_bbox_is_union_of_subcells() {
    let mut rng = SplitMix64::new(0xDE_01);
    for _ in 0..ITERS {
        let boxes: Vec<((i64, i64), (i64, i64))> = (0..rng.range_usize(1, 10))
            .map(|_| {
                (
                    (rng.range_i64(1, 40), rng.range_i64(1, 40)),
                    (rng.range_i64(-100, 100), rng.range_i64(-100, 100)),
                )
            })
            .collect();
        let mut d = Design::new();
        let top = d.define_class("TOP");
        let mut expect: Option<Rect> = None;
        for (i, ((w, h), (x, y))) in boxes.iter().enumerate() {
            let leaf = d.define_class(format!("LEAF{i}"));
            d.set_class_bounding_box(leaf, Rect::with_extent(Point::ORIGIN, *w, *h))
                .unwrap();
            let t = Transform::translation(Point::new(*x, *y));
            d.instantiate(leaf, top, format!("l{i}"), t).unwrap();
            let placed = t.apply_rect(Rect::with_extent(Point::ORIGIN, *w, *h));
            expect = Some(match expect {
                None => placed,
                Some(r) => r.union(placed),
            });
        }
        assert_eq!(d.class_bounding_box(top), expect);
    }
}

/// A mirrored class property reaches every instance across a random
/// two-level hierarchy, whatever the fan-out.
#[test]
fn mirrored_property_reaches_all_instances() {
    let mut rng = SplitMix64::new(0xDE_02);
    for _ in 0..ITERS {
        let fanouts: Vec<usize> = (0..rng.range_usize(1, 5))
            .map(|_| rng.range_usize(1, 6))
            .collect();
        let value = rng.range_i64(-1000, 1000);
        let mut d = Design::new();
        let cell = d.define_class("CELL");
        let prop = d.add_property(cell, "delay", PropertyLink::Mirror);
        let mut instances = Vec::new();
        for (p, &n) in fanouts.iter().enumerate() {
            let parent = d.define_class(format!("P{p}"));
            for i in 0..n {
                instances.push(
                    d.instantiate(cell, parent, format!("c{i}"), Transform::IDENTITY)
                        .unwrap(),
                );
            }
        }
        d.network_mut()
            .set(prop, Value::Int(value), Justification::Application)
            .unwrap();
        for inst in instances {
            let v = d.instance_property_var(inst, "delay").unwrap();
            assert_eq!(d.network().value(v), &Value::Int(value));
        }
    }
}

/// Connect → disconnect round-trips leave no inferred widths behind, for
/// either connect order.
#[test]
fn connect_disconnect_roundtrip() {
    for order in 0..2u64 {
        let mut d = Design::new();
        let a = d.define_class("A");
        d.add_signal(a, "out", SignalDir::Output);
        d.set_signal_bit_width(a, "out", 8).unwrap();
        let b = d.define_class("B");
        d.add_signal(b, "in", SignalDir::Input);
        let top = d.define_class("TOP");
        let ia = d.instantiate(a, top, "a", Transform::IDENTITY).unwrap();
        let ib = d.instantiate(b, top, "b", Transform::IDENTITY).unwrap();
        let n = d.add_net(top, "n");
        if order % 2 == 0 {
            d.connect(n, ia, "out").unwrap();
            d.connect(n, ib, "in").unwrap();
        } else {
            d.connect(n, ib, "in").unwrap();
            d.connect(n, ia, "out").unwrap();
        }
        let bw_b = d.instance_bit_width_var(ib, "in").unwrap();
        assert_eq!(d.network().value(bw_b), &Value::BitWidth(8));

        d.disconnect(n, ia, "out").unwrap();
        d.disconnect(n, ib, "in").unwrap();
        assert!(d.network().value(bw_b).is_nil(), "inference erased");
        let (net_bw, _, _) = d.net_type_vars(n);
        assert!(d.network().value(net_bw).is_nil());
        assert!(d.network().check_all().is_empty());
    }
}

/// Instantiate/remove cycles never leave dangling constraints or
/// violations.
#[test]
fn instantiate_remove_cycles_are_clean() {
    let mut rng = SplitMix64::new(0xDE_04);
    for _ in 0..ITERS {
        let rounds = rng.range_usize(1, 6);
        let mut d = Design::new();
        let cell = d.define_class("CELL");
        d.add_signal(cell, "x", SignalDir::InOut);
        d.set_signal_bit_width(cell, "x", 4).unwrap();
        d.set_class_bounding_box(cell, Rect::with_extent(Point::ORIGIN, 10, 10))
            .unwrap();
        let top = d.define_class("TOP");
        let baseline = d.network().n_constraints();
        for r in 0..rounds {
            let inst = d
                .instantiate(cell, top, format!("i{r}"), Transform::IDENTITY)
                .unwrap();
            let n = d.add_net(top, format!("n{r}"));
            d.connect(n, inst, "x").unwrap();
            d.remove_instance(inst);
            d.remove_net(n);
        }
        assert!(d.subcells(top).is_empty());
        assert!(d.nets_of(top).is_empty());
        assert_eq!(d.network().n_constraints(), baseline);
        assert!(d.network().check_all().is_empty());
    }
}
