//! Environment-level integration tests: dual variables, hierarchical
//! propagation, signal typing on nets (thesis Figs. 5.1, 7.1, 7.5, 7.6),
//! views and change broadcast.

use std::cell::RefCell;
use std::rc::Rc;

use stem_core::{Justification, Span, Value};
use stem_design::{ChangeKey, Design, PropertyLink, SignalDir, StructureEvent, BOUNDING_BOX};
use stem_geom::{Point, Rect, Transform};

fn rect(x0: i64, y0: i64, x1: i64, y1: i64) -> Rect {
    Rect::new(Point::new(x0, y0), Point::new(x1, y1))
}

/// E4 — thesis Fig. 7.1: a cell class whose input signal is constrained to
/// 8 bits; connecting a 4-bit net to that signal in an instance raises a
/// bit-width constraint violation.
#[test]
fn fig7_1_bit_width_violation() {
    let mut d = Design::new();
    let class_a = d.define_class("ClassA");
    d.add_signal(class_a, "in", SignalDir::Input);
    d.set_signal_bit_width(class_a, "in", 8).unwrap();

    let new_cell = d.define_class("NewCell");
    let inst_a = d
        .instantiate(class_a, new_cell, "A.1", Transform::IDENTITY)
        .unwrap();
    // The instance's dual bit-width variable mirrors the class's 8.
    let inst_bw = d.instance_bit_width_var(inst_a, "in").unwrap();
    assert_eq!(d.network().value(inst_bw), &Value::BitWidth(8));

    // A 4-bit net (width constrained by another connection).
    let class_b = d.define_class("ClassB");
    d.add_signal(class_b, "out", SignalDir::Output);
    d.set_signal_bit_width(class_b, "out", 4).unwrap();
    let inst_b = d
        .instantiate(class_b, new_cell, "B.1", Transform::IDENTITY)
        .unwrap();

    let net = d.add_net(new_cell, "n1");
    d.connect(net, inst_b, "out").unwrap();
    let (net_bw, _, _) = d.net_type_vars(net);
    assert_eq!(d.network().value(net_bw), &Value::BitWidth(4));

    // Connecting the 8-bit input to the 4-bit net violates.
    let err = d.connect(net, inst_a, "in").unwrap_err();
    let _ = err;
    // Rolled back: the connection was not recorded.
    assert_eq!(d.net_connections(net).len(), 1);
    assert_eq!(d.connection(inst_a, "in"), None);
}

/// Unspecified bit widths are inferred from net connections (§7.1: "the
/// signal types of other unspecified signals on the same net are inferred
/// and propagated").
#[test]
fn bit_width_inference_through_net() {
    let mut d = Design::new();
    let a = d.define_class("A");
    d.add_signal(a, "out", SignalDir::Output);
    let b = d.define_class("B");
    d.add_signal(b, "in", SignalDir::Input);
    let top = d.define_class("TOP");
    let ia = d.instantiate(a, top, "a1", Transform::IDENTITY).unwrap();
    let ib = d.instantiate(b, top, "b1", Transform::IDENTITY).unwrap();
    let n = d.add_net(top, "n");
    d.connect(n, ia, "out").unwrap();
    d.connect(n, ib, "in").unwrap();

    // Now specify one side: the net and the other signal follow.
    let bw_a = d.instance_bit_width_var(ia, "out").unwrap();
    d.network_mut()
        .set(bw_a, Value::BitWidth(16), Justification::User)
        .unwrap();
    let (net_bw, _, _) = d.net_type_vars(n);
    assert_eq!(d.network().value(net_bw), &Value::BitWidth(16));
    let bw_b = d.instance_bit_width_var(ib, "in").unwrap();
    assert_eq!(d.network().value(bw_b), &Value::BitWidth(16));
}

/// E5 — thesis Fig. 7.5: signal *type* variables are class-side and shared
/// by all instances, so one net's type requirement reaches a cell used in
/// a completely different context.
#[test]
fn fig7_5_shared_class_type_variables() {
    let mut d = Design::new();
    let a = d.define_class("A");
    d.add_signal(a, "p", SignalDir::InOut);
    let b = d.define_class("B");
    d.add_signal(b, "q", SignalDir::InOut);
    d.set_signal_electrical_type(b, "q", "TTL").unwrap();
    let c = d.define_class("C");
    d.add_signal(c, "r", SignalDir::InOut);

    // Instance A.1 inside B-ish context connects to the TTL net …
    let ctx1 = d.define_class("Ctx1");
    let a1 = d.instantiate(a, ctx1, "A.1", Transform::IDENTITY).unwrap();
    let b1 = d.instantiate(b, ctx1, "B.1", Transform::IDENTITY).unwrap();
    let n1 = d.add_net(ctx1, "n1");
    d.connect(n1, a1, "p").unwrap();
    d.connect(n1, b1, "q").unwrap();

    // … which types A's class-side signal as TTL.
    let forests = d.forests().clone();
    let ttl = forests.borrow().electrical.tag("TTL").unwrap();
    let sig = d.signal_def(a, "p").unwrap().class_electrical_type;
    assert_eq!(d.network().value(sig).as_type(), Some(ttl));

    // A second instance of A elsewhere now carries TTL to its own net:
    // connecting it to a CMOS cell violates.
    let cmos_cell = d.define_class("CmosCell");
    d.add_signal(cmos_cell, "s", SignalDir::InOut);
    d.set_signal_electrical_type(cmos_cell, "s", "CMOS")
        .unwrap();
    let ctx2 = d.define_class("Ctx2");
    let a2 = d.instantiate(a, ctx2, "A.2", Transform::IDENTITY).unwrap();
    let m1 = d
        .instantiate(cmos_cell, ctx2, "M.1", Transform::IDENTITY)
        .unwrap();
    let n2 = d.add_net(ctx2, "n2");
    d.connect(n2, a2, "p").unwrap();
    assert!(d.connect(n2, m1, "s").is_err(), "TTL vs CMOS must conflict");
}

/// Hierarchical propagation (Fig. 5.1): a class characteristic set once
/// propagates to every instance's dual variable — the internal network is
/// evaluated once, external networks each see the result.
#[test]
fn class_characteristic_reaches_all_instances() {
    let mut d = Design::new();
    let cell = d.define_class("CELL");
    let delay_var = d.add_property(cell, "delay", PropertyLink::Mirror);

    let top1 = d.define_class("TOP1");
    let top2 = d.define_class("TOP2");
    let i1 = d
        .instantiate(cell, top1, "c1", Transform::IDENTITY)
        .unwrap();
    let i2 = d
        .instantiate(cell, top1, "c2", Transform::IDENTITY)
        .unwrap();
    let i3 = d
        .instantiate(cell, top2, "c3", Transform::IDENTITY)
        .unwrap();

    d.network_mut()
        .set(delay_var, Value::Float(12.5), Justification::Application)
        .unwrap();
    for i in [i1, i2, i3] {
        let v = d.instance_property_var(i, "delay").unwrap();
        assert_eq!(d.network().value(v), &Value::Float(12.5));
    }
}

#[test]
fn parameter_defaults_and_range_checking() {
    let mut d = Design::new();
    let cell = d.define_class("PARAM_CELL");
    let range_var = d.add_parameter(cell, "width", Some(Value::Int(4)));
    d.network_mut()
        .set(
            range_var,
            Value::Span(Span::new(1.0, 8.0)),
            Justification::User,
        )
        .unwrap();

    let top = d.define_class("TOP");
    let inst = d.instantiate(cell, top, "p1", Transform::IDENTITY).unwrap();
    let pv = d.instance_parameter_var(inst, "width").unwrap();
    assert_eq!(d.network().value(pv), &Value::Int(4), "default propagated");
    assert_eq!(d.network().justification(pv), &Justification::DefaultValue);

    assert!(d.set_parameter(inst, "width", Value::Int(6)).is_ok());
    assert!(d.set_parameter(inst, "width", Value::Int(9)).is_err());
    assert_eq!(
        d.network().value(pv),
        &Value::Int(6),
        "restored after violation"
    );
}

#[test]
fn out_of_range_default_fails_instantiation() {
    let mut d = Design::new();
    let cell = d.define_class("BAD_DEFAULT");
    let range_var = d.add_parameter(cell, "w", Some(Value::Int(40)));
    d.network_mut()
        .set(
            range_var,
            Value::Span(Span::new(1.0, 8.0)),
            Justification::User,
        )
        .unwrap();
    let top = d.define_class("TOP");
    assert!(d.instantiate(cell, top, "x", Transform::IDENTITY).is_err());
}

/// E6 — thesis §7.2 / Fig. 7.6: instance placed in a larger area; pins
/// stretch to the new perimeter. A smaller area violates.
#[test]
fn fig7_6_bounding_box_and_pin_stretching() {
    let mut d = Design::new();
    let leaf = d.define_class("LEAF");
    d.add_signal(leaf, "a", SignalDir::Input);
    d.add_signal(leaf, "y", SignalDir::Output);
    d.set_class_bounding_box(leaf, rect(0, 0, 10, 10)).unwrap();
    d.set_signal_pin(leaf, "a", Point::new(0, 5));
    d.set_signal_pin(leaf, "y", Point::new(10, 5));

    let top = d.define_class("TOP");
    let inst = d
        .instantiate(leaf, top, "l1", Transform::translation(Point::new(100, 0)))
        .unwrap();
    // Default instance box: transformed class box.
    assert_eq!(d.instance_bounding_box(inst), Some(rect(100, 0, 110, 10)));

    // Stretch to double width.
    d.set_instance_bounding_box(inst, rect(100, 0, 120, 10))
        .unwrap();
    let pins = d.instance_pins(inst);
    let a = pins.iter().find(|(n, _)| n == "a").unwrap().1;
    let y = pins.iter().find(|(n, _)| n == "y").unwrap().1;
    assert_eq!(a, Point::new(100, 5), "left pin stays on left edge");
    assert_eq!(y, Point::new(120, 5), "right pin stretched to new edge");

    // Shrinking below the class box violates.
    assert!(d
        .set_instance_bounding_box(inst, rect(100, 0, 105, 10))
        .is_err());
}

/// Parent bounding boxes recompute lazily from subcells and invalidate up
/// the hierarchy (Fig. 7.8 + §6.5.1).
#[test]
fn parent_bbox_recomputes_from_subcells() {
    let mut d = Design::new();
    let leaf = d.define_class("LEAF");
    d.set_class_bounding_box(leaf, rect(0, 0, 10, 10)).unwrap();
    let mid = d.define_class("MID");
    let _l1 = d.instantiate(leaf, mid, "l1", Transform::IDENTITY).unwrap();
    let _l2 = d
        .instantiate(leaf, mid, "l2", Transform::translation(Point::new(10, 0)))
        .unwrap();
    assert_eq!(d.class_bounding_box(mid), Some(rect(0, 0, 20, 10)));

    let top = d.define_class("TOP");
    let _m1 = d.instantiate(mid, top, "m1", Transform::IDENTITY).unwrap();
    assert_eq!(d.class_bounding_box(top), Some(rect(0, 0, 20, 10)));

    // Growing the leaf invalidates ancestors; lazily recomputed views see
    // the new extent.
    d.set_class_bounding_box(leaf, rect(0, 0, 12, 10)).unwrap();
    assert_eq!(d.class_bounding_box(mid), Some(rect(0, 0, 22, 10)));
    assert_eq!(d.class_bounding_box(top), Some(rect(0, 0, 22, 10)));
}

#[test]
fn transform_change_moves_instance_and_invalidates_parent() {
    let mut d = Design::new();
    let leaf = d.define_class("LEAF");
    d.set_class_bounding_box(leaf, rect(0, 0, 10, 4)).unwrap();
    let top = d.define_class("TOP");
    let i = d.instantiate(leaf, top, "l", Transform::IDENTITY).unwrap();
    assert_eq!(d.class_bounding_box(top), Some(rect(0, 0, 10, 4)));
    d.set_instance_transform(i, Transform::translation(Point::new(5, 5)))
        .unwrap();
    assert_eq!(d.instance_bounding_box(i), Some(rect(5, 5, 15, 9)));
    assert_eq!(d.class_bounding_box(top), Some(rect(5, 5, 15, 9)));
}

#[test]
fn derive_class_copies_interface_with_fresh_variables() {
    let mut d = Design::new();
    let adder = d.define_class("ADDER");
    d.add_signal(adder, "a", SignalDir::Input);
    d.set_signal_bit_width(adder, "a", 8).unwrap();
    d.add_parameter(adder, "speed", Some(Value::Int(1)));
    d.add_property(adder, "delay", PropertyLink::Mirror);
    d.set_class_property(
        adder,
        "delay",
        Value::Float(8.0),
        Justification::Application,
    )
    .unwrap();

    let rc = d.derive_class("ADDER.RC", adder);
    assert_eq!(d.superclass(rc), Some(adder));
    assert_eq!(d.subclasses(adder), &[rc]);
    assert!(d.is_descendant(rc, adder));
    assert!(!d.is_descendant(adder, rc));

    // Interface copied, values copied, variables fresh.
    assert_eq!(d.signal_bit_width(rc, "a"), Some(8));
    let delay_rc = d.class_property_var(rc, "delay").unwrap();
    let delay_super = d.class_property_var(adder, "delay").unwrap();
    assert_ne!(delay_rc, delay_super);
    assert_eq!(d.network().value(delay_rc), &Value::Float(8.0));

    // Subclass value can now diverge (the point of per-class variables).
    d.set_class_property(rc, "delay", Value::Float(16.0), Justification::Application)
        .unwrap();
    assert_eq!(d.network().value(delay_super), &Value::Float(8.0));
}

#[test]
fn all_subclasses_preorder() {
    let mut d = Design::new();
    let root = d.define_class("R");
    let a = d.derive_class("A", root);
    let b = d.derive_class("B", root);
    let a1 = d.derive_class("A1", a);
    let a2 = d.derive_class("A2", a);
    assert_eq!(d.all_subclasses(root), vec![a, a1, a2, b]);
    assert!(d.all_subclasses(a2).is_empty());
}

#[test]
fn views_erase_on_change_with_selective_keys() {
    let mut d = Design::new();
    let cell = d.define_class("CELL");
    let log: Rc<RefCell<Vec<ChangeKey>>> = Rc::new(RefCell::new(Vec::new()));
    let log2 = log.clone();
    d.register_view(cell, move |key| log2.borrow_mut().push(key));

    d.notify_changed(cell, ChangeKey::Layout);
    d.notify_changed(cell, ChangeKey::Netlist);
    assert_eq!(&*log.borrow(), &[ChangeKey::Layout, ChangeKey::Netlist]);
}

#[test]
fn change_broadcast_walks_up_the_hierarchy() {
    let mut d = Design::new();
    let leaf = d.define_class("LEAF");
    let mid = d.define_class("MID");
    let top = d.define_class("TOP");
    d.instantiate(leaf, mid, "l", Transform::IDENTITY).unwrap();
    d.instantiate(mid, top, "m", Transform::IDENTITY).unwrap();

    let hits: Rc<RefCell<Vec<&'static str>>> = Rc::new(RefCell::new(Vec::new()));
    let h1 = hits.clone();
    d.register_view(top, move |_| h1.borrow_mut().push("top"));
    let h2 = hits.clone();
    d.register_view(mid, move |_| h2.borrow_mut().push("mid"));

    d.notify_changed(leaf, ChangeKey::Structure);
    assert_eq!(&*hits.borrow(), &["mid", "top"]);

    hits.borrow_mut().clear();
    // Values changes do not propagate up (§6.5.2: stops where external
    // properties are unaffected).
    d.notify_changed(leaf, ChangeKey::Values);
    assert!(hits.borrow().is_empty());
}

#[test]
fn structure_hooks_observe_edits() {
    let mut d = Design::new();
    let events: Rc<RefCell<Vec<String>>> = Rc::new(RefCell::new(Vec::new()));
    let ev = events.clone();
    d.add_hook(move |_d, e| {
        ev.borrow_mut().push(match e {
            StructureEvent::InstanceAdded { .. } => "add".to_string(),
            StructureEvent::InstanceRemoved { .. } => "remove".to_string(),
            StructureEvent::NetConnected { signal, .. } => format!("connect:{signal}"),
            StructureEvent::NetDisconnected { signal, .. } => format!("disconnect:{signal}"),
            StructureEvent::TransformChanged { .. } => "move".to_string(),
        });
    });
    let leaf = d.define_class("LEAF");
    d.add_signal(leaf, "x", SignalDir::InOut);
    let top = d.define_class("TOP");
    let i = d.instantiate(leaf, top, "l", Transform::IDENTITY).unwrap();
    let n = d.add_net(top, "n");
    d.connect(n, i, "x").unwrap();
    d.disconnect(n, i, "x").unwrap();
    d.remove_instance(i);
    assert_eq!(
        &*events.borrow(),
        &["add", "connect:x", "disconnect:x", "remove"]
    );
}

#[test]
fn remove_instance_cleans_up_links() {
    let mut d = Design::new();
    let cell = d.define_class("CELL");
    let delay = d.add_property(cell, "delay", PropertyLink::Mirror);
    let top = d.define_class("TOP");
    let i = d.instantiate(cell, top, "c", Transform::IDENTITY).unwrap();
    d.network_mut()
        .set(delay, Value::Float(3.0), Justification::Application)
        .unwrap();
    let iv = d.instance_property_var(i, "delay").unwrap();
    assert_eq!(d.network().value(iv), &Value::Float(3.0));

    let n_before = d.network().n_constraints();
    d.remove_instance(i);
    assert!(!d.instance_active(i));
    assert!(d.network().n_constraints() < n_before);
    assert!(d.network().value(iv).is_nil(), "propagated value erased");
    // Class value untouched.
    assert_eq!(d.network().value(delay), &Value::Float(3.0));
    assert!(d.subcells(top).is_empty());
}

#[test]
fn disconnect_erases_inferred_types() {
    let mut d = Design::new();
    let a = d.define_class("A");
    d.add_signal(a, "out", SignalDir::Output);
    d.set_signal_bit_width(a, "out", 8).unwrap();
    let b = d.define_class("B");
    d.add_signal(b, "in", SignalDir::Input);
    let top = d.define_class("TOP");
    let ia = d.instantiate(a, top, "a", Transform::IDENTITY).unwrap();
    let ib = d.instantiate(b, top, "b", Transform::IDENTITY).unwrap();
    let n = d.add_net(top, "n");
    d.connect(n, ia, "out").unwrap();
    d.connect(n, ib, "in").unwrap();
    let bw_b = d.instance_bit_width_var(ib, "in").unwrap();
    assert_eq!(d.network().value(bw_b), &Value::BitWidth(8));

    d.disconnect(n, ia, "out").unwrap();
    let (net_bw, _, _) = d.net_type_vars(n);
    assert!(
        d.network().value(net_bw).is_nil(),
        "net width was inferred from a"
    );
    assert!(
        d.network().value(bw_b).is_nil(),
        "b's width was a consequence"
    );
}

#[test]
fn remove_net_detaches_everything() {
    let mut d = Design::new();
    let a = d.define_class("A");
    d.add_signal(a, "x", SignalDir::InOut);
    let top = d.define_class("TOP");
    let ia = d.instantiate(a, top, "a", Transform::IDENTITY).unwrap();
    let n = d.add_net(top, "n");
    d.connect(n, ia, "x").unwrap();
    d.remove_net(n);
    assert!(!d.net_active(n));
    assert!(d.nets_of(top).is_empty());
    assert_eq!(d.connection(ia, "x"), None);
}

#[test]
fn bounding_box_is_builtin_property() {
    let mut d = Design::new();
    let c = d.define_class("C");
    assert!(d.class_property_var(c, BOUNDING_BOX).is_some());
}

/// Rotated placements: the bbox link bakes the placement transform, so a
/// rotated instance's default box has swapped extents and its pins land
/// on the rotated border.
#[test]
fn rotated_instance_bbox_and_pins() {
    use stem_geom::Orientation;

    let mut d = Design::new();
    let leaf = d.define_class("LEAF");
    d.add_signal(leaf, "p", SignalDir::InOut);
    d.set_class_bounding_box(leaf, rect(0, 0, 20, 10)).unwrap();
    d.set_signal_pin(leaf, "p", Point::new(20, 5));

    let top = d.define_class("TOP");
    let t = Transform::new(Orientation::R90, Point::new(50, 0));
    let inst = d.instantiate(leaf, top, "l", t).unwrap();

    let b = d.instance_bounding_box(inst).unwrap();
    assert_eq!(b.width(), 10, "R90 swaps extents");
    assert_eq!(b.height(), 20);
    assert_eq!(b, t.apply_rect(rect(0, 0, 20, 10)));

    let pins = d.instance_pins(inst);
    let p = pins.iter().find(|(n, _)| n == "p").unwrap().1;
    assert_eq!(p, t.apply(Point::new(20, 5)));
    assert!(b.contains(p), "rotated pin stays on the instance border");

    // A rotated instance cannot be squeezed into the unrotated extent.
    assert!(d
        .set_instance_bounding_box(inst, t.apply_rect(rect(0, 0, 20, 10)))
        .is_ok());
    let bad = Rect::with_extent(b.min(), 20, 10); // unswapped extents
    assert!(d.set_instance_bounding_box(inst, bad).is_err());
}

/// Review fix regression: transitive containment cycles are rejected at
/// instantiation instead of overflowing the stack later.
#[test]
#[should_panic(expected = "containment cycle")]
fn containment_cycles_are_rejected() {
    let mut d = Design::new();
    let a = d.define_class("A");
    let b = d.define_class("B");
    d.instantiate(a, b, "a_in_b", Transform::IDENTITY).unwrap();
    // B already contains A; placing B inside A closes the cycle.
    let _ = d.instantiate(b, a, "b_in_a", Transform::IDENTITY);
}

/// Review fix regression: an orientation change that breaks a user
/// allotment is reported and rolled back, not a panic.
#[test]
fn incompatible_rotation_is_rolled_back() {
    use stem_geom::Orientation;

    let mut d = Design::new();
    let leaf = d.define_class("LEAF");
    d.set_class_bounding_box(leaf, rect(0, 0, 20, 10)).unwrap();
    let top = d.define_class("TOP");
    let i = d.instantiate(leaf, top, "l", Transform::IDENTITY).unwrap();
    // User allots exactly the unrotated extent.
    d.set_instance_bounding_box(i, rect(0, 0, 20, 10)).unwrap();
    // R90 swaps extents: 10×20 cannot fit the 20×10 allotment.
    let err = d.set_instance_transform(i, Transform::new(Orientation::R90, Point::ORIGIN));
    assert!(err.is_err());
    assert_eq!(
        d.instance_transform(i),
        Transform::IDENTITY,
        "move rolled back"
    );
    assert!(d.network().check_all().is_empty(), "still consistent");
    // A compatible move still works.
    d.set_instance_transform(i, Transform::translation(Point::new(100, 0)))
        .unwrap();
}
