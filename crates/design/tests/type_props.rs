//! Randomised (seeded, fully deterministic) tests over signal-type
//! hierarchies (thesis §7.1): the compatibility relation's algebra and the
//! least-abstract refinement.

use stem_core::prng::SplitMix64;
use stem_design::TypeHierarchy;

const ITERS: usize = 32;

/// Builds a random hierarchy of `n` nodes, each parented to an earlier
/// node chosen by the rng.
fn random_hierarchy(n: usize, rng: &mut SplitMix64) -> (TypeHierarchy, Vec<stem_core::TypeTag>) {
    let mut h = TypeHierarchy::new(7, "Root");
    let mut tags = vec![h.root()];
    for i in 1..n {
        let parent = tags[rng.range_usize(0, tags.len())];
        tags.push(h.add(format!("T{i}"), parent));
    }
    (h, tags)
}

/// Compatibility is reflexive and symmetric; ancestry is antisymmetric
/// (up to equality) and transitive.
#[test]
fn compatibility_algebra() {
    let mut rng = SplitMix64::new(0x71_01);
    for _ in 0..ITERS {
        let n = rng.range_usize(2, 30);
        let (h, tags) = random_hierarchy(n, &mut rng);
        for &a in &tags {
            assert!(h.is_compatible(a, a), "reflexive");
            assert!(h.is_ancestor(a, a), "ancestry reflexive");
        }
        for &a in &tags {
            for &b in &tags {
                assert_eq!(h.is_compatible(a, b), h.is_compatible(b, a), "symmetric");
                if a != b && h.is_ancestor(a, b) {
                    assert!(!h.is_ancestor(b, a), "antisymmetric");
                }
            }
        }
        // Transitivity on a sample of triples.
        for (i, &a) in tags.iter().enumerate() {
            for &b in &tags[i..] {
                for &c in &tags {
                    if h.is_ancestor(a, b) && h.is_ancestor(b, c) {
                        assert!(h.is_ancestor(a, c), "transitive");
                    }
                }
            }
        }
    }
}

/// The root is an ancestor of everything, so everything is compatible
/// with it.
#[test]
fn root_is_universal() {
    let mut rng = SplitMix64::new(0x71_02);
    for _ in 0..ITERS {
        let n = rng.range_usize(1, 40);
        let (h, tags) = random_hierarchy(n, &mut rng);
        for &t in &tags {
            assert!(h.is_ancestor(h.root(), t));
            assert!(h.is_compatible(h.root(), t));
        }
    }
}

/// `less_abstract` returns the descendant of two compatible tags, is
/// commutative, and is `None` exactly when incompatible.
#[test]
fn least_abstract_properties() {
    let mut rng = SplitMix64::new(0x71_03);
    for _ in 0..ITERS {
        let n = rng.range_usize(2, 30);
        let (h, tags) = random_hierarchy(n, &mut rng);
        for &a in &tags {
            for &b in &tags {
                let ab = h.less_abstract(a, b);
                assert_eq!(ab, h.less_abstract(b, a), "commutative");
                match ab {
                    Some(r) => {
                        assert!(r == a || r == b);
                        assert!(
                            h.is_ancestor(a, r) && h.is_ancestor(b, r),
                            "result is below both"
                        );
                    }
                    None => assert!(!h.is_compatible(a, b)),
                }
            }
        }
    }
}

/// Siblings (distinct children of one parent) are never compatible.
#[test]
fn siblings_are_incompatible() {
    let mut rng = SplitMix64::new(0x71_04);
    for _ in 0..ITERS {
        let k = rng.range_usize(2, 10);
        let mut h = TypeHierarchy::new(9, "Root");
        let root = h.root();
        let kids: Vec<_> = (0..k).map(|i| h.add(format!("K{i}"), root)).collect();
        for (i, &a) in kids.iter().enumerate() {
            for &b in &kids[i + 1..] {
                assert!(!h.is_compatible(a, b));
                assert_eq!(h.less_abstract(a, b), None);
            }
        }
    }
}
