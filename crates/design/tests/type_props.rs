//! Property tests over signal-type hierarchies (thesis §7.1): the
//! compatibility relation's algebra and the least-abstract refinement.

use proptest::prelude::*;
use stem_design::TypeHierarchy;

/// Builds a random hierarchy of `n` nodes, each parented to an earlier
/// node chosen by `seed`.
fn random_hierarchy(n: usize, seed: u64) -> (TypeHierarchy, Vec<stem_core::TypeTag>) {
    let mut h = TypeHierarchy::new(7, "Root");
    let mut tags = vec![h.root()];
    let mut s = seed;
    for i in 1..n {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let parent = tags[(s >> 33) as usize % tags.len()];
        tags.push(h.add(format!("T{i}"), parent));
    }
    (h, tags)
}

proptest! {
    /// Compatibility is reflexive and symmetric; ancestry is antisymmetric
    /// (up to equality) and transitive.
    #[test]
    fn compatibility_algebra(n in 2usize..30, seed in any::<u64>()) {
        let (h, tags) = random_hierarchy(n, seed);
        for &a in &tags {
            prop_assert!(h.is_compatible(a, a), "reflexive");
            prop_assert!(h.is_ancestor(a, a), "ancestry reflexive");
        }
        for &a in &tags {
            for &b in &tags {
                prop_assert_eq!(h.is_compatible(a, b), h.is_compatible(b, a), "symmetric");
                if a != b && h.is_ancestor(a, b) {
                    prop_assert!(!h.is_ancestor(b, a), "antisymmetric");
                }
            }
        }
        // Transitivity on a sample of triples.
        for (i, &a) in tags.iter().enumerate() {
            for &b in &tags[i..] {
                for &c in &tags {
                    if h.is_ancestor(a, b) && h.is_ancestor(b, c) {
                        prop_assert!(h.is_ancestor(a, c), "transitive");
                    }
                }
            }
        }
    }

    /// The root is an ancestor of everything, so everything is compatible
    /// with it.
    #[test]
    fn root_is_universal(n in 1usize..40, seed in any::<u64>()) {
        let (h, tags) = random_hierarchy(n, seed);
        for &t in &tags {
            prop_assert!(h.is_ancestor(h.root(), t));
            prop_assert!(h.is_compatible(h.root(), t));
        }
    }

    /// `less_abstract` returns the descendant of two compatible tags, is
    /// commutative, and is `None` exactly when incompatible.
    #[test]
    fn least_abstract_properties(n in 2usize..30, seed in any::<u64>()) {
        let (h, tags) = random_hierarchy(n, seed);
        for &a in &tags {
            for &b in &tags {
                let ab = h.less_abstract(a, b);
                prop_assert_eq!(ab, h.less_abstract(b, a), "commutative");
                match ab {
                    Some(r) => {
                        prop_assert!(r == a || r == b);
                        prop_assert!(h.is_ancestor(a, r) && h.is_ancestor(b, r),
                            "result is below both");
                    }
                    None => prop_assert!(!h.is_compatible(a, b)),
                }
            }
        }
    }

    /// Siblings (distinct children of one parent) are never compatible.
    #[test]
    fn siblings_are_incompatible(k in 2usize..10) {
        let mut h = TypeHierarchy::new(9, "Root");
        let root = h.root();
        let kids: Vec<_> = (0..k).map(|i| h.add(format!("K{i}"), root)).collect();
        for (i, &a) in kids.iter().enumerate() {
            for &b in &kids[i + 1..] {
                prop_assert!(!h.is_compatible(a, b));
                prop_assert_eq!(h.less_abstract(a, b), None);
            }
        }
    }
}
