//! Engine- and session-level observability counters.
//!
//! Engine-wide counters are lock-free atomics shared by every worker and
//! read by [`crate::Engine::stats`] without stopping traffic. Per-session
//! counters live inside the owning worker and are fetched over the same
//! queue the session's batches use, so a stats read also measures queue
//! health.

use std::sync::atomic::{AtomicU64, Ordering};

/// Upper bounds (exclusive, in microseconds) of the coarse batch-latency
/// buckets; the final bucket is unbounded. Latency is measured from
/// enqueue to reply, so it includes queue wait.
pub const LATENCY_BUCKET_BOUNDS_US: [u64; 6] = [50, 200, 1_000, 5_000, 20_000, 100_000];

/// Number of latency buckets (the bounds plus one overflow bucket).
pub const N_LATENCY_BUCKETS: usize = LATENCY_BUCKET_BOUNDS_US.len() + 1;

/// Lock-free engine-wide counters, updated by workers.
#[derive(Debug, Default)]
pub(crate) struct Counters {
    pub batches: AtomicU64,
    pub batches_ok: AtomicU64,
    pub violations: AtomicU64,
    pub rollbacks: AtomicU64,
    pub panics: AtomicU64,
    pub waves: AtomicU64,
    pub assignments: AtomicU64,
    pub sessions_created: AtomicU64,
    pub sessions_quarantined: AtomicU64,
    pub backpressure_rejections: AtomicU64,
    pub queue_depth_hwm: AtomicU64,
    pub plan_compiles: AtomicU64,
    pub plan_cache_hits: AtomicU64,
    pub plan_cache_invalidations: AtomicU64,
    pub plan_replays_parallel: AtomicU64,
    pub plan_replays_wavefront: AtomicU64,
    pub cones_executed: AtomicU64,
    pub cones_stolen: AtomicU64,
    pub parallel_fallbacks: AtomicU64,
    pub recoveries: AtomicU64,
    pub segments_ingested: AtomicU64,
    pub records_replayed: AtomicU64,
    pub dedup_skips: AtomicU64,
    pub domain_tightenings: AtomicU64,
    pub subsumed_pruned: AtomicU64,
    pub wipeouts: AtomicU64,
    pub latency_buckets: [AtomicU64; N_LATENCY_BUCKETS],
}

impl Counters {
    /// Raises the queue-depth high-water mark to at least `depth`.
    pub fn observe_queue_depth(&self, depth: u64) {
        self.queue_depth_hwm.fetch_max(depth, Ordering::Relaxed);
    }

    /// Files one batch latency into its coarse bucket.
    pub fn observe_latency_us(&self, us: u64) {
        let ix = LATENCY_BUCKET_BOUNDS_US
            .iter()
            .position(|&bound| us < bound)
            .unwrap_or(N_LATENCY_BUCKETS - 1);
        self.latency_buckets[ix].fetch_add(1, Ordering::Relaxed);
    }

    /// [`Counters::snapshot`] that also resets the queue-depth high-water
    /// mark: the returned snapshot carries the mark as of the read, and
    /// subsequent observations rebuild it from zero. Atomic (`swap`), so
    /// depths observed concurrently with the reset are never lost — they
    /// either land in this snapshot or seed the next epoch.
    pub fn snapshot_and_reset_queue_hwm(&self) -> EngineStats {
        let mut s = self.snapshot();
        s.queue_depth_hwm = self.queue_depth_hwm.swap(0, Ordering::Relaxed);
        s
    }

    pub fn snapshot(&self) -> EngineStats {
        let mut latency_buckets = [0u64; N_LATENCY_BUCKETS];
        for (out, bucket) in latency_buckets.iter_mut().zip(&self.latency_buckets) {
            *out = bucket.load(Ordering::Relaxed);
        }
        EngineStats {
            batches: self.batches.load(Ordering::Relaxed),
            batches_ok: self.batches_ok.load(Ordering::Relaxed),
            violations: self.violations.load(Ordering::Relaxed),
            rollbacks: self.rollbacks.load(Ordering::Relaxed),
            panics: self.panics.load(Ordering::Relaxed),
            waves: self.waves.load(Ordering::Relaxed),
            assignments: self.assignments.load(Ordering::Relaxed),
            sessions_created: self.sessions_created.load(Ordering::Relaxed),
            sessions_quarantined: self.sessions_quarantined.load(Ordering::Relaxed),
            backpressure_rejections: self.backpressure_rejections.load(Ordering::Relaxed),
            queue_depth_hwm: self.queue_depth_hwm.load(Ordering::Relaxed),
            plan_compiles: self.plan_compiles.load(Ordering::Relaxed),
            plan_cache_hits: self.plan_cache_hits.load(Ordering::Relaxed),
            plan_cache_invalidations: self.plan_cache_invalidations.load(Ordering::Relaxed),
            plan_replays_parallel: self.plan_replays_parallel.load(Ordering::Relaxed),
            plan_replays_wavefront: self.plan_replays_wavefront.load(Ordering::Relaxed),
            cones_executed: self.cones_executed.load(Ordering::Relaxed),
            cones_stolen: self.cones_stolen.load(Ordering::Relaxed),
            parallel_fallbacks: self.parallel_fallbacks.load(Ordering::Relaxed),
            recoveries: self.recoveries.load(Ordering::Relaxed),
            segments_ingested: self.segments_ingested.load(Ordering::Relaxed),
            records_replayed: self.records_replayed.load(Ordering::Relaxed),
            dedup_skips: self.dedup_skips.load(Ordering::Relaxed),
            domain_tightenings: self.domain_tightenings.load(Ordering::Relaxed),
            subsumed_pruned: self.subsumed_pruned.load(Ordering::Relaxed),
            wipeouts: self.wipeouts.load(Ordering::Relaxed),
            wal_appends: 0,
            wal_bytes: 0,
            wal_group_syncs: 0,
            snapshots_written: 0,
            latency_buckets,
        }
    }
}

/// Point-in-time snapshot of the engine-wide counters
/// ([`crate::Engine::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Batches processed (committed + rolled back + refused).
    pub batches: u64,
    /// Batches committed.
    pub batches_ok: u64,
    /// Batches rolled back on a constraint violation (includes step-budget
    /// aborts).
    pub violations: u64,
    /// Rollbacks performed (violations + panics).
    pub rollbacks: u64,
    /// Batches that panicked (each also quarantined its session).
    pub panics: u64,
    /// Propagation waves (cycles) run across all sessions.
    pub waves: u64,
    /// Variable assignments performed across all sessions.
    pub assignments: u64,
    /// Sessions materialised in workers.
    pub sessions_created: u64,
    /// Quarantine events.
    pub sessions_quarantined: u64,
    /// `try_submit` calls refused because a queue was full.
    pub backpressure_rejections: u64,
    /// Highest observed per-worker queue depth (queued + being submitted).
    pub queue_depth_hwm: u64,
    /// Propagation plans compiled across all sessions (including
    /// uncompilable verdicts).
    pub plan_compiles: u64,
    /// `set`s served by a cached propagation plan across all sessions.
    pub plan_cache_hits: u64,
    /// Cached plans discarded after structural edits, across all sessions.
    pub plan_cache_invalidations: u64,
    /// Plan replays committed through the parallel cone path, across all
    /// sessions (0 unless [`crate::EngineConfig::propagation_threads`]
    /// exceeds 1). Every cache hit on a thread-enabled session lands in
    /// exactly one of this counter or [`EngineStats::parallel_fallbacks`].
    pub plan_replays_parallel: u64,
    /// Committed parallel replays that executed as a levelized wavefront
    /// (one giant cone pipelined layer-by-layer) rather than independent
    /// cones — a subset of [`EngineStats::plan_replays_parallel`].
    pub plan_replays_wavefront: u64,
    /// Cones executed by committed parallel replays, across all sessions
    /// (a wavefront replay counts as one cone; a cone-partition replay
    /// counts ≥ 2).
    pub cones_executed: u64,
    /// Pool tasks claimed by a worker other than the one they were dealt
    /// to (work stealing), summed over committed parallel replays.
    /// Schedule-dependent — excluded from determinism digests.
    pub cones_stolen: u64,
    /// Cached replays that ran sequentially despite an enabled worker
    /// pool: plan below the partition threshold, single connected
    /// component, kernel-less kind, or a parallel attempt that aborted
    /// (overwrite denial / violation) into the sequential rerun.
    pub parallel_fallbacks: u64,
    /// Sessions reconstructed from the store at [`crate::Engine::open`]
    /// (snapshot image + log-tail replay).
    pub recoveries: u64,
    /// Shipped WAL segments ingested by this engine in replica mode
    /// ([`crate::Engine::ingest_segment`]).
    pub segments_ingested: u64,
    /// WAL records applied during replica segment ingestion (skips and
    /// anomalies not included).
    pub records_replayed: u64,
    /// Keyed batches acknowledged without re-applying because their
    /// idempotence key was at or below the session's high-water mark
    /// ([`crate::Engine::submit_keyed`]) — each one is a client resubmit
    /// that duplicate suppression absorbed.
    pub dedup_skips: u64,
    /// Domain tightenings landed by domain propagators across all
    /// sessions: interval/finite-set writes that strictly narrowed a
    /// variable's domain.
    pub domain_tightenings: u64,
    /// Constraint activations pruned because the constraint was
    /// runtime-marked subsumed (entailed) at the time, across all
    /// sessions — agenda dispatch and compiled-plan replay alike.
    pub subsumed_pruned: u64,
    /// Domain wipeouts (a propagator emptied a domain, aborting and
    /// rolling back its batch) across all sessions.
    pub wipeouts: u64,
    /// Write-ahead log records appended since the store was opened
    /// (filled from the store by [`crate::Engine::stats`]; 0 on a
    /// non-durable engine).
    pub wal_appends: u64,
    /// Write-ahead log bytes appended since the store was opened.
    pub wal_bytes: u64,
    /// Group-commit flushes completed (each covering ≥1 commit); 0 unless
    /// the engine runs [`crate::Durability::GroupCommit`].
    pub wal_group_syncs: u64,
    /// Snapshot checkpoints written since the store was opened.
    pub snapshots_written: u64,
    /// Batch latency histogram; bucket `i` counts batches with
    /// enqueue-to-reply latency under [`LATENCY_BUCKET_BOUNDS_US`]`[i]` µs
    /// (last bucket: everything slower).
    pub latency_buckets: [u64; N_LATENCY_BUCKETS],
}

/// Per-session counters ([`crate::Engine::session_stats`]), maintained by
/// the owning worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SessionStats {
    /// Batches processed for this session.
    pub batches: u64,
    /// Batches committed.
    pub batches_ok: u64,
    /// Batches rolled back on violation.
    pub violations: u64,
    /// Batches rolled back after a panic.
    pub panics: u64,
    /// Propagation waves run on behalf of committed work.
    pub waves: u64,
    /// Assignments performed by committed work.
    pub assignments: u64,
    /// Variables currently in the session's network.
    pub n_variables: u64,
    /// Active constraints currently in the session's network.
    pub n_constraints: u64,
    /// Times the session's network took a full `snapshot()` — stays 0 as
    /// long as every batch rolls back through the change journal.
    pub net_snapshots: u64,
    /// Times the session's network was cloned (clone-and-swap rollback
    /// path; stays 0 under the default journal strategy now that every
    /// command — including constraint removal — is journalable).
    pub net_clones: u64,
    /// Propagation plans this session's network has compiled (including
    /// uncompilable verdicts).
    pub plan_compiles: u64,
    /// `set`s this session served from a cached propagation plan.
    pub plan_cache_hits: u64,
    /// Cached plans this session discarded after structural edits.
    pub plan_cache_invalidations: u64,
    /// Plan replays this session committed through the parallel cone
    /// path. Reconciles with [`SessionStats::plan_cache_hits`]: on a
    /// thread-enabled session every cached replay counts in exactly one
    /// of this counter or [`SessionStats::parallel_fallbacks`].
    pub plan_replays_parallel: u64,
    /// Committed parallel replays that ran as a levelized wavefront — a
    /// subset of [`SessionStats::plan_replays_parallel`].
    pub plan_replays_wavefront: u64,
    /// Cones executed by this session's committed parallel replays (a
    /// wavefront replay counts as one).
    pub cones_executed: u64,
    /// Pool tasks stolen during this session's committed parallel
    /// replays. Schedule-dependent; diagnostic only.
    pub cones_stolen: u64,
    /// Cached replays that ran sequentially despite the worker pool
    /// (below-threshold plan, single cone, kernel-less kind, or an
    /// aborted parallel attempt).
    pub parallel_fallbacks: u64,
    /// Domain tightenings this session's propagators landed (cumulative,
    /// mirroring the network's counter).
    pub domain_tightenings: u64,
    /// Activations this session pruned via runtime subsumption marks.
    pub subsumed_pruned: u64,
    /// Domain wipeouts this session's propagators raised.
    pub wipeouts: u64,
    /// WAL records this session's committed batches appended — the
    /// per-session share of [`EngineStats::wal_appends`], counted by the
    /// owning worker at commit time (0 on non-durable engines; replayed
    /// recovery records are not re-counted).
    pub wal_appends: u64,
    /// Frame bytes this session's committed batches appended — the
    /// per-session share of [`EngineStats::wal_bytes`].
    pub wal_bytes: u64,
    /// Whether the session is quarantined.
    pub quarantined: bool,
}

impl EngineStats {
    /// Folds another engine's snapshot into this one — the cluster tier's
    /// per-shard roll-up. Counters add; the queue-depth high-water mark
    /// takes the max (it is a mark, not a volume); latency buckets add
    /// elementwise.
    pub fn absorb(&mut self, other: &EngineStats) {
        let EngineStats {
            batches,
            batches_ok,
            violations,
            rollbacks,
            panics,
            waves,
            assignments,
            sessions_created,
            sessions_quarantined,
            backpressure_rejections,
            queue_depth_hwm,
            plan_compiles,
            plan_cache_hits,
            plan_cache_invalidations,
            plan_replays_parallel,
            plan_replays_wavefront,
            cones_executed,
            cones_stolen,
            parallel_fallbacks,
            recoveries,
            segments_ingested,
            records_replayed,
            dedup_skips,
            domain_tightenings,
            subsumed_pruned,
            wipeouts,
            wal_appends,
            wal_bytes,
            wal_group_syncs,
            snapshots_written,
            latency_buckets,
        } = other;
        self.batches += batches;
        self.batches_ok += batches_ok;
        self.violations += violations;
        self.rollbacks += rollbacks;
        self.panics += panics;
        self.waves += waves;
        self.assignments += assignments;
        self.sessions_created += sessions_created;
        self.sessions_quarantined += sessions_quarantined;
        self.backpressure_rejections += backpressure_rejections;
        self.queue_depth_hwm = self.queue_depth_hwm.max(*queue_depth_hwm);
        self.plan_compiles += plan_compiles;
        self.plan_cache_hits += plan_cache_hits;
        self.plan_cache_invalidations += plan_cache_invalidations;
        self.plan_replays_parallel += plan_replays_parallel;
        self.plan_replays_wavefront += plan_replays_wavefront;
        self.cones_executed += cones_executed;
        self.cones_stolen += cones_stolen;
        self.parallel_fallbacks += parallel_fallbacks;
        self.recoveries += recoveries;
        self.segments_ingested += segments_ingested;
        self.records_replayed += records_replayed;
        self.dedup_skips += dedup_skips;
        self.domain_tightenings += domain_tightenings;
        self.subsumed_pruned += subsumed_pruned;
        self.wipeouts += wipeouts;
        self.wal_appends += wal_appends;
        self.wal_bytes += wal_bytes;
        self.wal_group_syncs += wal_group_syncs;
        self.snapshots_written += snapshots_written;
        for (mine, theirs) in self.latency_buckets.iter_mut().zip(latency_buckets) {
            *mine += theirs;
        }
    }
}
