//! Durability wiring between the engine and `stem-persist`: the public
//! durability knobs ([`Durability`], [`DurabilityOptions`]), conversions
//! between the engine's batch vocabulary and the persisted mirror,
//! checkpoint state gathering, network restoration, and recovery planning
//! over a reopened store.
//!
//! The contract with the worker loop (`engine.rs`):
//!
//! - every committed mutating batch is converted with
//!   [`commands_to_persist`] *before* it is applied (applying consumes the
//!   commands), appended as one `WalRecord::Batch` after the batch
//!   succeeds, and only then acknowledged;
//! - each durable session carries a *spec shadow* — `specs[i]` mirrors
//!   constraint slot `i` with its replayable [`PersistSpec`] (`None` for
//!   tombstones) — folded forward by [`absorb_committed`] so a checkpoint
//!   can serialise the constraint arena without reflecting on kinds;
//! - at open, [`plan_recovery`] turns the store's snapshot + log tail into
//!   per-session rebuild scripts that [`restore_network`] executes inside
//!   the owning worker.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::time::Duration;

use stem_core::{ConstraintId, Justification, Network, Value, VarId};
use stem_persist::{
    FileFactory, PersistCommand, PersistSource, PersistSpec, Recovered, SessionState, SlotState,
    WalRecord,
};

use crate::command::{Command, ConstraintSpec, Source};

/// When committed batches reach disk ([`DurabilityOptions::mode`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Durability {
    /// Recover-only: the store is read (and sessions rebuilt) at open, but
    /// nothing new is logged. Later crashes lose everything since open.
    Off,
    /// Every committed batch is fsynced before it is acknowledged (the
    /// default): an acknowledged commit survives any crash.
    #[default]
    CommitSync,
    /// Records are written immediately but fsynced on a timer: throughput
    /// close to in-memory, with a bounded window of acknowledged commits
    /// at risk on a power failure.
    IntervalSync {
        /// Upper bound on how long an acknowledged commit may sit in the
        /// OS page cache before an fsync covers it.
        interval: Duration,
    },
    /// Commit-sync durability with shared fsyncs: every acknowledged
    /// commit is on disk before the ack, but concurrent committers ride
    /// the same flush through a [`stem_persist::GroupCommit`] coordinator
    /// — one fsync covers every record appended while it was pending.
    /// Same guarantee as [`Durability::CommitSync`], amortised cost.
    GroupCommit,
}

/// Store construction knobs for [`crate::Engine::open_with_config`].
pub struct DurabilityOptions {
    /// Sync regime; see [`Durability`].
    pub mode: Durability,
    /// Segment rotation threshold in bytes.
    pub segment_bytes: u64,
    /// Automatic checkpoint threshold: once this many log-record bytes
    /// accumulate since the last snapshot, the background thread writes a
    /// new snapshot and compacts covered segments. `0` disables automatic
    /// checkpoints ([`crate::Engine::checkpoint`] only).
    pub checkpoint_bytes: u64,
    /// Overrides how store files are opened (fault injection in tests);
    /// `None` uses real files.
    pub file_factory: Option<FileFactory>,
}

impl Default for DurabilityOptions {
    fn default() -> Self {
        DurabilityOptions {
            mode: Durability::default(),
            segment_bytes: 1 << 20,
            checkpoint_bytes: 8 << 20,
            file_factory: None,
        }
    }
}

impl fmt::Debug for DurabilityOptions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DurabilityOptions")
            .field("mode", &self.mode)
            .field("segment_bytes", &self.segment_bytes)
            .field("checkpoint_bytes", &self.checkpoint_bytes)
            .field(
                "file_factory",
                &self.file_factory.as_ref().map(|_| "custom"),
            )
            .finish()
    }
}

/// The inspector-visible label for a session's durability regime.
pub(crate) fn durability_label(mode: Option<Durability>) -> &'static str {
    match mode {
        None => "volatile (in-memory only)",
        Some(Durability::Off) => "recover-only (logging off)",
        Some(Durability::CommitSync) => "commit-sync (fsync per commit)",
        Some(Durability::IntervalSync { .. }) => "interval-sync (bounded loss window)",
        Some(Durability::GroupCommit) => "group-commit (shared fsync per commit)",
    }
}

// ---------------------------------------------------------------------
// Vocabulary conversions
// ---------------------------------------------------------------------

/// The replayable mirror of a constraint spec; `None` for `Custom` kinds,
/// which have no byte representation.
pub(crate) fn spec_to_persist(spec: &ConstraintSpec) -> Option<PersistSpec> {
    Some(match spec {
        ConstraintSpec::Equality => PersistSpec::Equality,
        ConstraintSpec::Sum => PersistSpec::Sum,
        ConstraintSpec::Max => PersistSpec::Max,
        ConstraintSpec::Min => PersistSpec::Min,
        ConstraintSpec::Product => PersistSpec::Product,
        ConstraintSpec::Scale { gain, offset } => PersistSpec::Scale {
            gain: *gain,
            offset: *offset,
        },
        ConstraintSpec::LeConst(v) => PersistSpec::LeConst(v.clone()),
        ConstraintSpec::GeConst(v) => PersistSpec::GeConst(v.clone()),
        ConstraintSpec::EqConst(v) => PersistSpec::EqConst(v.clone()),
        ConstraintSpec::Le => PersistSpec::Le,
        ConstraintSpec::Lt => PersistSpec::Lt,
        ConstraintSpec::DomAdd { views, out } => PersistSpec::DomAdd {
            views: *views,
            out: *out,
        },
        ConstraintSpec::DomLe { c, views, out } => PersistSpec::DomLe {
            c: *c,
            views: *views,
            out: *out,
        },
        ConstraintSpec::DomAllDiff => PersistSpec::DomAllDiff,
        ConstraintSpec::DomReifLe { c, views } => PersistSpec::DomReifLe {
            c: *c,
            views: *views,
        },
        ConstraintSpec::Custom(_) => return None,
    })
}

pub(crate) fn spec_from_persist(spec: &PersistSpec) -> ConstraintSpec {
    match spec {
        PersistSpec::Equality => ConstraintSpec::Equality,
        PersistSpec::Sum => ConstraintSpec::Sum,
        PersistSpec::Max => ConstraintSpec::Max,
        PersistSpec::Min => ConstraintSpec::Min,
        PersistSpec::Product => ConstraintSpec::Product,
        PersistSpec::Scale { gain, offset } => ConstraintSpec::Scale {
            gain: *gain,
            offset: *offset,
        },
        PersistSpec::LeConst(v) => ConstraintSpec::LeConst(v.clone()),
        PersistSpec::GeConst(v) => ConstraintSpec::GeConst(v.clone()),
        PersistSpec::EqConst(v) => ConstraintSpec::EqConst(v.clone()),
        PersistSpec::Le => ConstraintSpec::Le,
        PersistSpec::Lt => ConstraintSpec::Lt,
        PersistSpec::DomAdd { views, out } => ConstraintSpec::DomAdd {
            views: *views,
            out: *out,
        },
        PersistSpec::DomLe { c, views, out } => ConstraintSpec::DomLe {
            c: *c,
            views: *views,
            out: *out,
        },
        PersistSpec::DomAllDiff => ConstraintSpec::DomAllDiff,
        PersistSpec::DomReifLe { c, views } => ConstraintSpec::DomReifLe {
            c: *c,
            views: *views,
        },
    }
}

fn source_to_persist(source: Source) -> PersistSource {
    match source {
        Source::User => PersistSource::User,
        Source::Application => PersistSource::Application,
        Source::Update => PersistSource::Update,
        Source::DefaultValue => PersistSource::DefaultValue,
    }
}

fn source_from_persist(source: PersistSource) -> Source {
    match source {
        PersistSource::User => Source::User,
        PersistSource::Application => Source::Application,
        PersistSource::Update => Source::Update,
        PersistSource::DefaultValue => Source::DefaultValue,
    }
}

// Public conversions for wire-protocol frontends (`stem-server`): the
// network carries the persistable vocabulary, the engine speaks
// `ConstraintSpec`/`Source`.

impl From<PersistSpec> for ConstraintSpec {
    fn from(spec: PersistSpec) -> ConstraintSpec {
        spec_from_persist(&spec)
    }
}

impl From<PersistSource> for Source {
    fn from(source: PersistSource) -> Source {
        source_from_persist(source)
    }
}

impl From<Source> for PersistSource {
    fn from(source: Source) -> PersistSource {
        source_to_persist(source)
    }
}

impl TryFrom<&ConstraintSpec> for PersistSpec {
    /// The spec is a [`ConstraintSpec::Custom`] kind factory — process-local
    /// code with no serialisable description.
    type Error = ();

    fn try_from(spec: &ConstraintSpec) -> Result<PersistSpec, ()> {
        spec_to_persist(spec).ok_or(())
    }
}

impl From<PersistCommand> for Command {
    fn from(cmd: PersistCommand) -> Command {
        command_from_persist(cmd)
    }
}

/// Converts a batch into its loggable mirror, dropping read-only commands
/// (replaying them would be a no-op). `Err(index)` on a custom constraint
/// kind — validation rejects those up front on durable engines, so the
/// worker treats this as unreachable.
pub(crate) fn commands_to_persist(commands: &[Command]) -> Result<Vec<PersistCommand>, usize> {
    let mut out = Vec::with_capacity(commands.len());
    for (ix, cmd) in commands.iter().enumerate() {
        match cmd {
            Command::AddVariable { name } => {
                out.push(PersistCommand::AddVariable { name: name.clone() })
            }
            Command::Set { var, value, source } => out.push(PersistCommand::Set {
                var: *var,
                value: value.clone(),
                source: source_to_persist(*source),
            }),
            Command::Unset { var } => out.push(PersistCommand::Unset { var: *var }),
            Command::AddConstraint { spec, args } => {
                let Some(spec) = spec_to_persist(spec) else {
                    return Err(ix);
                };
                out.push(PersistCommand::AddConstraint {
                    spec,
                    args: args.clone(),
                });
            }
            Command::RemoveConstraint { constraint } => {
                out.push(PersistCommand::RemoveConstraint {
                    constraint: *constraint,
                })
            }
            Command::EnableConstraint {
                constraint,
                enabled,
            } => out.push(PersistCommand::EnableConstraint {
                constraint: *constraint,
                enabled: *enabled,
            }),
            Command::SetKindEnabled { kind_name, enabled } => {
                out.push(PersistCommand::SetKindEnabled {
                    kind_name: kind_name.clone(),
                    enabled: *enabled,
                })
            }
            Command::SetValueChangeLimit { limit } => {
                out.push(PersistCommand::SetValueChangeLimit { limit: *limit })
            }
            Command::Get { .. }
            | Command::Probe { .. }
            | Command::DumpValues
            | Command::CheckAll => {}
        }
    }
    Ok(out)
}

pub(crate) fn command_from_persist(cmd: PersistCommand) -> Command {
    match cmd {
        PersistCommand::AddVariable { name } => Command::AddVariable { name },
        PersistCommand::Set { var, value, source } => Command::Set {
            var,
            value,
            source: source_from_persist(source),
        },
        PersistCommand::Unset { var } => Command::Unset { var },
        PersistCommand::AddConstraint { spec, args } => Command::AddConstraint {
            spec: spec_from_persist(&spec),
            args,
        },
        PersistCommand::RemoveConstraint { constraint } => Command::RemoveConstraint { constraint },
        PersistCommand::EnableConstraint {
            constraint,
            enabled,
        } => Command::EnableConstraint {
            constraint,
            enabled,
        },
        PersistCommand::SetKindEnabled { kind_name, enabled } => {
            Command::SetKindEnabled { kind_name, enabled }
        }
        PersistCommand::SetValueChangeLimit { limit } => Command::SetValueChangeLimit { limit },
    }
}

// ---------------------------------------------------------------------
// Spec shadow + checkpoint state
// ---------------------------------------------------------------------

/// Folds one committed batch's structural effects into the session's spec
/// shadow. Slot indices allocate sequentially and removals tombstone in
/// place, exactly like the network's constraint arena, so pushing on add
/// and clearing on remove keeps `specs[i]` aligned with slot `i`.
pub(crate) fn absorb_committed(specs: &mut Vec<Option<PersistSpec>>, commands: &[PersistCommand]) {
    for cmd in commands {
        match cmd {
            PersistCommand::AddConstraint { spec, .. } => specs.push(Some(spec.clone())),
            PersistCommand::RemoveConstraint { constraint } => {
                if let Some(slot) = specs.get_mut(constraint.index()) {
                    *slot = None;
                }
            }
            _ => {}
        }
    }
}

/// Serialises a session for a checkpoint: variable images verbatim
/// (value + justification, not re-derived) plus the constraint arena via
/// the spec shadow.
pub(crate) fn gather_state(net: &Network, specs: &[Option<PersistSpec>]) -> SessionState {
    let vars = net
        .variables()
        .map(|v| {
            (
                net.var_name(v).to_string(),
                net.value(v).clone(),
                net.justification(v).clone(),
            )
        })
        .collect();
    let slots = specs
        .iter()
        .enumerate()
        .map(|(ix, spec)| match spec {
            None => SlotState::Tombstone,
            Some(spec) => {
                let cid = ConstraintId::from_index(ix);
                SlotState::Live {
                    spec: spec.clone(),
                    args: net.args(cid).to_vec(),
                    enabled: net.is_constraint_enabled(cid),
                }
            }
        })
        .collect();
    SessionState {
        vars,
        slots,
        value_change_limit: net.value_change_limit(),
        // The caller owns the idempotence watermark (it lives on the
        // worker's session, not the network) and stamps it afterwards.
        dedup: 0,
    }
}

/// Rebuilds a network from a checkpointed image.
///
/// Propagation is disabled for the rebuild: values are re-imposed verbatim
/// with their original justifications (the checkpoint already holds the
/// propagation fixpoint; re-deriving would both waste work and trip the
/// one-value-change rule), then the switch is re-enabled. Constraint slots
/// are materialised in index order — tombstones burn a dummy slot and
/// remove it — so persisted `ConstraintId`s stay valid.
pub(crate) fn restore_network(
    state: &SessionState,
    step_budget: Option<u64>,
) -> (Network, Vec<Option<PersistSpec>>) {
    let mut net = Network::new();
    net.set_step_limit(step_budget);
    net.set_propagation_enabled(false);
    for (name, _, _) in &state.vars {
        net.add_variable(name.clone());
    }
    let mut specs = Vec::with_capacity(state.slots.len());
    for slot in &state.slots {
        match slot {
            SlotState::Tombstone => {
                let cid = net.add_constraint_quiet(
                    stem_core::kinds::Equality::new(),
                    std::iter::empty::<VarId>(),
                );
                net.remove_constraint(cid);
                specs.push(None);
            }
            SlotState::Live {
                spec,
                args,
                enabled,
            } => {
                let kind = spec_from_persist(spec).build();
                let cid = net.add_constraint_quiet_rc(kind, args.iter().copied());
                if !*enabled {
                    net.set_constraint_enabled(cid, false);
                }
                specs.push(Some(spec.clone()));
            }
        }
    }
    for (ix, (_, value, just)) in state.vars.iter().enumerate() {
        if matches!(just, Justification::Unset) && matches!(value, Value::Nil) {
            continue;
        }
        let _ = net.set(VarId::from_index(ix), value.clone(), just.clone());
    }
    if net.value_change_limit() != state.value_change_limit {
        net.set_value_change_limit(state.value_change_limit);
    }
    net.set_propagation_enabled(true);
    (net, specs)
}

// ---------------------------------------------------------------------
// Recovery planning
// ---------------------------------------------------------------------

/// One session to rebuild at open: its checkpointed image plus the
/// committed batches logged after the checkpoint, in commit order. `seq`
/// is the last sequence number the tail reaches.
pub(crate) struct RecoveredSession {
    pub id: u64,
    pub seq: u64,
    pub state: SessionState,
    pub tail: Vec<Vec<PersistCommand>>,
    /// Highest client idempotence key among the checkpoint image and the
    /// applied tail records — re-arms duplicate suppression so a client
    /// resubmitting across a restart/failover cannot double-apply.
    pub dedup: u64,
    /// A sequence gap was detected in this session's log — corruption the
    /// checksums could not see. The session rebuilds from its pre-gap
    /// prefix but must come up quarantined, and the engine must fence the
    /// log with a fresh checkpoint before accepting new commits, or the
    /// stale higher-seq records would shadow them at the next recovery.
    pub corrupt: bool,
}

/// What [`crate::Engine::open_with_config`] distills from a reopened
/// store before spawning workers.
pub(crate) struct RecoveryPlan {
    pub next_session: u64,
    pub sessions: Vec<RecoveredSession>,
    /// Closed-session ids (snapshot + tail `Close` records); future
    /// checkpoints must keep carrying them until compaction retires the
    /// records that mention them.
    pub closed: Vec<u64>,
}

/// Merges the recovered snapshot and log tail into per-session rebuild
/// scripts. Per-session filtering: a `Batch` record `(s, q)` applies iff
/// `q` is the next sequence number after what the snapshot (or earlier
/// tail records) already cover and `s` was never closed.
pub(crate) fn plan_recovery(rec: Recovered) -> RecoveryPlan {
    let snap = rec.snapshot.unwrap_or_default();
    let mut closed: HashSet<u64> = snap.closed.iter().copied().collect();
    for r in &rec.tail {
        if let WalRecord::Close { session, .. } = r {
            closed.insert(*session);
        }
    }
    // Closed ids still bound `next_session`: a retired id is never reused.
    let mut max_id: Option<u64> = closed.iter().copied().max();
    let mut order: Vec<u64> = Vec::new();
    let mut by_id: HashMap<u64, RecoveredSession> = HashMap::new();
    for (id, seq, state) in snap.sessions {
        max_id = Some(max_id.map_or(id, |m| m.max(id)));
        if closed.contains(&id) {
            continue;
        }
        order.push(id);
        let dedup = state.dedup;
        by_id.insert(
            id,
            RecoveredSession {
                id,
                seq,
                state,
                tail: Vec::new(),
                dedup,
                corrupt: false,
            },
        );
    }
    // A sequence gap is only possible under corruption the checksums could
    // not see; the session keeps its pre-gap prefix.
    let mut gapped: HashSet<u64> = HashSet::new();
    for r in rec.tail {
        let id = r.session();
        max_id = Some(max_id.map_or(id, |m| m.max(id)));
        if closed.contains(&id) || gapped.contains(&id) {
            continue;
        }
        if let WalRecord::Batch {
            seq, key, commands, ..
        } = r
        {
            let entry = by_id.entry(id).or_insert_with(|| {
                order.push(id);
                RecoveredSession {
                    id,
                    seq: 0,
                    state: SessionState::default(),
                    tail: Vec::new(),
                    dedup: 0,
                    corrupt: false,
                }
            });
            if seq <= entry.seq {
                continue; // already covered by the checkpoint image
            }
            if seq == entry.seq + 1 {
                entry.seq = seq;
                entry.dedup = entry.dedup.max(key);
                entry.tail.push(commands);
            } else {
                gapped.insert(id);
                entry.corrupt = true;
            }
        }
    }
    RecoveryPlan {
        next_session: snap.next_session.max(max_id.map_or(0, |m| m + 1)),
        sessions: order
            .into_iter()
            .filter_map(|id| by_id.remove(&id))
            .collect(),
        closed: closed.into_iter().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(var: usize, v: i64) -> PersistCommand {
        PersistCommand::Set {
            var: VarId::from_index(var),
            value: Value::Int(v),
            source: PersistSource::User,
        }
    }

    fn batch(session: u64, seq: u64) -> WalRecord {
        WalRecord::Batch {
            session,
            seq,
            key: seq,
            commands: vec![set(0, seq as i64)],
        }
    }

    #[test]
    fn plan_filters_by_snapshot_seq_and_closed_set() {
        let rec = Recovered {
            snapshot: Some(stem_persist::Snapshot {
                next_session: 3,
                closed: vec![1],
                sessions: vec![(0, 2, SessionState::default())],
            }),
            tail: vec![
                batch(0, 1), // covered by the snapshot
                batch(0, 2), // covered by the snapshot
                batch(0, 3), // fresh
                batch(1, 4), // closed session
                batch(5, 1), // brand new session, no snapshot image
                WalRecord::Close { session: 5, seq: 2 },
            ],
            truncated: false,
        };
        let plan = plan_recovery(rec);
        assert_eq!(plan.next_session, 6);
        assert_eq!(plan.sessions.len(), 1, "closed sessions stay dead");
        let s0 = &plan.sessions[0];
        assert_eq!((s0.id, s0.seq), (0, 3));
        assert_eq!(s0.tail.len(), 1);
        let mut closed = plan.closed.clone();
        closed.sort_unstable();
        assert_eq!(closed, vec![1, 5]);
    }

    #[test]
    fn plan_stops_a_session_at_a_sequence_gap() {
        let rec = Recovered {
            snapshot: None,
            tail: vec![batch(0, 1), batch(0, 2), batch(0, 4), batch(0, 5)],
            truncated: false,
        };
        let plan = plan_recovery(rec);
        assert_eq!(plan.sessions[0].seq, 2, "prefix before the gap survives");
        assert_eq!(plan.sessions[0].tail.len(), 2);
        assert!(plan.sessions[0].corrupt, "gaps flag the session as corrupt");
    }

    #[test]
    fn clean_plans_are_not_corrupt() {
        let rec = Recovered {
            snapshot: None,
            tail: vec![batch(0, 1), batch(0, 2)],
            truncated: false,
        };
        let plan = plan_recovery(rec);
        assert!(!plan.sessions[0].corrupt);
    }

    #[test]
    fn restore_round_trips_through_gather() {
        let mut net = Network::new();
        let a = net.add_variable("a");
        let b = net.add_variable("b");
        let c = net.add_variable("c");
        let mut specs = Vec::new();
        let installed = vec![
            PersistCommand::AddConstraint {
                spec: PersistSpec::Equality,
                args: vec![a, b],
            },
            PersistCommand::AddConstraint {
                spec: PersistSpec::Sum,
                args: vec![a, b, c],
            },
        ];
        net.add_constraint(stem_core::kinds::Equality::new(), [a, b])
            .unwrap();
        net.add_constraint(
            stem_core::kinds::Functional::new(stem_core::kinds::FunctionalOp::Sum),
            [a, b, c],
        )
        .unwrap();
        absorb_committed(&mut specs, &installed);
        net.set(a, Value::Int(4), Justification::User).unwrap();
        // Tombstone the equality; its erasure resets a/b consequences.
        net.remove_constraint(ConstraintId::from_index(0));
        absorb_committed(
            &mut specs,
            &[PersistCommand::RemoveConstraint {
                constraint: ConstraintId::from_index(0),
            }],
        );
        net.set(a, Value::Int(2), Justification::User).unwrap();
        net.set(b, Value::Int(5), Justification::User).unwrap();

        let state = gather_state(&net, &specs);
        let (restored, rspecs) = restore_network(&state, None);
        assert_eq!(rspecs, specs);
        for v in net.variables() {
            assert_eq!(restored.value(v), net.value(v), "{v}");
            assert_eq!(restored.justification(v), net.justification(v), "{v}");
        }
        assert_eq!(restored.n_constraint_slots(), net.n_constraint_slots());
        assert_eq!(
            restored.all_constraints().collect::<Vec<_>>(),
            net.all_constraints().collect::<Vec<_>>(),
        );
        // The restored network still propagates: c = a + b.
        let mut restored = restored;
        restored
            .set(a, Value::Int(10), Justification::User)
            .unwrap();
        assert_eq!(restored.value(c), &Value::Int(15));
    }
}
