//! # stem-engine — concurrent multi-session propagation service
//!
//! The thesis runs one designer against one constraint network inside one
//! Smalltalk image. This crate is the service tier that grows out of that:
//! an [`Engine`] hosts many independent design *sessions* — each its own
//! [`stem_core::Network`] — behind a transactional batch API, served by a
//! fixed pool of worker threads.
//!
//! ## Architecture
//!
//! - **Sharded sessions.** A [`SessionId`] is pinned to worker
//!   `id % workers`. One worker serialises all batches of its sessions
//!   (per-session order is submission order); different workers run in
//!   parallel. Networks are `!Send` by design (`Rc`-shared kinds) and never
//!   leave their worker — commands cross threads as `Send` descriptions
//!   ([`Command`], [`ConstraintSpec`]) and are materialised worker-side.
//! - **Transactional batches.** A batch of [`Command`]s applies atomically:
//!   all commands commit, or — on a constraint [`Violation`], an invalid
//!   command, a step-budget overrun or a panic — the session is restored
//!   exactly as it was and a structured [`BatchError`] comes back.
//!   Value-only batches roll back via [`stem_core::Network::snapshot`];
//!   batches that edit structure run on a clone that is swapped in only on
//!   success.
//! - **Backpressure & budgets.** Worker queues are bounded:
//!   [`Engine::submit`] blocks when full, [`Engine::try_submit`] returns
//!   [`BatchError::Backpressure`]. An optional per-cycle step budget
//!   ([`EngineConfig::step_budget`]) converts runaway propagation into an
//!   ordinary rolled-back violation.
//! - **Panic isolation.** A panicking command is caught, its batch rolled
//!   back, and the session quarantined — mutating batches are refused
//!   (reads still work) until [`Engine::lift_quarantine`]. Other sessions,
//!   including ones on the same worker, are unaffected.
//! - **Durability (opt-in).** [`Engine::open`] roots the engine on a
//!   `stem-persist` store: every committed batch is appended to a
//!   segmented write-ahead log *before* it is acknowledged, snapshot
//!   checkpoints bound replay time and compact the log, and reopening the
//!   directory rebuilds every session exactly as of its last acknowledged
//!   commit ([`Durability`] picks the fsync regime; [`DurabilityOptions`]
//!   the segment/checkpoint thresholds).
//! - **Observability.** Engine-wide lock-free counters
//!   ([`Engine::stats`] → [`EngineStats`]: batches, waves, assignments,
//!   violations, rollbacks, queue-depth high-water mark, coarse latency
//!   histogram) plus per-session counters ([`Engine::session_stats`] →
//!   [`SessionStats`]).
//!
//! [`Violation`]: stem_core::Violation

#![warn(missing_docs)]

mod command;
mod engine;
mod persist;
mod stats;

pub use command::{BatchError, BatchOutcome, Command, ConstraintSpec, KindFactory, Output, Source};
pub use engine::{BatchTicket, Engine, EngineConfig, ReplayReport, RollbackStrategy, SessionId};
pub use persist::{Durability, DurabilityOptions};
pub use stats::{EngineStats, SessionStats, LATENCY_BUCKET_BOUNDS_US, N_LATENCY_BUCKETS};
