//! The engine proper: a fixed pool of worker threads, each owning the
//! networks of the sessions sharded onto it.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use stem_core::{Network, ParStats, Stats};
use stem_persist::{
    decode_segment, GroupCommit, PersistCommand, PersistSpec, SessionState, Snapshot, Store,
    StoreOptions, SyncPolicy, WalRecord,
};

use crate::command::{BatchError, BatchOutcome, Command, ConstraintSpec, Output};
use crate::persist::{self, Durability, DurabilityOptions, RecoveredSession, RecoveryPlan};
use crate::stats::{Counters, EngineStats, SessionStats};

/// Identifies one design session — an independent constraint network owned
/// by exactly one worker. Ids are engine-unique and never reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(pub u64);

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// How a worker undoes a failed batch ([`EngineConfig::rollback`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RollbackStrategy {
    /// Change-journal rollback (the default): the network records each
    /// touched variable's pre-image and journalable structural edits, and
    /// a failed batch replays the journal in reverse — O(touched set).
    /// Batches containing a non-journalable command
    /// ([`Command::is_journalable`]) still fall back to clone-and-swap.
    #[default]
    Journal,
    /// Legacy whole-network checkpointing: value-only batches
    /// `snapshot()`/`restore_snapshot()`, structural batches run on a
    /// clone — both O(network size). Kept for differential testing and
    /// benchmarking against the journal path.
    Snapshot,
}

/// Engine construction parameters ([`Engine::with_config`]).
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Worker threads; sessions are sharded `id % workers`. Minimum 1.
    pub workers: usize,
    /// Bounded per-worker queue capacity. [`Engine::submit`] blocks when
    /// the target queue is full (backpressure); [`Engine::try_submit`]
    /// returns [`BatchError::Backpressure`] instead. Minimum 1.
    pub queue_capacity: usize,
    /// Per-cycle propagation step budget installed in every session
    /// network; `None` is unlimited. A wave exceeding the budget aborts
    /// cleanly with `ViolationKind::BudgetExceeded` and rolls its batch
    /// back.
    pub step_budget: Option<u64>,
    /// Batch rollback mechanism; see [`RollbackStrategy`].
    pub rollback: RollbackStrategy,
    /// Replay thread budget installed in every session network
    /// ([`stem_core::Network::set_parallel_threads`]). At the default of
    /// 1 every propagation is sequential; above 1, cached plans are
    /// cone-partitioned and replayed on a shared worker pool, and
    /// consecutive `Set` commands in one batch whose plans touch
    /// disjoint variables replay overlapped. Observable behaviour is
    /// identical at every setting — only wall-clock changes.
    pub propagation_threads: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: thread::available_parallelism().map_or(4, |n| n.get().min(8)),
            queue_capacity: 128,
            step_budget: None,
            rollback: RollbackStrategy::default(),
            propagation_threads: 1,
        }
    }
}

/// In-flight batch handle returned by [`Engine::submit`] /
/// [`Engine::try_submit`]; redeem it with [`BatchTicket::wait`].
#[derive(Debug)]
pub struct BatchTicket {
    reply: Receiver<Result<BatchOutcome, BatchError>>,
}

impl BatchTicket {
    /// Blocks until the owning worker replies. Returns
    /// [`BatchError::Shutdown`] if the engine stopped before processing
    /// the batch.
    pub fn wait(self) -> Result<BatchOutcome, BatchError> {
        self.reply.recv().unwrap_or(Err(BatchError::Shutdown))
    }

    /// A ticket that is already redeemed: `wait` returns `result`
    /// immediately. Lets a routing layer answer a batch without touching
    /// an engine (e.g. refusing a submit during reconfiguration) through
    /// the same handle type.
    pub fn resolved(result: Result<BatchOutcome, BatchError>) -> BatchTicket {
        let (tx, rx) = mpsc::channel();
        let _ = tx.send(result);
        BatchTicket { reply: rx }
    }
}

enum Job {
    Batch {
        session: SessionId,
        commands: Vec<Command>,
        /// Client idempotence key (0 = unkeyed); see
        /// [`Engine::submit_keyed`].
        key: u64,
        reply: mpsc::Sender<Result<BatchOutcome, BatchError>>,
        enqueued: Instant,
    },
    SessionStats {
        session: SessionId,
        reply: mpsc::Sender<SessionStats>,
    },
    LiftQuarantine {
        session: SessionId,
        reply: mpsc::Sender<bool>,
    },
    CloseSession {
        session: SessionId,
        reply: mpsc::Sender<bool>,
    },
    /// Gather every session's checkpoint image plus the worker's closed
    /// ids (durable engines only; volatile workers reply empty).
    Checkpoint {
        reply: mpsc::Sender<GatherReply>,
    },
    /// Drop these ids from the worker's closed-session set: the
    /// checkpoint machinery proved every log record that could mention
    /// them has been compacted away, so recovery can never again meet a
    /// record that needs them.
    Forget {
        ids: Arc<HashSet<u64>>,
    },
    /// Replica bootstrap: install recovered snapshot sessions (and closed
    /// ids) belonging to this worker's shard.
    Install {
        sessions: Vec<RecoveredSession>,
        closed: Vec<u64>,
        reply: mpsc::Sender<u64>,
    },
    /// Replica ingestion: replay this worker's share of a shipped WAL
    /// segment, in segment order, deduplicated by per-session sequence.
    Replay {
        records: Vec<WalRecord>,
        reply: mpsc::Sender<ReplayReport>,
    },
    Shutdown,
}

/// What [`Engine::ingest_segment`] did with a shipped segment's records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReplayReport {
    /// Records applied (batches replayed, closes honoured).
    pub applied: u64,
    /// Records skipped as duplicates (sequence already covered) or
    /// addressed to closed sessions — expected when a segment is shipped
    /// twice or overlaps a snapshot bootstrap.
    pub skipped: u64,
    /// Records that could not be applied: a sequence gap (a segment was
    /// skipped in shipping) or a replay failure. Each anomaly quarantines
    /// its session; a correct shipping pipeline never produces one.
    pub anomalies: u64,
}

/// One worker's contribution to a checkpoint: `(id, seq, state)` per live
/// session, plus the worker's cumulative closed-session ids.
type GatherReply = (Vec<(u64, u64, SessionState)>, Vec<u64>);

/// A concurrent multi-session propagation service.
///
/// The engine owns a fixed pool of worker threads. Each session — an
/// independent [`Network`] — is pinned to the worker `session_id %
/// workers`, which serialises that session's batches (they apply in
/// submission order) while distinct sessions on distinct workers run in
/// parallel. Networks never cross threads: they are created, mutated and
/// dropped inside their owning worker, which is what lets the
/// single-threaded `Rc`-based core serve concurrent traffic without locks
/// on the hot path.
///
/// ```
/// use stem_engine::{Command, ConstraintSpec, Engine, Output, Source};
/// use stem_core::{Value, VarId};
///
/// let engine = Engine::new(2);
/// let s = engine.create_session();
/// let out = engine
///     .apply(s, vec![
///         Command::AddVariable { name: "a".into() },
///         Command::AddVariable { name: "b".into() },
///         // Ids are sequential, so a batch may wire what it just created.
///         Command::AddConstraint {
///             spec: ConstraintSpec::Equality,
///             args: vec![VarId::from_index(0), VarId::from_index(1)],
///         },
///         Command::Set {
///             var: VarId::from_index(0),
///             value: Value::Int(7),
///             source: Source::User,
///         },
///         Command::Get { var: VarId::from_index(1) },
///     ])
///     .unwrap();
/// assert_eq!(out.outputs[4], Output::Value(Value::Int(7)));
/// ```
pub struct Engine {
    senders: Vec<SyncSender<Job>>,
    depths: Vec<Arc<AtomicUsize>>,
    counters: Arc<Counters>,
    handles: Vec<JoinHandle<()>>,
    next_session: Arc<AtomicU64>,
    config: EngineConfig,
    durable: Option<DurableCtx>,
    /// Read-only replica flag, shared with every worker; flipped off by
    /// [`Engine::promote`].
    replica: Arc<AtomicBool>,
    /// Group-commit coordinator under [`Durability::GroupCommit`].
    group: Option<Arc<GroupCommit>>,
    /// `(epoch, holder)` of the lease installed by [`Engine::install_lease`]
    /// (0/0 when none) — queryable observability for the fence the store
    /// enforces.
    lease: Arc<(AtomicU64, AtomicU64)>,
}

/// Engine-side durability state, present when the engine was opened on a
/// store ([`Engine::open`] / [`Engine::open_with_config`]).
struct DurableCtx {
    store: Arc<Mutex<Store>>,
    mode: Durability,
    /// Serialises checkpoints (manual and automatic): seal → gather →
    /// write must not interleave with another checkpoint's.
    checkpoint_lock: Arc<Mutex<()>>,
    /// Closed-session ids carried by the most recent durable snapshot;
    /// the next fully-compacting checkpoint may tell workers to forget
    /// them (see [`run_checkpoint`]).
    prev_closed: Arc<Mutex<HashSet<u64>>>,
    stop: Arc<StopSignal>,
    /// Background interval-fsync / auto-checkpoint thread, when either is
    /// configured.
    flusher: Option<JoinHandle<()>>,
}

/// Pre-spawn durable state handed to [`Engine::build`].
struct DurableSetup {
    store: Store,
    mode: Durability,
    checkpoint_bytes: u64,
    plan: RecoveryPlan,
}

impl fmt::Debug for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Engine")
            .field("workers", &self.senders.len())
            .field("config", &self.config)
            .field("durability", &self.durable.as_ref().map(|d| d.mode))
            .finish()
    }
}

impl Engine {
    /// Creates an engine with `workers` threads and default queue/budget
    /// settings.
    pub fn new(workers: usize) -> Self {
        Engine::with_config(EngineConfig {
            workers,
            ..EngineConfig::default()
        })
    }

    /// Creates an engine from an explicit configuration.
    pub fn with_config(config: EngineConfig) -> Self {
        Engine::build(config, None, false).0
    }

    /// Creates a read-only replica engine with `workers` threads: it
    /// accepts shipped WAL segments ([`Engine::ingest_segment`]) and
    /// snapshot bootstraps ([`Engine::ingest_snapshot`]), serves read-only
    /// batches, and rejects mutating batches with
    /// [`BatchError::ReadOnlyReplica`] until [`Engine::promote`].
    pub fn replica(workers: usize) -> Self {
        Engine::replica_with_config(EngineConfig {
            workers,
            ..EngineConfig::default()
        })
    }

    /// [`Engine::replica`] with an explicit configuration. The replica is
    /// volatile — it holds replayed state in memory only; a promoted
    /// replica keeps serving in memory and can be checkpointed into a new
    /// durable store by a higher layer re-submitting its state.
    pub fn replica_with_config(config: EngineConfig) -> Self {
        Engine::build(config, None, true).0
    }

    /// Opens (or creates) a durable engine rooted at `dir`: loads the
    /// newest valid snapshot, replays the log tail, rebuilds every live
    /// session in its worker, and logs new commits with commit-sync
    /// durability. Equivalent to [`Engine::open_with_config`] with
    /// defaults.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Engine> {
        Engine::open_with_config(dir, EngineConfig::default(), DurabilityOptions::default())
    }

    /// [`Engine::open`] with explicit engine configuration and durability
    /// options. With [`Durability::Off`] the store is still recovered but
    /// nothing new is logged.
    pub fn open_with_config(
        dir: impl Into<PathBuf>,
        config: EngineConfig,
        opts: DurabilityOptions,
    ) -> io::Result<Engine> {
        let store_opts = StoreOptions {
            segment_bytes: opts.segment_bytes,
            sync: match opts.mode {
                Durability::CommitSync => SyncPolicy::Always,
                // Group commit defers store-level fsync: the coordinator
                // issues shared flushes before any commit is acknowledged.
                Durability::Off | Durability::IntervalSync { .. } | Durability::GroupCommit => {
                    SyncPolicy::Deferred
                }
            },
            file_factory: opts
                .file_factory
                .unwrap_or_else(|| StoreOptions::default().file_factory),
        };
        let (store, recovered) = Store::open(dir, store_opts)?;
        let plan = persist::plan_recovery(recovered);
        let (engine, anomalies) = Engine::build(
            config,
            Some(DurableSetup {
                store,
                mode: opts.mode,
                checkpoint_bytes: opts.checkpoint_bytes,
                plan,
            }),
            false,
        );
        if anomalies > 0 {
            // One or more sessions recovered from a corrupt log tail
            // (sequence gap or a committed batch that no longer replays):
            // their durable cursors were rewound, so the log still holds
            // stale records at sequence numbers new commits would reuse.
            // Fence immediately: a fresh snapshot captures the rewound
            // state and compaction deletes the stale records, so they can
            // never shadow new commits at the next recovery. (No-op under
            // `Durability::Off`, which logs no new commits.)
            engine.checkpoint()?;
        }
        Ok(engine)
    }

    /// Builds the engine and returns it along with the number of sessions
    /// that recovered anomalously (quarantined); blocks until every
    /// worker has finished rebuilding its recovered sessions.
    fn build(config: EngineConfig, durable: Option<DurableSetup>, replica: bool) -> (Self, u64) {
        let workers = config.workers.max(1);
        let queue = config.queue_capacity.max(1);
        let counters = Arc::new(Counters::default());
        let replica = Arc::new(AtomicBool::new(replica));

        let mut recover_by_shard: Vec<Vec<RecoveredSession>> =
            (0..workers).map(|_| Vec::new()).collect();
        let mut closed_by_shard: Vec<Vec<u64>> = (0..workers).map(|_| Vec::new()).collect();
        let mut snapshot_closed = HashSet::new();
        let (next0, mode, store, checkpoint_bytes) = match durable {
            Some(setup) => {
                for rs in setup.plan.sessions {
                    recover_by_shard[(rs.id % workers as u64) as usize].push(rs);
                }
                // Ids already in the recovered snapshot are candidates for
                // forgetting at the next fully-compacting checkpoint: every
                // record mentioning them predates that snapshot's seal.
                snapshot_closed.extend(setup.plan.closed.iter().copied());
                for id in setup.plan.closed {
                    closed_by_shard[(id % workers as u64) as usize].push(id);
                }
                (
                    setup.plan.next_session,
                    Some(setup.mode),
                    Some(Arc::new(Mutex::new(setup.store))),
                    setup.checkpoint_bytes,
                )
            }
            None => (0, None, None, 0),
        };
        let group = (mode == Some(Durability::GroupCommit)).then(|| {
            Arc::new(GroupCommit::new(
                store.clone().expect("mode implies a store"),
            ))
        });

        // Workers report how many of their sessions recovered anomalously
        // (and are now quarantined) before they start serving jobs.
        let (report_tx, report_rx) = mpsc::channel::<u64>();

        let mut senders = Vec::with_capacity(workers);
        let mut depths = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for ix in 0..workers {
            let (tx, rx) = mpsc::sync_channel::<Job>(queue);
            let depth = Arc::new(AtomicUsize::new(0));
            let worker_depth = depth.clone();
            let worker_counters = counters.clone();
            let step_budget = config.step_budget;
            let rollback = config.rollback;
            let propagation_threads = config.propagation_threads;
            let worker_store = store.clone();
            let worker_group = group.clone();
            let worker_replica = replica.clone();
            let recover = std::mem::take(&mut recover_by_shard[ix]);
            let closed = std::mem::take(&mut closed_by_shard[ix]);
            let report = report_tx.clone();
            handles.push(
                thread::Builder::new()
                    .name(format!("stem-engine-{ix}"))
                    .spawn(move || {
                        // Networks are !Send, so the worker — and every
                        // session it will own — is built inside its thread.
                        Worker {
                            rx,
                            depth: worker_depth,
                            counters: worker_counters,
                            step_budget,
                            rollback,
                            propagation_threads,
                            sessions: HashMap::new(),
                            mode,
                            store: worker_store,
                            group: worker_group,
                            replica: worker_replica,
                            closed,
                            recover,
                            report: Some(report),
                        }
                        .run()
                    })
                    .expect("spawn engine worker"),
            );
            senders.push(tx);
            depths.push(depth);
        }
        drop(report_tx);
        let anomalies: u64 = report_rx.iter().sum();

        let next_session = Arc::new(AtomicU64::new(next0));
        let prev_closed = Arc::new(Mutex::new(snapshot_closed));
        let durable = store.map(|store| {
            let mode = mode.expect("store implies a durability mode");
            let stop = Arc::new(StopSignal::default());
            let checkpoint_lock = Arc::new(Mutex::new(()));
            let flusher = spawn_flusher(
                mode,
                checkpoint_bytes,
                CheckpointCtx {
                    senders: senders.clone(),
                    depths: depths.clone(),
                    next_session: next_session.clone(),
                    store: store.clone(),
                    lock: checkpoint_lock.clone(),
                    prev_closed: prev_closed.clone(),
                },
                stop.clone(),
            );
            DurableCtx {
                store,
                mode,
                checkpoint_lock,
                prev_closed,
                stop,
                flusher,
            }
        });
        (
            Engine {
                senders,
                depths,
                counters,
                handles,
                next_session,
                config,
                durable,
                replica,
                group,
                lease: Arc::new((AtomicU64::new(0), AtomicU64::new(0))),
            },
            anomalies,
        )
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.senders.len()
    }

    /// The configuration the engine was built with.
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// Allocates a new session id. The session's network materialises
    /// lazily in its worker on first use; ids are never reused.
    pub fn create_session(&self) -> SessionId {
        SessionId(self.next_session.fetch_add(1, Ordering::Relaxed))
    }

    fn shard(&self, session: SessionId) -> usize {
        (session.0 % self.senders.len() as u64) as usize
    }

    fn note_enqueue(&self, shard: usize) {
        let depth = self.depths[shard].fetch_add(1, Ordering::Relaxed) + 1;
        self.counters.observe_queue_depth(depth as u64);
    }

    /// Enqueues a batch, blocking while the worker's queue is full
    /// (backpressure), and returns a ticket for the reply.
    pub fn submit(&self, session: SessionId, commands: Vec<Command>) -> BatchTicket {
        self.submit_keyed(session, commands, 0)
    }

    /// [`Engine::submit`] with a client idempotence key. Keys are dense
    /// per-session counters of *submitted mutating batches* assigned by
    /// the (single) writing client; `0` means unkeyed. A keyed batch at
    /// or below the session's high-water mark is a resubmit of something
    /// already decided: it is skipped and acknowledged with an empty
    /// [`BatchOutcome`] instead of being applied twice. Only successful
    /// batches advance the mark — a violated batch re-runs and
    /// deterministically re-violates against the identical state.
    pub fn submit_keyed(
        &self,
        session: SessionId,
        commands: Vec<Command>,
        key: u64,
    ) -> BatchTicket {
        let shard = self.shard(session);
        let (reply_tx, reply_rx) = mpsc::channel();
        self.note_enqueue(shard);
        let job = Job::Batch {
            session,
            commands,
            key,
            reply: reply_tx,
            enqueued: Instant::now(),
        };
        if self.senders[shard].send(job).is_err() {
            self.depths[shard].fetch_sub(1, Ordering::Relaxed);
        }
        BatchTicket { reply: reply_rx }
    }

    /// Enqueues a batch without blocking; a full queue returns
    /// [`BatchError::Backpressure`] and the batch is not accepted.
    pub fn try_submit(
        &self,
        session: SessionId,
        commands: Vec<Command>,
    ) -> Result<BatchTicket, BatchError> {
        self.try_submit_keyed(session, commands, 0)
    }

    /// [`Engine::try_submit`] with a client idempotence key (see
    /// [`Engine::submit_keyed`]).
    pub fn try_submit_keyed(
        &self,
        session: SessionId,
        commands: Vec<Command>,
        key: u64,
    ) -> Result<BatchTicket, BatchError> {
        let shard = self.shard(session);
        let (reply_tx, reply_rx) = mpsc::channel();
        self.note_enqueue(shard);
        let job = Job::Batch {
            session,
            commands,
            key,
            reply: reply_tx,
            enqueued: Instant::now(),
        };
        match self.senders[shard].try_send(job) {
            Ok(()) => Ok(BatchTicket { reply: reply_rx }),
            Err(err) => {
                self.depths[shard].fetch_sub(1, Ordering::Relaxed);
                match err {
                    TrySendError::Full(_) => {
                        self.counters
                            .backpressure_rejections
                            .fetch_add(1, Ordering::Relaxed);
                        Err(BatchError::Backpressure)
                    }
                    TrySendError::Disconnected(_) => Err(BatchError::Shutdown),
                }
            }
        }
    }

    /// Submits a batch and waits for its outcome — the synchronous
    /// convenience over [`Engine::submit`] + [`BatchTicket::wait`].
    pub fn apply(
        &self,
        session: SessionId,
        commands: Vec<Command>,
    ) -> Result<BatchOutcome, BatchError> {
        self.submit(session, commands).wait()
    }

    /// Fetches a session's counters (creating the session if it never ran
    /// a batch). Travels the session's queue, so it also observes ordering
    /// with in-flight batches.
    pub fn session_stats(&self, session: SessionId) -> SessionStats {
        let shard = self.shard(session);
        let (tx, rx) = mpsc::channel();
        self.note_enqueue(shard);
        if self.senders[shard]
            .send(Job::SessionStats { session, reply: tx })
            .is_err()
        {
            self.depths[shard].fetch_sub(1, Ordering::Relaxed);
            return SessionStats::default();
        }
        rx.recv().unwrap_or_default()
    }

    /// Lifts a session's quarantine, re-admitting mutating batches.
    /// Returns whether the session was quarantined.
    pub fn lift_quarantine(&self, session: SessionId) -> bool {
        let shard = self.shard(session);
        let (tx, rx) = mpsc::channel();
        self.note_enqueue(shard);
        if self.senders[shard]
            .send(Job::LiftQuarantine { session, reply: tx })
            .is_err()
        {
            self.depths[shard].fetch_sub(1, Ordering::Relaxed);
            return false;
        }
        rx.recv().unwrap_or(false)
    }

    /// Drops a session's network and counters. Returns whether the session
    /// existed. The id is retired, not recycled.
    pub fn close_session(&self, session: SessionId) -> bool {
        let shard = self.shard(session);
        let (tx, rx) = mpsc::channel();
        self.note_enqueue(shard);
        if self.senders[shard]
            .send(Job::CloseSession { session, reply: tx })
            .is_err()
        {
            self.depths[shard].fetch_sub(1, Ordering::Relaxed);
            return false;
        }
        rx.recv().unwrap_or(false)
    }

    /// The durability mode the engine was opened with; `None` for a
    /// purely in-memory engine ([`Engine::new`] / [`Engine::with_config`]).
    pub fn durability(&self) -> Option<Durability> {
        self.durable.as_ref().map(|d| d.mode)
    }

    /// Forces any deferred log writes to disk (a no-op under commit-sync,
    /// where every acknowledged commit is already synced). `Ok(false)` on
    /// a non-durable engine.
    pub fn sync_wal(&self) -> io::Result<bool> {
        let Some(d) = &self.durable else {
            return Ok(false);
        };
        d.store.lock().unwrap().sync()?;
        Ok(true)
    }

    /// Writes a snapshot checkpoint now and compacts the log segments it
    /// covers. `Ok(false)` (without touching disk) on a non-durable or
    /// recover-only ([`Durability::Off`]) engine.
    pub fn checkpoint(&self) -> io::Result<bool> {
        let Some(d) = &self.durable else {
            return Ok(false);
        };
        if d.mode == Durability::Off {
            return Ok(false);
        }
        run_checkpoint(&CheckpointCtx {
            senders: self.senders.clone(),
            depths: self.depths.clone(),
            next_session: self.next_session.clone(),
            store: d.store.clone(),
            lock: d.checkpoint_lock.clone(),
            prev_closed: d.prev_closed.clone(),
        })?;
        Ok(true)
    }

    // -----------------------------------------------------------------
    // WAL segment shipping (leader side)
    // -----------------------------------------------------------------

    /// Seals the active WAL segment and returns every sealed segment
    /// index — the shippable replication units. Errors on a non-durable
    /// engine (there is no log to ship).
    pub fn seal_wal(&self) -> io::Result<Vec<u64>> {
        let Some(d) = &self.durable else {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "engine has no write-ahead log to seal",
            ));
        };
        d.store.lock().unwrap().seal_for_checkpoint()
    }

    /// Reads a sealed segment's raw bytes for shipping to a replica.
    pub fn read_wal_segment(&self, index: u64) -> io::Result<Vec<u8>> {
        let Some(d) = &self.durable else {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "engine has no write-ahead log to read",
            ));
        };
        d.store.lock().unwrap().read_segment(index)
    }

    /// Raw bytes of the newest checkpoint snapshot, if any — the bulk
    /// bootstrap a replica ingests before replaying shipped segments.
    pub fn wal_snapshot_bytes(&self) -> io::Result<Option<Vec<u8>>> {
        let Some(d) = &self.durable else {
            return Ok(None);
        };
        d.store.lock().unwrap().latest_snapshot_bytes()
    }

    // -----------------------------------------------------------------
    // Lease fencing (cluster tier)
    // -----------------------------------------------------------------

    /// Arms this engine's store with a lease fence: the engine holds
    /// `epoch` (granted to `holder`), and `current` is the cluster's live
    /// epoch cell. Once the coordinator bumps `current` past `epoch` —
    /// after durably advancing the on-disk [`stem_persist::Lease`] — every
    /// subsequent WAL append here fails, the owning batch rolls back, and
    /// the client sees [`BatchError::Persist`] instead of a phantom ack.
    /// Errors on a non-durable engine: with no log to guard there is
    /// nothing to fence.
    pub fn install_lease(
        &self,
        epoch: u64,
        holder: u64,
        current: Arc<AtomicU64>,
    ) -> io::Result<()> {
        let Some(d) = &self.durable else {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "lease fencing requires a durable engine",
            ));
        };
        d.store.lock().unwrap().set_fence(epoch, current);
        self.lease.0.store(epoch, Ordering::SeqCst);
        self.lease.1.store(holder, Ordering::SeqCst);
        Ok(())
    }

    /// `(epoch, holder)` of the installed lease, `(0, 0)` if none.
    pub fn lease(&self) -> (u64, u64) {
        (
            self.lease.0.load(Ordering::SeqCst),
            self.lease.1.load(Ordering::SeqCst),
        )
    }

    // -----------------------------------------------------------------
    // Replica mode (follower side)
    // -----------------------------------------------------------------

    /// Whether the engine is currently a read-only replica.
    pub fn is_replica(&self) -> bool {
        self.replica.load(Ordering::Relaxed)
    }

    /// Promotes a replica to a writable engine (failover): mutating
    /// batches are accepted from the next submission on. Returns whether
    /// the engine was a replica. Promotion is one-way and the promoted
    /// engine stays volatile; per-session sequencing continues from the
    /// replayed cursors, so a later re-ship into a fresh replica remains
    /// well-ordered.
    pub fn promote(&self) -> bool {
        self.replica.swap(false, Ordering::SeqCst)
    }

    /// Bootstraps a replica from a leader checkpoint snapshot (as
    /// returned by [`Engine::wal_snapshot_bytes`]): every session image
    /// is installed in its shard worker, exactly like crash recovery.
    /// Returns the number of sessions installed. Call once, before the
    /// first [`Engine::ingest_segment`]; segments shipped afterwards
    /// overlap-dedupe against the snapshot's per-session cursors.
    pub fn ingest_snapshot(&self, bytes: &[u8]) -> io::Result<u64> {
        if !self.is_replica() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "snapshot ingestion requires replica mode",
            ));
        }
        let Some(snapshot) = Snapshot::decode_file(bytes) else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "shipped snapshot is torn or checksum-invalid",
            ));
        };
        let plan = persist::plan_recovery(stem_persist::Recovered {
            snapshot: Some(snapshot),
            tail: Vec::new(),
            truncated: false,
        });
        self.next_session
            .fetch_max(plan.next_session, Ordering::Relaxed);
        let workers = self.senders.len() as u64;
        let mut sessions_by_shard: Vec<Vec<RecoveredSession>> =
            (0..workers).map(|_| Vec::new()).collect();
        let mut closed_by_shard: Vec<Vec<u64>> = (0..workers).map(|_| Vec::new()).collect();
        for rs in plan.sessions {
            sessions_by_shard[(rs.id % workers) as usize].push(rs);
        }
        for id in plan.closed {
            closed_by_shard[(id % workers) as usize].push(id);
        }
        let mut replies = Vec::new();
        for (ix, (sessions, closed)) in sessions_by_shard
            .into_iter()
            .zip(closed_by_shard)
            .enumerate()
        {
            if sessions.is_empty() && closed.is_empty() {
                continue;
            }
            let (tx, rx) = mpsc::channel();
            self.note_enqueue(ix);
            self.senders[ix]
                .send(Job::Install {
                    sessions,
                    closed,
                    reply: tx,
                })
                .map_err(|_| io::Error::other("engine is shutting down"))?;
            replies.push(rx);
        }
        let mut installed = 0;
        for rx in replies {
            installed += rx
                .recv()
                .map_err(|_| io::Error::other("engine is shutting down"))?;
        }
        Ok(installed)
    }

    /// Ingests one shipped WAL segment (as returned by
    /// [`Engine::read_wal_segment`]): records are routed to their shard
    /// workers in segment order and replayed through the same validate +
    /// apply machinery recovery uses, deduplicated by per-session
    /// sequence numbers — re-shipping a segment is a harmless no-op.
    /// Requires replica mode.
    pub fn ingest_segment(&self, bytes: &[u8]) -> io::Result<ReplayReport> {
        if !self.is_replica() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "segment ingestion requires replica mode",
            ));
        }
        let records = decode_segment(bytes)?;
        if let Some(max_id) = records.iter().map(WalRecord::session).max() {
            // Keep the id allocator ahead of every replayed session so a
            // promoted replica never hands out a replayed id.
            self.next_session.fetch_max(max_id + 1, Ordering::Relaxed);
        }
        let workers = self.senders.len() as u64;
        let mut by_shard: Vec<Vec<WalRecord>> = (0..workers).map(|_| Vec::new()).collect();
        for rec in records {
            by_shard[(rec.session() % workers) as usize].push(rec);
        }
        let mut replies = Vec::new();
        for (ix, records) in by_shard.into_iter().enumerate() {
            if records.is_empty() {
                continue;
            }
            let (tx, rx) = mpsc::channel();
            self.note_enqueue(ix);
            self.senders[ix]
                .send(Job::Replay { records, reply: tx })
                .map_err(|_| io::Error::other("engine is shutting down"))?;
            replies.push(rx);
        }
        let mut report = ReplayReport::default();
        for rx in replies {
            let r = rx
                .recv()
                .map_err(|_| io::Error::other("engine is shutting down"))?;
            report.applied += r.applied;
            report.skipped += r.skipped;
            report.anomalies += r.anomalies;
        }
        self.counters
            .segments_ingested
            .fetch_add(1, Ordering::Relaxed);
        self.counters
            .records_replayed
            .fetch_add(report.applied, Ordering::Relaxed);
        Ok(report)
    }

    /// Overlays the store-side counters (WAL appends/bytes, snapshots) on
    /// an engine-stats snapshot.
    fn overlay_store(&self, mut s: EngineStats) -> EngineStats {
        if let Some(d) = &self.durable {
            let st = d.store.lock().unwrap().stats();
            s.wal_appends = st.appends;
            s.wal_bytes = st.bytes;
            s.snapshots_written = st.snapshots_written;
        }
        if let Some(g) = &self.group {
            s.wal_group_syncs = g.syncs();
        }
        s
    }

    /// Snapshot of the engine-wide counters.
    pub fn stats(&self) -> EngineStats {
        self.overlay_store(self.counters.snapshot())
    }

    /// [`Engine::stats`] that also resets the queue-depth high-water mark:
    /// the returned snapshot reports the mark as of the read, and later
    /// reads watermark from zero again. Lets repeated measurement runs
    /// (e.g. the T-E20 throughput table) report per-epoch peaks instead of
    /// a stale all-time maximum.
    pub fn stats_and_reset_queue_hwm(&self) -> EngineStats {
        self.overlay_store(self.counters.snapshot_and_reset_queue_hwm())
    }

    /// Stops every worker after it drains its queue, then joins them.
    /// Also runs on drop.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        if let Some(d) = &mut self.durable {
            d.stop.stop();
            if let Some(h) = d.flusher.take() {
                let _ = h.join();
            }
        }
        for tx in &self.senders {
            let _ = tx.send(Job::Shutdown);
        }
        self.senders.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
        if let Some(d) = &self.durable {
            // A clean shutdown loses nothing, even under interval sync.
            let _ = d.store.lock().unwrap().sync();
        }
    }
}

/// Everything a checkpoint needs; [`Engine::checkpoint`] and the
/// background flusher build the same context.
struct CheckpointCtx {
    senders: Vec<SyncSender<Job>>,
    depths: Vec<Arc<AtomicUsize>>,
    next_session: Arc<AtomicU64>,
    store: Arc<Mutex<Store>>,
    lock: Arc<Mutex<()>>,
    /// Closed ids carried by the previous durable snapshot; see
    /// [`run_checkpoint`]'s forget protocol.
    prev_closed: Arc<Mutex<HashSet<u64>>>,
}

/// Seal → gather → write. Rotating *before* the gather puts every record
/// logged so far into sealed segments the gathered images fully cover, so
/// deleting those segments after the snapshot is durable cannot drop an
/// uncovered commit; records racing the gather land in the fresh active
/// segment and replay on top of the snapshot (per-session sequence numbers
/// make the overlap idempotent).
fn run_checkpoint(ctx: &CheckpointCtx) -> io::Result<()> {
    let _serialise = ctx.lock.lock().unwrap();
    if ctx.senders.is_empty() {
        return Err(io::Error::other("engine is shutting down"));
    }
    let covered = ctx.store.lock().unwrap().seal_for_checkpoint()?;
    let mut replies = Vec::with_capacity(ctx.senders.len());
    for (ix, tx) in ctx.senders.iter().enumerate() {
        let (rtx, rrx) = mpsc::channel();
        ctx.depths[ix].fetch_add(1, Ordering::Relaxed);
        if tx.send(Job::Checkpoint { reply: rtx }).is_err() {
            ctx.depths[ix].fetch_sub(1, Ordering::Relaxed);
            return Err(io::Error::other("engine is shutting down"));
        }
        replies.push(rrx);
    }
    let mut sessions = Vec::new();
    let mut closed = Vec::new();
    for rrx in replies {
        let (mut s, mut c) = rrx
            .recv()
            .map_err(|_| io::Error::other("engine is shutting down"))?;
        sessions.append(&mut s);
        closed.append(&mut c);
    }
    // Read after the gather so the id bound covers every session that
    // could appear in the images.
    let next_session = ctx.next_session.load(Ordering::Relaxed);
    let snap = Snapshot {
        next_session,
        closed: closed.clone(),
        sessions,
    };
    let fully_compacted = ctx.store.lock().unwrap().write_snapshot(&snap, &covered)?;

    // Forget protocol, two checkpoints behind: an id in the *previous*
    // snapshot was closed before that snapshot sealed, so every record
    // mentioning it sits in segments this checkpoint just covered. Once
    // those segments are verifiably gone (`fully_compacted`), nothing on
    // disk can resurrect the id and workers may drop it. The snapshot we
    // just wrote still lists such ids — the belt stays on until the next
    // round — and the id bound (`next_session`) keeps them unreusable.
    {
        let mut prev = ctx.prev_closed.lock().unwrap();
        let forget = if fully_compacted {
            std::mem::take(&mut *prev)
        } else {
            HashSet::new()
        };
        *prev = closed
            .into_iter()
            .filter(|id| !forget.contains(id))
            .collect();
        if !forget.is_empty() {
            let ids = Arc::new(forget);
            for (ix, tx) in ctx.senders.iter().enumerate() {
                ctx.depths[ix].fetch_add(1, Ordering::Relaxed);
                if tx.send(Job::Forget { ids: ids.clone() }).is_err() {
                    // Shutdown race: the worker is gone, and so is its
                    // closed list.
                    ctx.depths[ix].fetch_sub(1, Ordering::Relaxed);
                }
            }
        }
    }
    Ok(())
}

/// Spawns the background thread driving interval fsyncs and automatic
/// checkpoints; `None` when neither is configured.
fn spawn_flusher(
    mode: Durability,
    checkpoint_bytes: u64,
    ctx: CheckpointCtx,
    stop: Arc<StopSignal>,
) -> Option<JoinHandle<()>> {
    let interval = match mode {
        Durability::IntervalSync { interval } => Some(interval.max(Duration::from_millis(1))),
        // Group commit flushes before every ack; like commit-sync, only
        // automatic checkpointing needs the background thread.
        Durability::CommitSync | Durability::GroupCommit => None,
        // Recover-only engines neither sync nor checkpoint.
        Durability::Off => return None,
    };
    if interval.is_none() && checkpoint_bytes == 0 {
        return None;
    }
    let tick = interval
        .unwrap_or(Duration::from_millis(50))
        .min(Duration::from_millis(50));
    let handle = thread::Builder::new()
        .name("stem-engine-flush".into())
        .spawn(move || {
            let mut last_sync = Instant::now();
            loop {
                // Park on the stop signal: zero wakeups between ticks,
                // and shutdown interrupts the wait instead of waiting
                // out the remainder of a tick to join this thread.
                if stop.wait_stop(tick) {
                    break;
                }
                if let Some(iv) = interval {
                    if last_sync.elapsed() >= iv {
                        let _ = ctx.store.lock().unwrap().sync();
                        last_sync = Instant::now();
                    }
                }
                if checkpoint_bytes > 0 {
                    let due = ctx.store.lock().unwrap().stats().bytes_since_checkpoint
                        >= checkpoint_bytes;
                    if due {
                        let _ = run_checkpoint(&ctx);
                    }
                }
            }
        })
        .expect("spawn engine flusher");
    Some(handle)
}

/// Stop flag the background flusher parks on. `stop()` flips the flag
/// and wakes the waiter immediately, so engine shutdown never idles for
/// the rest of a flush tick.
#[derive(Default)]
struct StopSignal {
    stopped: Mutex<bool>,
    cv: Condvar,
}

impl StopSignal {
    fn stop(&self) {
        *self.stopped.lock().unwrap() = true;
        self.cv.notify_all();
    }

    /// Waits up to `timeout` (or until `stop()`); true once stopped.
    fn wait_stop(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut guard = self.stopped.lock().unwrap();
        loop {
            if *guard {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (g, _) = self.cv.wait_timeout(guard, deadline - now).unwrap();
            guard = g;
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

// ---------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------

struct Session {
    net: Network,
    stats: SessionStats,
    quarantined: bool,
    /// Last logged commit sequence number (0 before the first log write).
    seq: u64,
    /// Highest client idempotence key a successful batch carried (0 =
    /// none). Keyed submits at or below this are resubmits and are
    /// skipped; see [`Engine::submit_keyed`].
    dedup: u64,
    /// Spec shadow of the constraint arena: `specs[i]` is slot `i`'s
    /// replayable description, `None` for tombstones. Maintained only on
    /// durable engines (empty otherwise).
    specs: Vec<Option<PersistSpec>>,
}

struct Worker {
    rx: Receiver<Job>,
    depth: Arc<AtomicUsize>,
    counters: Arc<Counters>,
    step_budget: Option<u64>,
    rollback: RollbackStrategy,
    /// Per-network replay thread budget
    /// ([`EngineConfig::propagation_threads`]), stamped on every session
    /// network at creation and recovery.
    propagation_threads: usize,
    sessions: HashMap<SessionId, Session>,
    /// Durability mode when the engine was opened on a store.
    mode: Option<Durability>,
    store: Option<Arc<Mutex<Store>>>,
    /// Shared-fsync coordinator under [`Durability::GroupCommit`].
    group: Option<Arc<GroupCommit>>,
    /// Engine-wide read-only-replica flag ([`Engine::promote`] clears it).
    replica: Arc<AtomicBool>,
    /// Ids of sessions closed on this worker (including ones recovered as
    /// closed); checkpoints persist them so recovery never resurrects a
    /// closed session from pre-compaction records.
    closed: Vec<u64>,
    /// Sessions to rebuild before the first job is served.
    recover: Vec<RecoveredSession>,
    /// One-shot channel for reporting how many recovered sessions came
    /// back anomalous (quarantined); sent (and dropped) before the first
    /// job is served so [`Engine::build`] can fence the store.
    report: Option<mpsc::Sender<u64>>,
}

impl Worker {
    /// Whether committed batches are logged (durable and not recover-only).
    fn logging(&self) -> bool {
        self.store.is_some() && !matches!(self.mode, Some(Durability::Off) | None)
    }

    /// Rebuilds one recovered session: checkpoint image first, then the
    /// logged tail re-applied through the normal batch machinery (without
    /// re-logging — the records are already in the log).
    fn restore_session(&self, rs: RecoveredSession) -> Session {
        let base_seq = rs.seq - rs.tail.len() as u64;
        let (mut net, mut specs) = persist::restore_network(&rs.state, self.step_budget);
        net.set_durability_label(persist::durability_label(self.mode));
        net.set_parallel_threads(self.propagation_threads);
        let mut applied = 0u64;
        for batch in &rs.tail {
            let commands: Vec<Command> = batch
                .iter()
                .cloned()
                .map(persist::command_from_persist)
                .collect();
            // Committed batches replay cleanly against the state they
            // committed on; a failure means corruption the checksums
            // could not see — keep the prefix that did replay.
            if validate(&net, &commands, false).is_err() {
                break;
            }
            if apply_all(&mut net, commands).is_err() {
                break;
            }
            persist::absorb_committed(&mut specs, batch);
            applied += 1;
        }
        self.counters
            .sessions_created
            .fetch_add(1, Ordering::Relaxed);
        self.counters.recoveries.fetch_add(1, Ordering::Relaxed);
        // A short replay or a planner-detected gap means the log's tail
        // diverged from acknowledged state: quarantine the session so a
        // human (or test harness) must acknowledge the rewind via
        // `lift_quarantine` before new mutations are accepted.
        let quarantined = rs.corrupt || applied < rs.tail.len() as u64;
        if quarantined {
            self.counters
                .sessions_quarantined
                .fetch_add(1, Ordering::Relaxed);
        }
        Session {
            net,
            stats: SessionStats::default(),
            quarantined,
            seq: base_seq + applied,
            dedup: rs.dedup,
            specs,
        }
    }

    /// Replays this worker's share of a shipped segment. The records are
    /// the same committed batches crash recovery replays, and the same
    /// machinery applies them (validate + `apply_all`); per-session
    /// sequence numbers deduplicate overlap with the snapshot bootstrap
    /// or re-shipped segments. A gap or a replay failure is an anomaly:
    /// the session is quarantined, exactly like an anomalous recovery.
    fn replay_records(&mut self, records: Vec<WalRecord>) -> ReplayReport {
        let mut report = ReplayReport::default();
        for rec in records {
            match rec {
                WalRecord::Close { session, seq } => {
                    match self.sessions.remove(&SessionId(session)) {
                        Some(sess) if seq > sess.seq => report.applied += 1,
                        Some(_) | None => report.skipped += 1,
                    }
                    if !self.closed.contains(&session) {
                        self.closed.push(session);
                    }
                }
                WalRecord::Batch {
                    session,
                    seq,
                    key,
                    commands,
                } => {
                    if self.closed.contains(&session) {
                        report.skipped += 1;
                        continue;
                    }
                    let counters = self.counters.clone();
                    let sess = self.session_entry(SessionId(session));
                    if seq <= sess.seq {
                        report.skipped += 1;
                        continue;
                    }
                    if seq != sess.seq + 1 || sess.quarantined {
                        report.anomalies += 1;
                        if !sess.quarantined {
                            sess.quarantined = true;
                            counters
                                .sessions_quarantined
                                .fetch_add(1, Ordering::Relaxed);
                        }
                        continue;
                    }
                    let cmds: Vec<Command> = commands
                        .into_iter()
                        .map(persist::command_from_persist)
                        .collect();
                    let ok = validate(&sess.net, &cmds, false).is_ok()
                        && apply_all(&mut sess.net, cmds).is_ok();
                    if ok {
                        sess.seq = seq;
                        sess.dedup = sess.dedup.max(key);
                        sess.stats.batches += 1;
                        sess.stats.batches_ok += 1;
                        report.applied += 1;
                    } else {
                        // A committed batch that no longer replays means
                        // the shipped stream diverged from the leader's
                        // history; serving more reads from this session
                        // would serve wrong answers.
                        report.anomalies += 1;
                        sess.quarantined = true;
                        counters
                            .sessions_quarantined
                            .fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
        report
    }

    fn run(mut self) {
        // FIFO queues guarantee no job can observe a session before its
        // rebuild: recovery runs to completion first.
        let mut anomalies = 0u64;
        for rs in std::mem::take(&mut self.recover) {
            let id = SessionId(rs.id);
            let sess = self.restore_session(rs);
            if sess.quarantined {
                anomalies += 1;
            }
            self.sessions.insert(id, sess);
        }
        if let Some(tx) = self.report.take() {
            let _ = tx.send(anomalies);
        }
        while let Ok(job) = self.rx.recv() {
            self.depth.fetch_sub(1, Ordering::Relaxed);
            match job {
                Job::Batch {
                    session,
                    commands,
                    key,
                    reply,
                    enqueued,
                } => {
                    let result = self.process_batch(session, commands, key);
                    self.counters
                        .observe_latency_us(enqueued.elapsed().as_micros() as u64);
                    let _ = reply.send(result);
                }
                Job::SessionStats { session, reply } => {
                    let sess = self.session_entry(session);
                    let mut stats = sess.stats;
                    stats.n_variables = sess.net.n_variables() as u64;
                    stats.n_constraints = sess.net.n_constraints() as u64;
                    stats.net_snapshots = sess.net.snapshots_taken();
                    stats.net_clones = sess.net.clones_taken();
                    let net_stats = sess.net.stats();
                    stats.plan_compiles = net_stats.plan_compiles;
                    stats.plan_cache_hits = net_stats.plan_cache_hits;
                    stats.plan_cache_invalidations = net_stats.plan_cache_invalidations;
                    stats.domain_tightenings = net_stats.domain_tightenings;
                    stats.subsumed_pruned = net_stats.subsumed_pruned;
                    stats.wipeouts = net_stats.wipeouts;
                    let par_stats = sess.net.par_stats();
                    stats.plan_replays_parallel = par_stats.plan_replays_parallel;
                    stats.plan_replays_wavefront = par_stats.plan_replays_wavefront;
                    stats.cones_executed = par_stats.cones_executed;
                    stats.cones_stolen = par_stats.cones_stolen;
                    stats.parallel_fallbacks = par_stats.parallel_fallbacks;
                    stats.quarantined = sess.quarantined;
                    let _ = reply.send(stats);
                }
                Job::LiftQuarantine { session, reply } => {
                    let sess = self.session_entry(session);
                    let was = sess.quarantined;
                    sess.quarantined = false;
                    let _ = reply.send(was);
                }
                Job::CloseSession { session, reply } => {
                    let existed = match self.sessions.remove(&session) {
                        Some(sess) => {
                            if self.logging() {
                                // Best-effort: a lost Close record only
                                // means the session resurrects on
                                // recovery; no acknowledged data is at
                                // stake.
                                let record = WalRecord::Close {
                                    session: session.0,
                                    seq: sess.seq + 1,
                                };
                                if let Some(store) = &self.store {
                                    let _ = store.lock().unwrap().append(&record);
                                }
                                self.closed.push(session.0);
                            }
                            true
                        }
                        None => false,
                    };
                    let _ = reply.send(existed);
                }
                Job::Checkpoint { reply } => {
                    let mut sessions = Vec::with_capacity(self.sessions.len());
                    if self.logging() {
                        for (id, sess) in &self.sessions {
                            let mut state = persist::gather_state(&sess.net, &sess.specs);
                            state.dedup = sess.dedup;
                            sessions.push((id.0, sess.seq, state));
                        }
                    }
                    let _ = reply.send((sessions, self.closed.clone()));
                }
                Job::Forget { ids } => {
                    self.closed.retain(|id| !ids.contains(id));
                }
                Job::Install {
                    sessions,
                    closed,
                    reply,
                } => {
                    let installed = sessions.len() as u64;
                    for rs in sessions {
                        let id = SessionId(rs.id);
                        let sess = self.restore_session(rs);
                        self.sessions.insert(id, sess);
                    }
                    for id in closed {
                        if !self.closed.contains(&id) {
                            self.closed.push(id);
                        }
                    }
                    let _ = reply.send(installed);
                }
                Job::Replay { records, reply } => {
                    let report = self.replay_records(records);
                    let _ = reply.send(report);
                }
                Job::Shutdown => break,
            }
        }
    }

    fn session_entry(&mut self, id: SessionId) -> &mut Session {
        let counters = &self.counters;
        let step_budget = self.step_budget;
        let mode = self.mode;
        let propagation_threads = self.propagation_threads;
        self.sessions.entry(id).or_insert_with(|| {
            counters.sessions_created.fetch_add(1, Ordering::Relaxed);
            let mut net = Network::new();
            net.set_step_limit(step_budget);
            net.set_durability_label(persist::durability_label(mode));
            net.set_parallel_threads(propagation_threads);
            Session {
                net,
                stats: SessionStats::default(),
                quarantined: false,
                seq: 0,
                dedup: 0,
                specs: Vec::new(),
            }
        })
    }

    fn process_batch(
        &mut self,
        id: SessionId,
        commands: Vec<Command>,
        key: u64,
    ) -> Result<BatchOutcome, BatchError> {
        let counters = self.counters.clone();
        counters.batches.fetch_add(1, Ordering::Relaxed);
        let rollback = self.rollback;
        let logging = self.logging();
        let store = self.store.clone();
        let group = self.group.clone();
        if self.replica.load(Ordering::SeqCst) && commands.iter().any(Command::is_mutating) {
            return Err(BatchError::ReadOnlyReplica);
        }
        let sess = self.session_entry(id);
        sess.stats.batches += 1;

        // Keyed resubmit of an already-successful batch: acknowledge
        // without re-applying. The empty outcome marks the skip — a real
        // batch always produces one output per command. (A resubmitted
        // *violated* batch has a key above the mark: it re-runs against
        // byte-identical state and deterministically re-violates.)
        if key != 0 && key <= sess.dedup {
            counters.dedup_skips.fetch_add(1, Ordering::Relaxed);
            return Ok(BatchOutcome {
                outputs: Vec::new(),
                waves: 0,
                assignments: 0,
            });
        }

        if sess.quarantined && commands.iter().any(Command::is_mutating) {
            return Err(BatchError::Quarantined);
        }
        validate(&sess.net, &commands, logging)?;

        // The loggable mirror is built before `apply_all` consumes the
        // commands; read-only batches log nothing. Validation already
        // rejected unpersistable (custom-kind) commands.
        let to_log: Option<Vec<PersistCommand>> =
            if logging && commands.iter().any(Command::is_mutating) {
                Some(
                    persist::commands_to_persist(&commands)
                        .expect("validated: no custom kinds on a durable engine"),
                )
            } else {
                None
            };

        let use_journal =
            rollback == RollbackStrategy::Journal && commands.iter().all(Command::is_journalable);
        let before: Stats = sess.net.stats();
        let before_par: ParStats = sess.net.par_stats();
        let result = if use_journal {
            // Journaled transaction: the network records pre-images and
            // structural undo entries as the batch runs; failure replays
            // them in reverse. Cost is O(touched set) — no snapshot, no
            // clone, regardless of network size.
            sess.net.begin_journal();
            let net = &mut sess.net;
            match catch_unwind(AssertUnwindSafe(|| apply_all(net, commands))) {
                Ok(Ok(outputs)) => {
                    // Log before acknowledging: the journal stays open so
                    // a failed append rolls the whole batch back and the
                    // client's error means "not committed, not durable".
                    match append_commit(&store, &group, id, sess.seq, key, to_log) {
                        Ok(logged) => {
                            sess.net.commit_journal();
                            note_logged(sess, logged);
                            let delta =
                                delta(before, before_par, sess.net.stats(), sess.net.par_stats());
                            Ok((outputs, delta))
                        }
                        Err(err) => {
                            sess.net.rollback_journal();
                            Err(BatchError::Persist {
                                message: err.to_string(),
                            })
                        }
                    }
                }
                Ok(Err((index, violation))) => {
                    sess.net.rollback_journal();
                    Err(BatchError::Violation { index, violation })
                }
                Err(payload) => {
                    // The panic may have unwound out of an active cycle;
                    // finish its restoration (journal-coherently), then
                    // undo the rest of the batch.
                    sess.net.abort_cycle();
                    sess.net.rollback_journal();
                    Err(BatchError::Panicked {
                        index: usize::MAX,
                        message: panic_message(payload),
                    })
                }
            }
        } else if commands.iter().any(Command::is_structural) {
            // Legacy snapshot strategy with structural commands: run the
            // batch on a clone and swap it in only on success. (Under the
            // default journal strategy every command is journalable, so
            // this path is never taken there.)
            let mut work = sess.net.clone();
            match catch_unwind(AssertUnwindSafe(|| apply_all(&mut work, commands))) {
                Ok(Ok(outputs)) => match append_commit(&store, &group, id, sess.seq, key, to_log) {
                    Ok(logged) => {
                        let delta = delta(before, before_par, work.stats(), work.par_stats());
                        sess.net = work;
                        note_logged(sess, logged);
                        Ok((outputs, delta))
                    }
                    // `work` is dropped: the session keeps its pre-batch
                    // state, matching what recovery would rebuild.
                    Err(err) => Err(BatchError::Persist {
                        message: err.to_string(),
                    }),
                },
                Ok(Err((index, violation))) => Err(BatchError::Violation { index, violation }),
                Err(payload) => Err(BatchError::Panicked {
                    index: usize::MAX,
                    message: panic_message(payload),
                }),
            }
        } else {
            // Legacy value-only path: whole-network snapshot/restore.
            let snap = sess.net.snapshot();
            let net = &mut sess.net;
            match catch_unwind(AssertUnwindSafe(|| apply_all(net, commands))) {
                Ok(Ok(outputs)) => match append_commit(&store, &group, id, sess.seq, key, to_log) {
                    Ok(logged) => {
                        note_logged(sess, logged);
                        let delta =
                            delta(before, before_par, sess.net.stats(), sess.net.par_stats());
                        Ok((outputs, delta))
                    }
                    Err(err) => {
                        sess.net.restore_snapshot(&snap);
                        Err(BatchError::Persist {
                            message: err.to_string(),
                        })
                    }
                },
                Ok(Err((index, violation))) => {
                    sess.net.restore_snapshot(&snap);
                    Err(BatchError::Violation { index, violation })
                }
                Err(payload) => {
                    // The panic may have unwound out of an active cycle;
                    // finish its restoration before re-imposing the
                    // pre-batch snapshot.
                    sess.net.abort_cycle();
                    sess.net.restore_snapshot(&snap);
                    Err(BatchError::Panicked {
                        index: usize::MAX,
                        message: panic_message(payload),
                    })
                }
            }
        };

        match result {
            Ok((outputs, d)) => {
                counters.batches_ok.fetch_add(1, Ordering::Relaxed);
                counters.waves.fetch_add(d.waves, Ordering::Relaxed);
                counters
                    .assignments
                    .fetch_add(d.assignments, Ordering::Relaxed);
                counters
                    .plan_compiles
                    .fetch_add(d.plan_compiles, Ordering::Relaxed);
                counters
                    .plan_cache_hits
                    .fetch_add(d.plan_cache_hits, Ordering::Relaxed);
                counters
                    .plan_cache_invalidations
                    .fetch_add(d.plan_cache_invalidations, Ordering::Relaxed);
                counters
                    .plan_replays_parallel
                    .fetch_add(d.plan_replays_parallel, Ordering::Relaxed);
                counters
                    .plan_replays_wavefront
                    .fetch_add(d.plan_replays_wavefront, Ordering::Relaxed);
                counters
                    .cones_executed
                    .fetch_add(d.cones_executed, Ordering::Relaxed);
                counters
                    .cones_stolen
                    .fetch_add(d.cones_stolen, Ordering::Relaxed);
                counters
                    .parallel_fallbacks
                    .fetch_add(d.parallel_fallbacks, Ordering::Relaxed);
                counters
                    .domain_tightenings
                    .fetch_add(d.domain_tightenings, Ordering::Relaxed);
                counters
                    .subsumed_pruned
                    .fetch_add(d.subsumed_pruned, Ordering::Relaxed);
                counters.wipeouts.fetch_add(d.wipeouts, Ordering::Relaxed);
                sess.stats.batches_ok += 1;
                sess.stats.waves += d.waves;
                sess.stats.assignments += d.assignments;
                if key != 0 {
                    sess.dedup = sess.dedup.max(key);
                }
                Ok(BatchOutcome {
                    outputs,
                    waves: d.waves,
                    assignments: d.assignments,
                })
            }
            Err(err) => {
                match &err {
                    BatchError::Violation { .. } => {
                        counters.violations.fetch_add(1, Ordering::Relaxed);
                        counters.rollbacks.fetch_add(1, Ordering::Relaxed);
                        sess.stats.violations += 1;
                    }
                    BatchError::Panicked { .. } => {
                        counters.panics.fetch_add(1, Ordering::Relaxed);
                        counters.rollbacks.fetch_add(1, Ordering::Relaxed);
                        counters
                            .sessions_quarantined
                            .fetch_add(1, Ordering::Relaxed);
                        sess.stats.panics += 1;
                        sess.quarantined = true;
                    }
                    BatchError::Persist { .. } => {
                        counters.rollbacks.fetch_add(1, Ordering::Relaxed);
                    }
                    _ => {}
                }
                Err(err)
            }
        }
    }
}

/// Appends one committed batch's record (if the batch logs at all) and
/// hands the logged commands back for spec-shadow absorption. Called with
/// the session's state still revertible: an `Err` here must leave the
/// session exactly as before the batch.
fn append_commit(
    store: &Option<Arc<Mutex<Store>>>,
    group: &Option<Arc<GroupCommit>>,
    id: SessionId,
    seq: u64,
    key: u64,
    to_log: Option<Vec<PersistCommand>>,
) -> io::Result<Option<(Vec<PersistCommand>, u64)>> {
    let Some(commands) = to_log else {
        return Ok(None);
    };
    let record = WalRecord::Batch {
        session: id.0,
        seq: seq + 1,
        key,
        commands,
    };
    let bytes = match group {
        // Group commit: the coordinator appends under the store lock and
        // parks this worker until some leader's fsync covers the record.
        Some(group) => group.append_durable(&record)?,
        None => {
            let store = store.as_ref().expect("logging requires a store");
            store.lock().unwrap().append(&record)?
        }
    };
    let WalRecord::Batch { commands, .. } = record else {
        unreachable!()
    };
    Ok(Some((commands, bytes as u64)))
}

/// Advances the session's durable cursor after a logged commit.
fn note_logged(sess: &mut Session, logged: Option<(Vec<PersistCommand>, u64)>) {
    if let Some((commands, bytes)) = logged {
        sess.seq += 1;
        sess.stats.wal_appends += 1;
        sess.stats.wal_bytes += bytes;
        persist::absorb_committed(&mut sess.specs, &commands);
    }
}

/// Network-stat movement attributable to one committed batch.
struct BatchDelta {
    waves: u64,
    assignments: u64,
    plan_compiles: u64,
    plan_cache_hits: u64,
    plan_cache_invalidations: u64,
    plan_replays_parallel: u64,
    plan_replays_wavefront: u64,
    cones_executed: u64,
    cones_stolen: u64,
    parallel_fallbacks: u64,
    domain_tightenings: u64,
    subsumed_pruned: u64,
    wipeouts: u64,
}

fn delta(before: Stats, before_par: ParStats, after: Stats, after_par: ParStats) -> BatchDelta {
    BatchDelta {
        waves: after.cycles.saturating_sub(before.cycles),
        assignments: after.assignments.saturating_sub(before.assignments),
        plan_compiles: after.plan_compiles.saturating_sub(before.plan_compiles),
        plan_cache_hits: after.plan_cache_hits.saturating_sub(before.plan_cache_hits),
        plan_cache_invalidations: after
            .plan_cache_invalidations
            .saturating_sub(before.plan_cache_invalidations),
        plan_replays_parallel: after_par
            .plan_replays_parallel
            .saturating_sub(before_par.plan_replays_parallel),
        plan_replays_wavefront: after_par
            .plan_replays_wavefront
            .saturating_sub(before_par.plan_replays_wavefront),
        cones_executed: after_par
            .cones_executed
            .saturating_sub(before_par.cones_executed),
        cones_stolen: after_par
            .cones_stolen
            .saturating_sub(before_par.cones_stolen),
        parallel_fallbacks: after_par
            .parallel_fallbacks
            .saturating_sub(before_par.parallel_fallbacks),
        domain_tightenings: after
            .domain_tightenings
            .saturating_sub(before.domain_tightenings),
        subsumed_pruned: after.subsumed_pruned.saturating_sub(before.subsumed_pruned),
        wipeouts: after.wipeouts.saturating_sub(before.wipeouts),
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Pre-flight validation: every referenced id must exist, counting ids the
/// batch itself will allocate before the referencing command runs. Runs
/// before any command executes, so an invalid batch is a no-op. With
/// `durable`, commands that cannot be persisted (custom constraint kinds)
/// are rejected too — everything that reaches the log must replay.
fn validate(net: &Network, commands: &[Command], durable: bool) -> Result<(), BatchError> {
    let mut n_vars = net.n_variables();
    let mut n_cons = net.n_constraint_slots();
    let invalid = |index: usize, reason: String| BatchError::InvalidCommand { index, reason };
    for (ix, cmd) in commands.iter().enumerate() {
        match cmd {
            Command::AddVariable { .. } => n_vars += 1,
            Command::Set { var, .. }
            | Command::Unset { var }
            | Command::Probe { var, .. }
            | Command::Get { var } => {
                if var.index() >= n_vars {
                    return Err(invalid(ix, format!("unknown variable {var}")));
                }
            }
            Command::AddConstraint { spec, args } => {
                if durable && matches!(spec, ConstraintSpec::Custom(_)) {
                    return Err(invalid(
                        ix,
                        "custom constraint kinds cannot be persisted on a durable engine".into(),
                    ));
                }
                for arg in args {
                    if arg.index() >= n_vars {
                        return Err(invalid(ix, format!("unknown argument {arg}")));
                    }
                }
                n_cons += 1;
            }
            Command::RemoveConstraint { constraint }
            | Command::EnableConstraint { constraint, .. } => {
                if constraint.index() >= n_cons {
                    return Err(invalid(ix, format!("unknown constraint {constraint}")));
                }
            }
            Command::SetValueChangeLimit { limit } => {
                if *limit == 0 {
                    return Err(invalid(ix, "value-change limit must be ≥ 1".into()));
                }
            }
            Command::SetKindEnabled { .. } | Command::DumpValues | Command::CheckAll => {}
        }
    }
    Ok(())
}

type CommandFailure = (usize, stem_core::Violation);

/// Applies a batch in order, consuming the commands: payloads (`Value`s,
/// names, argument vectors) move into the network instead of being cloned
/// per command.
///
/// On a thread-enabled network, a run of consecutive `Set` commands is
/// handed to [`Network::set_all`] as one group so replays of
/// variable-disjoint roots can overlap on the worker pool. The grouping
/// is semantically inert — `set_all` applies its assignments in order
/// and reports the in-group index of a violation, which maps straight
/// back to the failing command's batch index.
fn apply_all(net: &mut Network, commands: Vec<Command>) -> Result<Vec<Output>, CommandFailure> {
    use stem_core::Justification;
    let mut outputs = Vec::with_capacity(commands.len());
    let group_sets = net.parallel_threads() > 1;
    let mut iter = commands.into_iter().enumerate().peekable();
    while let Some((ix, cmd)) = iter.next() {
        if group_sets {
            if let Command::Set { var, value, source } = cmd {
                let mut sets = vec![(var, value, Justification::from(source))];
                while matches!(iter.peek(), Some((_, Command::Set { .. }))) {
                    let Some((_, Command::Set { var, value, source })) = iter.next() else {
                        unreachable!("peeked a Set");
                    };
                    sets.push((var, value, Justification::from(source)));
                }
                let n = sets.len();
                net.set_all(sets).map_err(|(k, v)| (ix + k, v))?;
                outputs.extend(std::iter::repeat_with(|| Output::Unit).take(n));
                continue;
            }
        }
        outputs.push(apply_one(net, cmd).map_err(|v| (ix, v))?);
    }
    Ok(outputs)
}

fn apply_one(net: &mut Network, cmd: Command) -> Result<Output, stem_core::Violation> {
    use stem_core::Justification;
    Ok(match cmd {
        Command::AddVariable { name } => Output::Var(net.add_variable(name)),
        Command::Set { var, value, source } => {
            net.set(var, value, Justification::from(source))?;
            Output::Unit
        }
        Command::Unset { var } => {
            net.reset(var);
            Output::Unit
        }
        Command::Probe { var, value } => Output::Feasible(net.can_be_set_to(var, value)),
        // The clone here builds the reply's owned copy — O(1) for every
        // value shape but `List` (see the cheap-clone contract on `Value`).
        Command::Get { var } => Output::Value(net.value(var).clone()),
        Command::AddConstraint { spec, args } => {
            Output::Constraint(net.add_constraint_rc(spec.build(), args)?)
        }
        Command::RemoveConstraint { constraint } => {
            net.remove_constraint(constraint);
            Output::Unit
        }
        Command::EnableConstraint {
            constraint,
            enabled,
        } => {
            net.set_constraint_enabled(constraint, enabled);
            Output::Unit
        }
        Command::SetKindEnabled { kind_name, enabled } => {
            Output::Count(net.set_kind_enabled(&kind_name, enabled))
        }
        Command::SetValueChangeLimit { limit } => {
            net.set_value_change_limit(limit);
            Output::Unit
        }
        Command::DumpValues => Output::Dump(
            net.variables()
                .map(|v| {
                    (
                        net.var_name(v).to_string(),
                        net.value(v).clone(),
                        net.justification(v).clone(),
                    )
                })
                .collect(),
        ),
        Command::CheckAll => Output::Violations(net.check_all()),
    })
}
