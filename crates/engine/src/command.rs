//! The wire-level batch vocabulary: commands sent into a session, outputs
//! and errors coming back.
//!
//! Everything here is `Send`: commands cross the thread boundary into the
//! worker that owns the session's [`Network`]. Constraint behaviour is
//! described by a [`ConstraintSpec`] (a `Send` description) and only
//! materialised into an `Rc<dyn ConstraintKind>` inside the owning worker,
//! because networks — and the kinds they share — are deliberately
//! single-threaded.

use std::fmt;
use std::rc::Rc;

use stem_core::kinds::{
    AllDiff, DomAdd, DomLe, DomReifLe, DomainConstraint, Equality, Functional, FunctionalOp,
    PredOp, Predicate,
};
use stem_core::{ConstraintId, ConstraintKind, Justification, Value, VarId, View, Violation};

/// Factory producing a constraint kind inside the worker thread that owns
/// the target network. The closure must be `Send`; the kind it builds need
/// not be.
pub type KindFactory = Box<dyn Fn() -> Rc<dyn ConstraintKind> + Send>;

/// A `Send` description of a constraint to install, materialised
/// worker-side. The closed variants cover the built-in kinds; arbitrary
/// kinds travel as a [`KindFactory`].
pub enum ConstraintSpec {
    /// All arguments equal ([`Equality`]).
    Equality,
    /// Last argument = sum of the others ([`Functional`] `Sum`).
    Sum,
    /// Last argument = max of the others.
    Max,
    /// Last argument = min of the others.
    Min,
    /// Last argument = product of the others.
    Product,
    /// Last argument = `gain * first + offset`.
    Scale {
        /// Multiplier.
        gain: f64,
        /// Addend.
        offset: f64,
    },
    /// Check-only predicate: every argument ≤ the bound.
    LeConst(Value),
    /// Check-only predicate: every argument ≥ the bound.
    GeConst(Value),
    /// Check-only predicate: every argument = the constant.
    EqConst(Value),
    /// Check-only predicate: `args[0] ≤ args[1]`.
    Le,
    /// Check-only predicate: `args[0] < args[1]`.
    Lt,
    /// Bounds-consistent domain relation `v0(x) + v1(y) = v2(z)` over
    /// affine views `(a, b) ↦ a·x + b` ([`DomAdd`]); `out == None`
    /// propagates all three ways, `Some(i)` only narrows argument `i`.
    DomAdd {
        /// Per-argument affine views `(a, b)`; `a == 0` is sanitised to 1.
        views: [(i64, i64); 3],
        /// Directional output argument, when restricted.
        out: Option<u8>,
    },
    /// Bounds-consistent domain relation `v0(x) ≤ v1(y) + c` ([`DomLe`]).
    DomLe {
        /// The offset `c`.
        c: i64,
        /// Per-argument affine views `(a, b)`; `a == 0` is sanitised to 1.
        views: [(i64, i64); 2],
        /// Directional output argument, when restricted.
        out: Option<u8>,
    },
    /// All arguments pairwise distinct ([`AllDiff`], bounds reasoning).
    DomAllDiff,
    /// Reified inequality `args[0] ⇔ (v0(args[1]) ≤ v1(args[2]) + c)`
    /// ([`DomReifLe`]).
    DomReifLe {
        /// The offset `c`.
        c: i64,
        /// Affine views over `args[1]`/`args[2]`.
        views: [(i64, i64); 2],
    },
    /// Any other kind, built worker-side by the factory.
    Custom(KindFactory),
}

/// Converts wire-level view pairs into [`View`]s, sanitising the (never
/// legitimately produced, but representable in corrupt or hostile bytes)
/// zero coefficient to the identity scale instead of panicking worker-side.
fn views<const N: usize>(pairs: &[(i64, i64); N]) -> [View; N] {
    pairs.map(|(a, b)| View::new(if a == 0 { 1 } else { a }, b))
}

impl ConstraintSpec {
    /// Materialises the kind. Runs in the worker that owns the session.
    pub(crate) fn build(&self) -> Rc<dyn ConstraintKind> {
        match self {
            ConstraintSpec::Equality => Rc::new(Equality::new()),
            ConstraintSpec::Sum => Rc::new(Functional::new(FunctionalOp::Sum)),
            ConstraintSpec::Max => Rc::new(Functional::new(FunctionalOp::Max)),
            ConstraintSpec::Min => Rc::new(Functional::new(FunctionalOp::Min)),
            ConstraintSpec::Product => Rc::new(Functional::new(FunctionalOp::Product)),
            ConstraintSpec::Scale { gain, offset } => {
                Rc::new(Functional::new(FunctionalOp::Scale {
                    gain: *gain,
                    offset: *offset,
                }))
            }
            ConstraintSpec::LeConst(v) => Rc::new(Predicate::new(PredOp::LeConst(v.clone()))),
            ConstraintSpec::GeConst(v) => Rc::new(Predicate::new(PredOp::GeConst(v.clone()))),
            ConstraintSpec::EqConst(v) => Rc::new(Predicate::new(PredOp::EqConst(v.clone()))),
            ConstraintSpec::Le => Rc::new(Predicate::new(PredOp::Le)),
            ConstraintSpec::Lt => Rc::new(Predicate::new(PredOp::Lt)),
            ConstraintSpec::DomAdd { views: v, out } => Rc::new(DomainConstraint::new(match out {
                Some(o) => DomAdd::with_views(views(v), usize::from(*o)),
                None => DomAdd::all_views(views(v)),
            })),
            ConstraintSpec::DomLe { c, views: v, out } => Rc::new(DomainConstraint::new(
                DomLe::with_views(*c, views(v), out.map(usize::from)),
            )),
            ConstraintSpec::DomAllDiff => Rc::new(DomainConstraint::new(AllDiff::new())),
            ConstraintSpec::DomReifLe { c, views: v } => {
                Rc::new(DomainConstraint::new(DomReifLe::with_views(*c, views(v))))
            }
            ConstraintSpec::Custom(f) => f(),
        }
    }
}

impl fmt::Debug for ConstraintSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConstraintSpec::Equality => write!(f, "Equality"),
            ConstraintSpec::Sum => write!(f, "Sum"),
            ConstraintSpec::Max => write!(f, "Max"),
            ConstraintSpec::Min => write!(f, "Min"),
            ConstraintSpec::Product => write!(f, "Product"),
            ConstraintSpec::Scale { gain, offset } => write!(f, "Scale({gain}, {offset})"),
            ConstraintSpec::LeConst(v) => write!(f, "LeConst({v})"),
            ConstraintSpec::GeConst(v) => write!(f, "GeConst({v})"),
            ConstraintSpec::EqConst(v) => write!(f, "EqConst({v})"),
            ConstraintSpec::Le => write!(f, "Le"),
            ConstraintSpec::Lt => write!(f, "Lt"),
            ConstraintSpec::DomAdd { views, out } => write!(f, "DomAdd({views:?}, {out:?})"),
            ConstraintSpec::DomLe { c, views, out } => {
                write!(f, "DomLe({c}, {views:?}, {out:?})")
            }
            ConstraintSpec::DomAllDiff => write!(f, "DomAllDiff"),
            ConstraintSpec::DomReifLe { c, views } => write!(f, "DomReifLe({c}, {views:?})"),
            ConstraintSpec::Custom(_) => write!(f, "Custom(..)"),
        }
    }
}

/// External provenance of a batched assignment — the subset of
/// [`Justification`] clients may claim. `Propagated`/`Tentative` records
/// are reserved to the propagation engine itself (a forged record would
/// corrupt dependency analysis), so they are unrepresentable here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Source {
    /// A direct designer edit (`#USER`).
    #[default]
    User,
    /// A tool/application computation (`#APPLICATION`).
    Application,
    /// Consistency-maintenance refresh (`#UPDATE`).
    Update,
    /// A class-definition default.
    DefaultValue,
}

impl From<Source> for Justification {
    fn from(s: Source) -> Justification {
        match s {
            Source::User => Justification::User,
            Source::Application => Justification::Application,
            Source::Update => Justification::Update,
            Source::DefaultValue => Justification::DefaultValue,
        }
    }
}

/// One operation inside a transactional batch.
///
/// Commands referring to variables or constraints may also reference ids
/// created *earlier in the same batch*: ids are allocated sequentially, so
/// a client that knows the session's current `n_variables` can predict
/// them and build create-and-initialise batches that commit atomically.
#[derive(Debug)]
pub enum Command {
    /// Adds a plain variable; replies [`Output::Var`].
    AddVariable {
        /// Display name.
        name: String,
    },
    /// Assigns a value with full propagation; replies [`Output::Unit`].
    Set {
        /// Target variable.
        var: VarId,
        /// New value.
        value: Value,
        /// Claimed provenance.
        source: Source,
    },
    /// Erases a variable to `Nil`/unset without propagation; replies
    /// [`Output::Unit`].
    Unset {
        /// Target variable.
        var: VarId,
    },
    /// Tentative validity probe (`canBeSetTo:`); never mutates; replies
    /// [`Output::Feasible`].
    Probe {
        /// Target variable.
        var: VarId,
        /// Probed value.
        value: Value,
    },
    /// Reads a value; replies [`Output::Value`].
    Get {
        /// Target variable.
        var: VarId,
    },
    /// Installs a constraint over `args` (re-initialising propagation);
    /// replies [`Output::Constraint`].
    AddConstraint {
        /// What the constraint does.
        spec: ConstraintSpec,
        /// Its argument variables.
        args: Vec<VarId>,
    },
    /// Removes a constraint, erasing values it justified; replies
    /// [`Output::Unit`].
    RemoveConstraint {
        /// Target constraint.
        constraint: ConstraintId,
    },
    /// Enables or disables one constraint; replies [`Output::Unit`].
    EnableConstraint {
        /// Target constraint.
        constraint: ConstraintId,
        /// New enabled state.
        enabled: bool,
    },
    /// Enables/disables every constraint of a kind; replies
    /// [`Output::Count`] of toggles.
    SetKindEnabled {
        /// Kind label, e.g. `"equality"`.
        kind_name: String,
        /// New enabled state.
        enabled: bool,
    },
    /// Relaxes/tightens the per-cycle value-change rule (≥ 1); replies
    /// [`Output::Unit`].
    SetValueChangeLimit {
        /// New limit.
        limit: u32,
    },
    /// Dumps `(name, value, justification)` for every variable; replies
    /// [`Output::Dump`]. Allowed on quarantined sessions.
    DumpValues,
    /// Sweeps all constraints for violations; replies
    /// [`Output::Violations`]. Allowed on quarantined sessions.
    CheckAll,
}

impl Command {
    /// Whether the command can change session state at all.
    pub fn is_mutating(&self) -> bool {
        !matches!(
            self,
            Command::Get { .. } | Command::Probe { .. } | Command::DumpValues | Command::CheckAll
        )
    }

    /// Whether the command edits network *structure* (not just values).
    /// Structure cannot be rolled back by a value snapshot; under the
    /// legacy snapshot rollback strategy such batches run on a clone of
    /// the network that is swapped in on success.
    pub fn is_structural(&self) -> bool {
        matches!(
            self,
            Command::AddVariable { .. }
                | Command::AddConstraint { .. }
                | Command::RemoveConstraint { .. }
                | Command::EnableConstraint { .. }
                | Command::SetKindEnabled { .. }
                | Command::SetValueChangeLimit { .. }
        )
    }

    /// Whether the command's effects can be undone by the network's change
    /// journal (`Network::begin_journal`). Every command journals — value
    /// writes, structural additions/toggles, and removals alike
    /// ([`Command::RemoveConstraint`]'s erasure cascade journals its value
    /// pre-images and the unwiring records a re-insertion entry) — so the
    /// default rollback strategy is O(touched) for every batch shape.
    pub fn is_journalable(&self) -> bool {
        true
    }
}

/// Per-command reply inside a successful [`BatchOutcome`].
#[derive(Debug, Clone, PartialEq)]
pub enum Output {
    /// Command completed with nothing to report.
    Unit,
    /// Id of a variable created by [`Command::AddVariable`].
    Var(VarId),
    /// Id of a constraint created by [`Command::AddConstraint`].
    Constraint(ConstraintId),
    /// Value read by [`Command::Get`].
    Value(Value),
    /// Probe verdict from [`Command::Probe`].
    Feasible(bool),
    /// Count reported by [`Command::SetKindEnabled`].
    Count(usize),
    /// Full value dump from [`Command::DumpValues`].
    Dump(Vec<(String, Value, Justification)>),
    /// Violation sweep from [`Command::CheckAll`].
    Violations(Vec<Violation>),
}

/// Reply to a committed batch.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchOutcome {
    /// One output per command, in order.
    pub outputs: Vec<Output>,
    /// Propagation waves (cycles) the batch ran.
    pub waves: u64,
    /// Variable assignments the batch performed.
    pub assignments: u64,
}

/// Why a batch did not commit. Every error except
/// [`BatchError::Backpressure`] and [`BatchError::Shutdown`] guarantees the
/// session is exactly as it was before the batch.
#[derive(Debug)]
pub enum BatchError {
    /// A command raised a constraint violation (including
    /// `BudgetExceeded` for step-budget aborts); the whole batch rolled
    /// back.
    Violation {
        /// Index of the failing command.
        index: usize,
        /// The violation.
        violation: Violation,
    },
    /// A command was rejected before execution (bad id, zero limit, …);
    /// nothing was applied.
    InvalidCommand {
        /// Index of the offending command.
        index: usize,
        /// Human-readable reason.
        reason: String,
    },
    /// A command panicked; the batch rolled back and the session is now
    /// quarantined ([`crate::Engine::lift_quarantine`] re-admits it).
    Panicked {
        /// Index of the panicking command.
        index: usize,
        /// Panic payload rendered to text.
        message: String,
    },
    /// The batch applied cleanly but its write-ahead log record could not
    /// be written (disk full, I/O error); the whole batch rolled back —
    /// an error here means "not committed, not durable", never "committed
    /// but unlogged".
    Persist {
        /// The underlying I/O error, rendered to text.
        message: String,
    },
    /// The session is quarantined after a panic; mutating batches are
    /// refused until the quarantine is lifted.
    Quarantined,
    /// The worker's queue is full (returned by
    /// [`crate::Engine::try_submit`] only — `submit` blocks instead).
    Backpressure,
    /// The engine is shutting down; the batch was not applied.
    Shutdown,
    /// The engine is a read-only replica ([`crate::Engine::replica`]):
    /// mutating batches are refused until [`crate::Engine::promote`]
    /// makes it a leader. Read-only batches are served normally.
    ReadOnlyReplica,
}

impl fmt::Display for BatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BatchError::Violation { index, violation } => {
                write!(f, "batch rolled back at command {index}: {violation}")
            }
            BatchError::InvalidCommand { index, reason } => {
                write!(f, "invalid command {index}: {reason}")
            }
            BatchError::Panicked { index, message } => {
                write!(
                    f,
                    "command {index} panicked ({message}); session quarantined"
                )
            }
            BatchError::Persist { message } => {
                write!(f, "batch rolled back: WAL append failed ({message})")
            }
            BatchError::Quarantined => write!(f, "session is quarantined"),
            BatchError::Backpressure => write!(f, "worker queue is full"),
            BatchError::Shutdown => write!(f, "engine is shutting down"),
            BatchError::ReadOnlyReplica => {
                write!(f, "engine is a read-only replica; mutating batch refused")
            }
        }
    }
}

impl std::error::Error for BatchError {}
