//! Kill–recover differential: for every possible crash point (disk byte
//! budget), recovery must rebuild exactly a whole-batch prefix of the
//! acknowledged history — never a half-applied batch, never a batch the
//! engine reported as failed and rolled back.
//!
//! Two parts:
//! - a deterministic sweep over *every* byte budget of a scripted
//!   workload, and
//! - a seeded randomized differential over generated workloads and
//!   random crash points.
//!
//! The acceptance predicate: the recovered engine equals the in-memory
//! reference after `k` acknowledged batches, where `k = acked` or
//! `k = acked + 1`. The `+1` case covers exactly one shape: the final
//! batch's WAL record landed fully on disk but the crash hit before the
//! sync/ack, so the engine reported failure yet recovery legitimately
//! finds the whole record. What can never happen is a *partial* batch.

use std::fs;
use std::path::PathBuf;

use stem_core::{Justification, Value, VarId};
use stem_engine::{
    BatchError, Command, ConstraintSpec, Durability, DurabilityOptions, Engine, EngineConfig,
    Output, SessionId, Source,
};
use stem_persist::{failing_factory, ByteBudget};

const SESSIONS: u64 = 2;

fn temp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("stem-crash-matrix-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&d);
    d
}

fn config() -> EngineConfig {
    EngineConfig {
        workers: 2, // sessions 0 and 1 land on different workers
        ..EngineConfig::default()
    }
}

fn opts() -> DurabilityOptions {
    DurabilityOptions {
        mode: Durability::CommitSync,
        segment_bytes: 512, // force rotation mid-workload
        checkpoint_bytes: 0,
        ..DurabilityOptions::default()
    }
}

/// Commands aren't `Clone` (custom kinds carry closures), so workloads
/// are regenerated from their description on every use.
type Workload = Vec<(u64, Vec<Command>)>;

fn scripted_workload() -> Workload {
    let v = VarId::from_index;
    vec![
        (
            0,
            vec![
                Command::AddVariable { name: "a".into() },
                Command::AddVariable { name: "b".into() },
                Command::AddVariable { name: "c".into() },
            ],
        ),
        (
            1,
            vec![
                Command::AddVariable { name: "x".into() },
                Command::AddVariable { name: "y".into() },
            ],
        ),
        (
            0,
            vec![Command::AddConstraint {
                spec: ConstraintSpec::Sum,
                args: vec![v(0), v(1), v(2)],
            }],
        ),
        (
            1,
            vec![Command::AddConstraint {
                spec: ConstraintSpec::LeConst(Value::Int(50)),
                args: vec![v(0)],
            }],
        ),
        (
            0,
            vec![
                Command::Set {
                    var: v(0),
                    value: Value::Int(2),
                    source: Source::User,
                },
                Command::Set {
                    var: v(1),
                    value: Value::Int(3),
                    source: Source::User,
                },
            ],
        ),
        // A violating batch: rejected, rolled back, never logged.
        (
            1,
            vec![Command::Set {
                var: v(0),
                value: Value::Int(99),
                source: Source::User,
            }],
        ),
        (
            1,
            vec![Command::Set {
                var: v(0),
                value: Value::Int(7),
                source: Source::User,
            }],
        ),
        (
            0,
            vec![Command::RemoveConstraint {
                constraint: stem_core::ConstraintId::from_index(0),
            }],
        ),
        (
            0,
            vec![Command::AddConstraint {
                spec: ConstraintSpec::Equality,
                args: vec![v(1), v(2)],
            }],
        ),
        (
            1,
            vec![
                Command::Unset { var: v(1) },
                Command::Set {
                    var: v(1),
                    value: Value::Int(8),
                    source: Source::Application,
                },
            ],
        ),
        (
            0,
            vec![Command::Set {
                var: v(0),
                value: Value::Int(40),
                source: Source::User,
            }],
        ),
    ]
}

/// Observable state of one session: its dump plus its violation set.
type Observed = (
    Vec<(String, Value, Justification)>,
    Vec<stem_core::Violation>,
);

fn observe(engine: &Engine, s: SessionId) -> Observed {
    let mut out = engine
        .apply(s, vec![Command::DumpValues, Command::CheckAll])
        .expect("read-only batch")
        .outputs;
    let checks = match out.pop() {
        Some(Output::Violations(v)) => v,
        other => panic!("expected violations, got {other:?}"),
    };
    let dump = match out.pop() {
        Some(Output::Dump(d)) => d,
        other => panic!("expected dump, got {other:?}"),
    };
    (dump, checks)
}

fn observe_all(engine: &Engine) -> Vec<Observed> {
    (0..SESSIONS)
        .map(|s| observe(engine, SessionId(s)))
        .collect()
}

/// Replays the first `k` *acknowledgeable* batches of `workload` on a
/// volatile engine and returns each session's observable state. Batches
/// the durable run would have rejected (violations) are replayed and
/// rejected here too — they don't count toward `k` because they were
/// never acknowledged as committed.
fn reference_after(workload: Workload, k: usize) -> Option<Vec<Observed>> {
    let engine = Engine::with_config(config());
    for _ in 0..SESSIONS {
        engine.create_session();
    }
    let mut committed = 0;
    for (s, batch) in workload {
        if committed == k {
            break;
        }
        if engine.apply(SessionId(s), batch).is_ok() {
            committed += 1;
        }
    }
    // Fewer committable batches than requested: no such prefix exists.
    (committed == k).then(|| observe_all(&engine))
}

/// Outcome of driving a workload against a durable engine that may run
/// out of disk: how many batches were acknowledged, and whether a batch
/// failed with a persistence error (making the `acked + 1` recovery
/// legitimate).
struct DriveResult {
    acked: usize,
    persist_failed: bool,
}

fn drive(engine: &Engine, workload: Workload) -> DriveResult {
    let mut acked = 0;
    for (s, batch) in workload {
        match engine.apply(SessionId(s), batch) {
            Ok(_) => acked += 1,
            Err(BatchError::Persist { .. }) => {
                return DriveResult {
                    acked,
                    persist_failed: true,
                }
            }
            // Violations and invalid commands are deterministic functions
            // of the replayed prefix — the reference run rejects the same
            // batches — so they simply don't count as acknowledged.
            Err(_) => continue,
        }
    }
    DriveResult {
        acked,
        persist_failed: false,
    }
}

/// The core check: crash a workload at `budget` disk bytes, recover,
/// and demand the recovered state equal a whole-batch prefix consistent
/// with what was acknowledged.
fn check_crash_point(tag: &str, budget_bytes: usize, make_workload: impl Fn() -> Workload) {
    let dir = temp_dir(tag);
    let budget = ByteBudget::new(budget_bytes as u64);
    let failing = DurabilityOptions {
        file_factory: Some(failing_factory(budget)),
        ..opts()
    };
    let result = match Engine::open_with_config(&dir, config(), failing) {
        Ok(engine) => {
            for _ in 0..SESSIONS {
                engine.create_session();
            }
            let r = drive(&engine, make_workload());
            engine.shutdown();
            r
        }
        // Budget too small even for the first segment header: nothing
        // was ever acknowledged.
        Err(_) => DriveResult {
            acked: 0,
            persist_failed: false,
        },
    };

    // Recover from whatever prefix actually reached "disk". Observing a
    // session that was never recovered yields an empty dump, which is
    // exactly what the reference produces for a session with no batches.
    let engine = Engine::open_with_config(&dir, config(), opts()).unwrap();
    let recovered = observe_all(&engine);

    // Continuation leg: commit new acknowledged data on top of the
    // recovered state (it lands in a segment after any repaired tear),
    // then reopen once more. The post-recovery commits must survive —
    // the crash's damage is never allowed to shadow them.
    for s in 0..SESSIONS {
        engine
            .apply(
                SessionId(s),
                vec![Command::AddVariable {
                    name: format!("post{s}"),
                }],
            )
            .expect("clean-tear recovery leaves sessions writable");
    }
    let after_append = observe_all(&engine);
    engine.shutdown();
    let engine = Engine::open_with_config(&dir, config(), opts()).unwrap();
    assert_eq!(
        observe_all(&engine),
        after_append,
        "{tag}: budget {budget_bytes}: records acked after recovery were \
         dropped by the next reopen"
    );
    engine.shutdown();

    // The differential below compares the *recovered* observation (taken
    // before the continuation commits) against the reference prefixes.

    let expect_acked = reference_after(make_workload(), result.acked)
        .expect("the acked count cannot exceed the committable batches");
    let matches_acked = recovered == expect_acked;
    let matches_next = result.persist_failed
        && reference_after(make_workload(), result.acked + 1).is_some_and(|r| recovered == r);
    assert!(
        matches_acked || matches_next,
        "{tag}: budget {budget_bytes}: recovered state is neither \
         reference({}) nor reference({}) (persist_failed={})\n\
         recovered: {recovered:?}\nexpected:  {expect_acked:?}",
        result.acked,
        result.acked + 1,
        result.persist_failed,
    );
    let _ = fs::remove_dir_all(&dir);
}

/// Disk footprint of the full scripted workload, measured on real files.
fn full_run_bytes(make_workload: impl Fn() -> Workload) -> usize {
    let dir = temp_dir("measure");
    let engine = Engine::open_with_config(&dir, config(), opts()).unwrap();
    for _ in 0..SESSIONS {
        engine.create_session();
    }
    let r = drive(&engine, make_workload());
    assert!(!r.persist_failed);
    engine.shutdown();
    let total: u64 = fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().metadata().unwrap().len())
        .sum();
    let _ = fs::remove_dir_all(&dir);
    total as usize
}

#[test]
fn every_crash_point_recovers_a_whole_batch_prefix() {
    let total = full_run_bytes(scripted_workload);
    assert!(total > 0);
    // Every byte budget from "disk full immediately" to "never crashed".
    for budget in 0..=total {
        check_crash_point("sweep", budget, scripted_workload);
    }
}

/// A domain session: interval/finite-set values narrowed by domain
/// propagators, a wipeout batch that must never be logged, and a
/// mid-run structural edit — all riding the same WAL machinery.
fn domain_workload() -> Workload {
    use stem_core::domain::{FinSet, Interval};
    let v = VarId::from_index;
    vec![
        (
            0,
            vec![
                Command::AddVariable { name: "x".into() },
                Command::AddVariable { name: "y".into() },
                Command::AddVariable { name: "z".into() },
            ],
        ),
        (
            1,
            vec![
                Command::AddVariable { name: "p".into() },
                Command::AddVariable { name: "q".into() },
            ],
        ),
        (
            0,
            vec![
                Command::Set {
                    var: v(0),
                    value: Value::Interval(Interval::new(0, 40)),
                    source: Source::User,
                },
                Command::Set {
                    var: v(1),
                    value: Value::Interval(Interval::new(5, 25)),
                    source: Source::User,
                },
                Command::Set {
                    var: v(2),
                    value: Value::Interval(Interval::new(0, 100)),
                    source: Source::User,
                },
            ],
        ),
        (
            1,
            vec![
                Command::Set {
                    var: v(0),
                    value: Value::FinSet(FinSet::new(0b1111_0110)),
                    source: Source::User,
                },
                Command::Set {
                    var: v(1),
                    value: Value::FinSet(FinSet::new(0b0011_1100)),
                    source: Source::Application,
                },
            ],
        ),
        // x + y = z narrows z to [5, 65] on installation.
        (
            0,
            vec![Command::AddConstraint {
                spec: ConstraintSpec::DomAdd {
                    views: [(1, 0), (1, 0), (1, 0)],
                    out: None,
                },
                args: vec![v(0), v(1), v(2)],
            }],
        ),
        (
            1,
            vec![Command::AddConstraint {
                spec: ConstraintSpec::DomAllDiff,
                args: vec![v(0), v(1)],
            }],
        ),
        // Tighten x: propagates through the adder into z.
        (
            0,
            vec![Command::Set {
                var: v(0),
                value: Value::Interval(Interval::new(10, 20)),
                source: Source::User,
            }],
        ),
        // A wipeout batch: z cannot hold [0, 10] under x + y = z with
        // x ∈ [10, 20], y ∈ [5, 25]. Rejected, rolled back, never logged.
        (
            0,
            vec![Command::Set {
                var: v(2),
                value: Value::Interval(Interval::new(0, 10)),
                source: Source::User,
            }],
        ),
        (
            1,
            vec![Command::AddConstraint {
                spec: ConstraintSpec::DomLe {
                    c: 3,
                    views: [(1, 0), (1, 0)],
                    out: None,
                },
                args: vec![v(0), v(1)],
            }],
        ),
        (
            0,
            vec![Command::RemoveConstraint {
                constraint: stem_core::ConstraintId::from_index(0),
            }],
        ),
        (
            0,
            vec![Command::Set {
                var: v(2),
                value: Value::Interval(Interval::new(30, 45)),
                source: Source::Application,
            }],
        ),
    ]
}

#[test]
fn every_crash_point_recovers_a_domain_session_prefix() {
    let total = full_run_bytes(domain_workload);
    assert!(total > 0);
    for budget in 0..=total {
        check_crash_point("domain", budget, domain_workload);
    }
}

// ---------------------------------------------------------------------
// Randomized differential
// ---------------------------------------------------------------------

/// SplitMix64 — deterministic, dependency-free.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Generates a random but *valid* workload (ids always refer to
/// variables/constraints the session has created) for a given seed.
/// Regenerating with the same seed yields the same workload, which is
/// how the reference run replays it without `Command: Clone`.
fn random_workload(seed: u64) -> Workload {
    let mut rng = Rng(seed);
    let n_batches = 6 + rng.below(10);
    // Per-session bookkeeping so generated commands are always valid.
    let mut vars = vec![0usize; SESSIONS as usize];
    let mut cons: Vec<Vec<bool>> = vec![Vec::new(); SESSIONS as usize];
    let mut out = Vec::new();
    for _ in 0..n_batches {
        let s = rng.below(SESSIONS as usize);
        let n_cmds = 1 + rng.below(3);
        let mut batch = Vec::new();
        for _ in 0..n_cmds {
            let roll = rng.below(100);
            if roll < 30 || vars[s] == 0 {
                batch.push(Command::AddVariable {
                    name: format!("v{}", vars[s]),
                });
                vars[s] += 1;
            } else if roll < 70 {
                batch.push(Command::Set {
                    var: VarId::from_index(rng.below(vars[s])),
                    value: Value::Int(rng.below(1000) as i64),
                    source: Source::User,
                });
            } else if roll < 80 && vars[s] >= 3 {
                let a = rng.below(vars[s]);
                batch.push(Command::AddConstraint {
                    spec: ConstraintSpec::Sum,
                    args: vec![
                        VarId::from_index(a),
                        VarId::from_index((a + 1) % vars[s]),
                        VarId::from_index((a + 2) % vars[s]),
                    ],
                });
                cons[s].push(true);
            } else if roll < 90 {
                batch.push(Command::Unset {
                    var: VarId::from_index(rng.below(vars[s])),
                });
            } else if let Some(c) = cons[s].iter().position(|&live| live) {
                cons[s][c] = false;
                batch.push(Command::RemoveConstraint {
                    constraint: stem_core::ConstraintId::from_index(c),
                });
            } else {
                batch.push(Command::Set {
                    var: VarId::from_index(rng.below(vars[s])),
                    value: Value::Int(rng.below(1000) as i64),
                    source: Source::Application,
                });
            }
        }
        out.push((s as u64, batch));
    }
    out
}

#[test]
fn randomized_kill_recover_differential() {
    for seed in 0..25u64 {
        let make = || random_workload(seed);
        let total = full_run_bytes(make);
        // A few deterministic-per-seed crash points across the range,
        // biased toward the busy region past the segment header.
        let mut rng = Rng(seed.wrapping_mul(0x5851F42D4C957F2D) + 1);
        for _ in 0..6 {
            let budget = rng.below(total + 50);
            check_crash_point(&format!("rand{seed}"), budget, make);
        }
    }
}
