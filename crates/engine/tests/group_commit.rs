//! Group commit: commit-sync durability guarantees with shared fsyncs.
//!
//! Under [`Durability::GroupCommit`] every acknowledged batch is durable
//! before its reply — same contract as `CommitSync` — but concurrent
//! sessions' appends are flushed by one coordinator fsync instead of one
//! fsync each. These tests pin the contract (reopen equality, rollback on
//! append failure) and the amortisation (flushes ≤ appends, and fewer
//! when sessions commit concurrently).

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use stem_core::{Value, VarId};
use stem_engine::{
    BatchError, Command, Durability, DurabilityOptions, Engine, EngineConfig, Output, SessionId,
    Source,
};
use stem_persist::{failing_factory, ByteBudget};

fn temp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("stem-group-commit-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&d);
    d
}

fn opts() -> DurabilityOptions {
    DurabilityOptions {
        mode: Durability::GroupCommit,
        checkpoint_bytes: 0,
        ..DurabilityOptions::default()
    }
}

fn set(ix: usize, v: i64) -> Command {
    Command::Set {
        var: VarId::from_index(ix),
        value: Value::Int(v),
        source: Source::User,
    }
}

fn dump(engine: &Engine, s: SessionId) -> Vec<(String, Value, stem_core::Justification)> {
    match engine
        .apply(s, vec![Command::DumpValues])
        .expect("dump")
        .outputs
        .remove(0)
    {
        Output::Dump(d) => d,
        other => panic!("expected dump, got {other:?}"),
    }
}

#[test]
fn concurrent_sessions_share_fsyncs_and_survive_reopen() {
    let dir = temp_dir("concurrent");
    let n_threads = 4usize;
    let batches_per = 25u64;
    let expected: Vec<_>;
    {
        let engine = Arc::new(
            Engine::open_with_config(
                &dir,
                EngineConfig {
                    workers: 4,
                    ..EngineConfig::default()
                },
                opts(),
            )
            .unwrap(),
        );
        let sessions: Vec<SessionId> = (0..n_threads).map(|_| engine.create_session()).collect();
        std::thread::scope(|scope| {
            for &s in &sessions {
                let engine = Arc::clone(&engine);
                scope.spawn(move || {
                    engine
                        .apply(s, vec![Command::AddVariable { name: "v".into() }])
                        .unwrap();
                    for i in 0..batches_per {
                        engine.apply(s, vec![set(0, i as i64)]).unwrap();
                    }
                });
            }
        });
        let stats = engine.stats();
        let appends = n_threads as u64 * (batches_per + 1);
        assert_eq!(stats.wal_appends, appends);
        assert!(stats.wal_group_syncs > 0, "coordinator never flushed");
        assert!(
            stats.wal_group_syncs <= stats.wal_appends,
            "more flushes ({}) than appends ({})",
            stats.wal_group_syncs,
            stats.wal_appends
        );
        expected = sessions.iter().map(|&s| dump(&engine, s)).collect();
        // Drop (not clean shutdown): acknowledged work must already be
        // on disk.
    }
    // Every acknowledged batch was durable at ack time, so reopening
    // under any mode rebuilds exactly what the writers saw.
    let engine = Engine::open(&dir).unwrap();
    for (ix, want) in expected.iter().enumerate() {
        assert_eq!(&dump(&engine, SessionId(ix as u64)), want);
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn failed_group_flush_rolls_the_batch_back() {
    let dir = temp_dir("flushfail");
    // Budget covers the store magic and the first batch; the second
    // batch's group flush hits the wall and must report Persist — with
    // the in-memory state rolled back, exactly like inline commit-sync.
    let failing = DurabilityOptions {
        file_factory: Some(failing_factory(ByteBudget::new(96))),
        ..opts()
    };
    let engine = Engine::open_with_config(
        &dir,
        EngineConfig {
            workers: 1,
            ..EngineConfig::default()
        },
        failing,
    )
    .unwrap();
    let s = engine.create_session();
    engine
        .apply(
            s,
            vec![Command::AddVariable { name: "v".into() }, set(0, 1)],
        )
        .unwrap();
    let err = engine.apply(s, vec![set(0, 2), set(0, 3)]).unwrap_err();
    assert!(matches!(err, BatchError::Persist { .. }), "{err}");
    assert_eq!(
        dump(&engine, s)[0].1,
        Value::Int(1),
        "batch not rolled back"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn group_commit_reports_its_label_and_mode() {
    let dir = temp_dir("label");
    let engine = Engine::open_with_config(&dir, EngineConfig::default(), opts()).unwrap();
    assert_eq!(engine.durability(), Some(Durability::GroupCommit));
    // Off/interval engines never tick the group-sync counter.
    engine.shutdown();
    let plain = Engine::open(&dir).unwrap();
    let s = SessionId(0);
    let _ = plain.apply(s, vec![Command::DumpValues]);
    assert_eq!(plain.stats().wal_group_syncs, 0);
    let _ = fs::remove_dir_all(&dir);
}
