//! Engine-level behaviour of parallel plan replay: the
//! `propagation_threads` knob, overlapped disjoint-root `Set` runs
//! inside one batch, partition invalidation by structural edits landing
//! between overlapped groups, and the reconciliation of the split
//! replay counters with the plan-cache counters.

use stem_core::{Value, VarId};
use stem_engine::{Command, ConstraintSpec, Engine, EngineConfig, Output, SessionId, Source};

fn var(ix: usize) -> VarId {
    VarId::from_index(ix)
}

fn set(ix: usize, v: i64) -> Command {
    Command::Set {
        var: var(ix),
        value: Value::Int(v),
        source: Source::User,
    }
}

fn engine_with_threads(threads: usize) -> Engine {
    Engine::with_config(EngineConfig {
        workers: 1,
        propagation_threads: threads,
        ..EngineConfig::default()
    })
}

/// Appends one fanout cluster (root, then `cones` × {head, `fan`
/// mirrors, sum-out}) to `cmds`, returning the root's variable index.
/// Clusters are variable-disjoint, so their plans overlap in a batch.
fn push_cluster(cmds: &mut Vec<Command>, next_ix: &mut usize, cones: usize, fan: usize) -> usize {
    let src = *next_ix;
    cmds.push(Command::AddVariable {
        name: format!("src{src}"),
    });
    *next_ix += 1;
    for _ in 0..cones {
        let head = *next_ix;
        cmds.push(Command::AddVariable {
            name: format!("h{head}"),
        });
        *next_ix += 1;
        cmds.push(Command::AddConstraint {
            spec: ConstraintSpec::Equality,
            args: vec![var(src), var(head)],
        });
        let mut args = Vec::with_capacity(fan + 1);
        for _ in 0..fan {
            let m = *next_ix;
            cmds.push(Command::AddVariable {
                name: format!("m{m}"),
            });
            *next_ix += 1;
            cmds.push(Command::AddConstraint {
                spec: ConstraintSpec::Equality,
                args: vec![var(head), var(m)],
            });
            args.push(var(m));
        }
        let out = *next_ix;
        cmds.push(Command::AddVariable {
            name: format!("o{out}"),
        });
        *next_ix += 1;
        args.push(var(out));
        cmds.push(Command::AddConstraint {
            spec: ConstraintSpec::Sum,
            args,
        });
    }
    src
}

fn dump(engine: &Engine, session: SessionId) -> Vec<(String, Value, stem_core::Justification)> {
    let out = engine
        .apply(session, vec![Command::DumpValues])
        .expect("dump batch");
    match out.outputs.into_iter().next() {
        Some(Output::Dump(d)) => d,
        other => panic!("expected dump, got {other:?}"),
    }
}

/// Three disjoint partition-sized clusters (8 cones × (1 + 31 + 1) = 264
/// executing steps each, over the session default 256-step floor), built
/// identically on a sequential and a thread-enabled engine.
fn twin_engines(threads: usize) -> ([Engine; 2], [SessionId; 2], [usize; 3]) {
    let engines = [engine_with_threads(1), engine_with_threads(threads)];
    let mut roots = [0usize; 3];
    let sessions = engines.each_ref().map(|e| {
        let s = e.create_session();
        let mut setup = Vec::new();
        let mut ix = 0;
        for root in &mut roots {
            *root = push_cluster(&mut setup, &mut ix, 8, 31);
        }
        e.apply(s, setup).expect("setup batch");
        s
    });
    (engines, sessions, roots)
}

#[test]
fn overlapped_batch_sets_match_sequential_engine() {
    let ([seq, par], [ss, sp], [a, b, c]) = twin_engines(8);
    type BatchFn = fn(usize, usize, usize) -> Vec<Command>;
    let batches: Vec<BatchFn> = vec![
        |a, b, c| vec![set(a, 5), set(b, 6), set(c, 7)], // cold: individual replays
        |a, _, c| vec![set(a, 8), set(c, 9)],            // warm: overlapped pair
        |a, b, _| vec![set(b, 1), set(b, 2), set(a, 3)], // duplicate root splits the run
    ];
    for batch in batches {
        let os = seq.apply(ss, batch(a, b, c)).expect("sequential batch");
        let op = par.apply(sp, batch(a, b, c)).expect("parallel batch");
        assert_eq!(os.outputs, op.outputs);
        assert_eq!(os.waves, op.waves);
        assert_eq!(os.assignments, op.assignments);
    }
    assert_eq!(dump(&seq, ss), dump(&par, sp));
    // Same session work, same core counters — only the parallel split
    // counters may differ (the sequential engine's stay zero).
    let stats_seq = seq.session_stats(ss);
    let stats_par = par.session_stats(sp);
    assert_eq!(stats_seq.waves, stats_par.waves);
    assert_eq!(stats_seq.assignments, stats_par.assignments);
    assert_eq!(stats_seq.plan_cache_hits, stats_par.plan_cache_hits);
    assert_eq!(stats_seq.plan_replays_parallel, 0);
    assert_eq!(stats_seq.parallel_fallbacks, 0);
    // Batches 2 and 3 each carried one overlapped pair plus the cold and
    // sequential-remainder replays, so at least two overlapped-group
    // replays committed in parallel.
    assert!(
        stats_par.plan_replays_parallel >= 2,
        "warm disjoint-root sets must overlap: {stats_par:?}"
    );
    assert_eq!(stats_par.parallel_fallbacks, 0);
}

#[test]
fn session_replay_counters_reconcile_with_cache_hits() {
    // Cluster sized over the 256-step partition floor: 8 cones × (1 + 31
    // + 1) = 264 executing steps.
    let mut cmds = Vec::new();
    let mut ix = 0;
    let big = push_cluster(&mut cmds, &mut ix, 8, 31);
    // And a two-variable chain that plans but never partitions.
    let small = ix;
    cmds.push(Command::AddVariable { name: "s0".into() });
    cmds.push(Command::AddVariable { name: "s1".into() });
    ix += 2;
    cmds.push(Command::AddConstraint {
        spec: ConstraintSpec::Equality,
        args: vec![var(small), var(small + 1)],
    });
    let _ = ix;
    let engine = engine_with_threads(8);
    let session = engine.create_session();
    engine.apply(session, cmds).expect("setup");
    // Warm both plans (first replay runs off the fresh compile).
    engine
        .apply(session, vec![set(big, 1), set(small, 1)])
        .expect("warm");
    let base = engine.session_stats(session);
    for round in 0..6i64 {
        engine
            .apply(session, vec![set(big, round + 2), set(small, round + 2)])
            .expect("round");
    }
    let stats = engine.session_stats(session);
    let hits = stats.plan_cache_hits - base.plan_cache_hits;
    let replays = stats.plan_replays_parallel - base.plan_replays_parallel;
    let fallbacks = stats.parallel_fallbacks - base.parallel_fallbacks;
    // Every cached replay on a thread-enabled session lands in exactly
    // one of the two split counters.
    assert_eq!(hits, 12);
    assert_eq!(replays + fallbacks, hits);
    assert_eq!(replays, 6, "big-cluster sets must take the parallel path");
    assert_eq!(fallbacks, 6, "small-chain sets must fall back");
    let cones = stats.cones_executed - base.cones_executed;
    assert_eq!(cones, 6 * 8);
    // The engine-wide rollup carries the same counters — including the
    // schedule-dependent steal count, which both tiers read from the
    // same committed replays and must therefore agree on exactly.
    let es = engine.stats();
    assert_eq!(es.plan_replays_parallel, stats.plan_replays_parallel);
    assert_eq!(es.plan_replays_wavefront, stats.plan_replays_wavefront);
    assert_eq!(es.cones_executed, stats.cones_executed);
    assert_eq!(es.cones_stolen, stats.cones_stolen);
    assert_eq!(es.parallel_fallbacks, stats.parallel_fallbacks);
}

#[test]
fn wavefront_counters_flow_through_engine_stats() {
    // One giant single-cone cluster: 1 + 300 + 1 = 302 executing steps
    // clears both the 256-step partition floor and the 128-step
    // per-task pool floor, so the session replays it as a pooled
    // wavefront (PR 7 could only fall back on this shape).
    let build = |threads: usize| {
        let mut cmds = Vec::new();
        let mut ix = 0;
        let giant = push_cluster(&mut cmds, &mut ix, 1, 300);
        let engine = engine_with_threads(threads);
        let session = engine.create_session();
        engine.apply(session, cmds).expect("setup");
        (engine, session, giant)
    };
    let (par, sp, giant) = build(4);
    let (seq, ss, _) = build(1);
    for round in 0..4i64 {
        let op = par.apply(sp, vec![set(giant, round + 1)]).expect("par");
        let os = seq.apply(ss, vec![set(giant, round + 1)]).expect("seq");
        assert_eq!(op.outputs, os.outputs);
        assert_eq!(op.assignments, os.assignments);
    }
    assert_eq!(dump(&par, sp), dump(&seq, ss));
    let stats = par.session_stats(sp);
    assert!(stats.plan_replays_wavefront > 0, "giant cone must wave");
    assert_eq!(stats.plan_replays_wavefront, stats.plan_replays_parallel);
    assert_eq!(stats.cones_executed, stats.plan_replays_parallel);
    assert_eq!(stats.parallel_fallbacks, 0);
    let es = par.stats();
    assert_eq!(es.plan_replays_wavefront, stats.plan_replays_wavefront);
    assert_eq!(es.cones_stolen, stats.cones_stolen);
    // The sequential twin kept every parallel counter at zero.
    let stats_seq = seq.session_stats(ss);
    assert_eq!(stats_seq.plan_replays_parallel, 0);
    assert_eq!(stats_seq.plan_replays_wavefront, 0);
    assert_eq!(stats_seq.cones_stolen, 0);
}

#[test]
fn structural_edit_between_overlapped_groups_invalidates_partitions() {
    // Two partition-sized clusters; sets on both roots overlap inside a
    // batch once their plans are warm.
    let build = |threads: usize| {
        let mut cmds = Vec::new();
        let mut ix = 0;
        let a = push_cluster(&mut cmds, &mut ix, 8, 31);
        let b = push_cluster(&mut cmds, &mut ix, 8, 31);
        let engine = engine_with_threads(threads);
        let session = engine.create_session();
        engine.apply(session, cmds).expect("setup");
        engine
            .apply(session, vec![set(a, 1), set(b, 1)])
            .expect("warm");
        (engine, session, a, b, ix)
    };
    let (par, sp, a, b, next) = build(8);
    let (seq, ss, _, _, _) = build(1);
    let base = par.session_stats(sp);
    // One batch: an overlapped group, then a structural edit rewiring
    // cluster A's root into a fresh equality, then more sets. The edit
    // bumps the structure generation, so the second group must not
    // replay the stale cone tables (whose write ranges no longer cover
    // the new constraint's target).
    let batch = || {
        vec![
            set(a, 10),
            set(b, 20),
            Command::AddVariable {
                name: "late".into(),
            },
            Command::AddConstraint {
                spec: ConstraintSpec::Equality,
                args: vec![var(a), var(next)],
            },
            set(a, 30),
            set(b, 40),
        ]
    };
    let op = par.apply(sp, batch()).expect("parallel batch");
    let os = seq.apply(ss, batch()).expect("sequential batch");
    assert_eq!(op.outputs, os.outputs);
    assert_eq!(dump(&par, sp), dump(&seq, ss));
    // The late variable received cluster A's post-edit value — the
    // stale partition (which could never write it) was not replayed.
    let late = dump(&par, sp)
        .into_iter()
        .find(|(name, _, _)| name == "late")
        .expect("late variable");
    assert_eq!(late.1, Value::Int(30));
    let stats = par.session_stats(sp);
    assert!(
        stats.plan_cache_invalidations > base.plan_cache_invalidations,
        "the structural edit must invalidate the cached plans"
    );
    // Post-edit replays recompiled and ran parallel again.
    assert!(stats.plan_replays_parallel > base.plan_replays_parallel);
}

#[test]
fn threads_knob_survives_durable_recovery() {
    let dir = tempdir();
    let config = EngineConfig {
        workers: 1,
        propagation_threads: 8,
        ..EngineConfig::default()
    };
    let mut cmds = Vec::new();
    let mut ix = 0;
    let big = push_cluster(&mut cmds, &mut ix, 8, 31);
    let before;
    {
        let engine = Engine::open_with_config(&dir, config, Default::default()).expect("open");
        let session = engine.create_session();
        engine.apply(session, cmds).expect("setup");
        engine
            .apply(session, vec![set(big, 1), set(big, 2)])
            .expect("sets");
        before = dump(&engine, session);
        let stats = engine.session_stats(session);
        assert!(stats.plan_replays_parallel > 0);
        engine.shutdown();
    }
    // Recovery replays the logged batches on a network stamped with the
    // same thread budget; state and parallel behaviour both survive.
    let engine = Engine::open_with_config(&dir, config, Default::default()).expect("reopen");
    let session = SessionId(0);
    assert_eq!(dump(&engine, session), before);
    engine
        .apply(session, vec![set(big, 3), set(big, 4)])
        .expect("post-recovery sets");
    let stats = engine.session_stats(session);
    assert!(
        stats.plan_replays_parallel > 0,
        "recovered sessions must keep the thread budget"
    );
    engine.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

fn tempdir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "stem-engine-parallel-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}
