//! Integration tests for the multi-session engine: transactional rollback,
//! panic quarantine, step budgets, backpressure and cross-worker
//! determinism.

use std::rc::Rc;
use std::thread;
use std::time::Duration;

use stem_core::prng::SplitMix64;
use stem_core::{ConstraintId, ConstraintKind, Network, Value, VarId, Violation, ViolationKind};
use stem_engine::{
    BatchError, Command, ConstraintSpec, Engine, EngineConfig, Output, SessionId, Source,
};

fn var(ix: usize) -> VarId {
    VarId::from_index(ix)
}

fn con(ix: usize) -> ConstraintId {
    ConstraintId::from_index(ix)
}

fn set(ix: usize, v: i64) -> Command {
    Command::Set {
        var: var(ix),
        value: Value::Int(v),
        source: Source::User,
    }
}

fn add(name: &str) -> Command {
    Command::AddVariable { name: name.into() }
}

fn dump(engine: &Engine, session: SessionId) -> Vec<(String, Value, stem_core::Justification)> {
    let out = engine
        .apply(session, vec![Command::DumpValues])
        .expect("dump batch");
    match out.outputs.into_iter().next() {
        Some(Output::Dump(d)) => d,
        other => panic!("expected dump, got {other:?}"),
    }
}

/// Create-and-initialise batch: three variables, an equality between the
/// first two, and a seed value — exercising intra-batch id prediction.
fn setup_session(engine: &Engine, session: SessionId, seed: i64) {
    let out = engine
        .apply(
            session,
            vec![
                add("a"),
                add("b"),
                add("c"),
                Command::AddConstraint {
                    spec: ConstraintSpec::Equality,
                    args: vec![var(0), var(1)],
                },
                set(0, seed),
            ],
        )
        .expect("setup batch");
    assert_eq!(out.outputs[0], Output::Var(var(0)));
    assert_eq!(out.outputs[3], Output::Constraint(con(0)));
}

#[test]
fn batch_commits_and_propagates() {
    let engine = Engine::new(2);
    let s = engine.create_session();
    setup_session(&engine, s, 7);
    let out = engine.apply(s, vec![Command::Get { var: var(1) }]).unwrap();
    // The equality propagated the seed from a to b.
    assert_eq!(out.outputs[0], Output::Value(Value::Int(7)));
    let stats = engine.session_stats(s);
    assert_eq!(stats.n_variables, 3);
    assert_eq!(stats.n_constraints, 1);
    assert!(!stats.quarantined);
}

#[test]
fn violating_value_batch_rolls_back_byte_identical() {
    let engine = Engine::new(1);
    let s = engine.create_session();
    setup_session(&engine, s, 5);
    let before = dump(&engine, s);
    // b is propagated=5; a is user=5. Setting b to 6 propagates 6 back to
    // a, whose user value is protected -> violation -> rollback.
    let err = engine.apply(s, vec![set(1, 6)]).unwrap_err();
    match err {
        BatchError::Violation { index, violation } => {
            assert_eq!(index, 0);
            assert_eq!(violation.kind, ViolationKind::OverwriteDenied);
        }
        other => panic!("expected violation, got {other}"),
    }
    assert_eq!(dump(&engine, s), before);
    let stats = engine.stats();
    assert_eq!(stats.violations, 1);
    assert_eq!(stats.rollbacks, 1);
}

#[test]
fn violating_structural_batch_is_discarded_whole() {
    let engine = Engine::new(1);
    let s = engine.create_session();
    // Two user values that cannot be equal.
    engine
        .apply(s, vec![add("x"), add("y"), set(0, 1), set(1, 2)])
        .unwrap();
    let before = dump(&engine, s);
    // The batch adds a variable AND an impossible equality: the violation
    // must discard the new variable too, not just the constraint.
    let err = engine
        .apply(
            s,
            vec![
                add("z"),
                Command::AddConstraint {
                    spec: ConstraintSpec::Equality,
                    args: vec![var(0), var(1)],
                },
            ],
        )
        .unwrap_err();
    assert!(matches!(err, BatchError::Violation { index: 1, .. }));
    assert_eq!(dump(&engine, s), before);
    let stats = engine.session_stats(s);
    assert_eq!(stats.n_variables, 2);
    assert_eq!(stats.n_constraints, 0);
}

#[test]
fn invalid_command_rejects_batch_upfront() {
    let engine = Engine::new(1);
    let s = engine.create_session();
    setup_session(&engine, s, 1);
    let before = dump(&engine, s);
    // Command 0 would commit on its own; command 1 references a variable
    // that won't exist. Validation must refuse the whole batch unapplied.
    let err = engine.apply(s, vec![set(2, 9), set(7, 1)]).unwrap_err();
    assert!(matches!(err, BatchError::InvalidCommand { index: 1, .. }));
    assert_eq!(dump(&engine, s), before);

    // Forward references to ids created later in the batch are also invalid.
    let err = engine.apply(s, vec![set(3, 1), add("later")]).unwrap_err();
    assert!(matches!(err, BatchError::InvalidCommand { index: 0, .. }));
}

/// Panics on inference from a real value change, but stays quiet during
/// the re-initialisation pass that installs it (which dispatches every
/// argument while its value is still `Nil`).
#[derive(Debug)]
struct PanicOnInfer;

impl ConstraintKind for PanicOnInfer {
    fn kind_name(&self) -> &str {
        "panicOnInfer"
    }

    fn infer(
        &self,
        net: &mut Network,
        _cid: ConstraintId,
        changed: Option<VarId>,
    ) -> Result<(), Violation> {
        if changed.is_some_and(|v| !net.value(v).is_nil()) {
            panic!("deliberate test panic");
        }
        Ok(())
    }

    fn is_satisfied(&self, _net: &Network, _cid: ConstraintId) -> bool {
        true
    }
}

#[test]
fn panicking_batch_rolls_back_and_quarantines() {
    let engine = Engine::new(2);
    let healthy = engine.create_session();
    let s = engine.create_session();
    setup_session(&engine, healthy, 3);
    engine
        .apply(
            s,
            vec![
                add("x"),
                add("y"),
                Command::AddConstraint {
                    spec: ConstraintSpec::Custom(Box::new(|| Rc::new(PanicOnInfer))),
                    args: vec![var(0), var(1)],
                },
            ],
        )
        .unwrap();
    let before = dump(&engine, s);

    // Value-only batch -> the panic unwinds out of an active cycle and the
    // worker must recover the poisoned network, not just the values.
    let err = engine.apply(s, vec![set(0, 1)]).unwrap_err();
    assert!(matches!(err, BatchError::Panicked { .. }));
    assert_eq!(dump(&engine, s), before, "panic must leave state untouched");

    // Mutating work is refused; reads are not.
    assert!(matches!(
        engine.apply(s, vec![set(1, 2)]),
        Err(BatchError::Quarantined)
    ));
    assert!(engine
        .apply(s, vec![Command::Get { var: var(0) }, Command::CheckAll])
        .is_ok());
    assert!(engine.session_stats(s).quarantined);

    // Other sessions — including on the same worker pool — are unaffected.
    engine.apply(healthy, vec![set(2, 8)]).unwrap();

    // Lifting the quarantine re-admits mutations.
    assert!(engine.lift_quarantine(s));
    assert!(!engine.lift_quarantine(s));
    engine
        .apply(
            s,
            vec![Command::RemoveConstraint { constraint: con(0) }, set(0, 1)],
        )
        .unwrap();

    let stats = engine.stats();
    assert_eq!(stats.panics, 1);
    assert_eq!(stats.sessions_quarantined, 1);
    assert_eq!(stats.rollbacks, 1);
}

#[test]
fn step_budget_aborts_runaway_propagation() {
    let engine = Engine::with_config(EngineConfig {
        workers: 1,
        queue_capacity: 8,
        step_budget: Some(3),
        ..EngineConfig::default()
    });
    let s = engine.create_session();
    // A 10-deep equality chain: flooding it costs far more than 3 steps.
    let mut cmds: Vec<Command> = (0..10).map(|i| add(&format!("v{i}"))).collect();
    for i in 0..9 {
        cmds.push(Command::AddConstraint {
            spec: ConstraintSpec::Equality,
            args: vec![var(i), var(i + 1)],
        });
    }
    engine.apply(s, cmds).unwrap();
    let before = dump(&engine, s);
    let err = engine.apply(s, vec![set(0, 42)]).unwrap_err();
    match err {
        BatchError::Violation { violation, .. } => {
            assert_eq!(violation.kind, ViolationKind::BudgetExceeded { limit: 3 });
        }
        other => panic!("expected budget violation, got {other}"),
    }
    assert_eq!(dump(&engine, s), before);
}

#[test]
fn try_submit_reports_backpressure() {
    let engine = Engine::with_config(EngineConfig {
        workers: 1,
        queue_capacity: 1,
        step_budget: None,
        ..EngineConfig::default()
    });
    let s = engine.create_session();
    // The Custom factory runs worker-side, so this batch pins the worker
    // long enough for the queue (capacity 1) to fill deterministically.
    let slow = engine.submit(
        s,
        vec![
            add("x"),
            Command::AddConstraint {
                spec: ConstraintSpec::Custom(Box::new(|| {
                    thread::sleep(Duration::from_millis(200));
                    Rc::new(stem_core::kinds::Equality::new())
                })),
                args: vec![var(0)],
            },
        ],
    );
    let mut rejected = 0;
    let mut tickets = Vec::new();
    for _ in 0..8 {
        match engine.try_submit(s, vec![Command::DumpValues]) {
            Ok(t) => tickets.push(t),
            Err(BatchError::Backpressure) => rejected += 1,
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    assert!(rejected > 0, "queue of capacity 1 never filled");
    slow.wait().unwrap();
    for t in tickets {
        t.wait().unwrap();
    }
    let stats = engine.stats();
    assert_eq!(stats.backpressure_rejections, rejected);
    assert!(stats.queue_depth_hwm >= 1);
}

#[test]
fn close_session_drops_state() {
    let engine = Engine::new(1);
    let s = engine.create_session();
    setup_session(&engine, s, 1);
    assert!(engine.close_session(s));
    // The slot is gone; touching the id again materialises a fresh network.
    assert_eq!(engine.session_stats(s).n_variables, 0);
}

#[test]
fn shutdown_rejects_pending_work() {
    let engine = Engine::new(1);
    let s = engine.create_session();
    setup_session(&engine, s, 1);
    engine.shutdown();
}

/// 64 concurrent sessions under mixed valid/violating traffic: every
/// violating batch must leave its session byte-identical, and committed
/// values must land exactly.
#[test]
fn stress_64_sessions_mixed_batches() {
    const SESSIONS: usize = 64;
    const ROUNDS: i64 = 6;
    let engine = Engine::new(4);
    let sessions: Vec<SessionId> = (0..SESSIONS).map(|_| engine.create_session()).collect();

    thread::scope(|scope| {
        for chunk in sessions.chunks(SESSIONS / 4) {
            let engine = &engine;
            scope.spawn(move || {
                for (ix, &s) in chunk.iter().enumerate() {
                    let seed = ix as i64 * 100;
                    setup_session(engine, s, seed);
                    for round in 0..ROUNDS {
                        // Valid: park a value on the unconstrained c.
                        engine.apply(s, vec![set(2, round)]).unwrap();
                        // Violating: contradicting the protected user seed
                        // through the equality must roll back exactly.
                        let before = dump(engine, s);
                        let err = engine.apply(s, vec![set(1, seed + 1)]).unwrap_err();
                        assert!(matches!(err, BatchError::Violation { .. }));
                        assert_eq!(dump(engine, s), before);
                    }
                    // Final state: a=user seed, b=propagated seed, c=last round.
                    let fin = dump(engine, s);
                    assert_eq!(fin[0].1, Value::Int(seed));
                    assert_eq!(fin[1].1, Value::Int(seed));
                    assert_eq!(fin[2].1, Value::Int(ROUNDS - 1));
                }
            });
        }
    });

    let stats = engine.stats();
    assert_eq!(stats.sessions_created, SESSIONS as u64);
    assert_eq!(stats.violations, SESSIONS as u64 * ROUNDS as u64);
    assert_eq!(stats.rollbacks, stats.violations);
    assert_eq!(stats.panics, 0);
    assert_eq!(
        stats.batches_ok,
        stats.batches - stats.violations,
        "every non-violating batch must commit"
    );
    assert_eq!(
        stats.latency_buckets.iter().sum::<u64>(),
        stats.batches,
        "every batch files exactly one latency observation"
    );
}

/// Pseudo-random but fully deterministic batch stream for one session.
fn scripted_batches(seed: u64) -> Vec<Vec<Command>> {
    let mut rng = SplitMix64::new(seed);
    let mut n_vars = 0usize;
    let mut batches = Vec::new();
    // Start with some variables so sets have targets.
    let mut first = Vec::new();
    for i in 0..4 {
        first.push(add(&format!("v{i}")));
        n_vars += 1;
    }
    batches.push(first);
    for _ in 0..20 {
        let mut batch = Vec::new();
        match rng.range_usize(0, 5) {
            0 => {
                batch.push(add(&format!("v{n_vars}")));
                n_vars += 1;
            }
            1 => batch.push(Command::AddConstraint {
                spec: ConstraintSpec::Equality,
                args: vec![
                    var(rng.range_usize(0, n_vars)),
                    var(rng.range_usize(0, n_vars)),
                ],
            }),
            2 => batch.push(Command::Unset {
                var: var(rng.range_usize(0, n_vars)),
            }),
            _ => batch.push(set(rng.range_usize(0, n_vars), rng.range_i64(-3, 4))),
        }
        batches.push(batch);
    }
    batches
}

fn run_scripted(workers: usize, n_sessions: u64) -> Vec<String> {
    let engine = Engine::new(workers);
    let sessions: Vec<SessionId> = (0..n_sessions).map(|_| engine.create_session()).collect();
    for &s in &sessions {
        for batch in scripted_batches(0xD1CE ^ s.0) {
            // Violating batches roll back; that's part of the scripted
            // behaviour and must be deterministic too.
            let _ = engine.apply(s, batch);
        }
    }
    sessions
        .iter()
        .map(|&s| format!("{:?}", dump(&engine, s)))
        .collect()
}

#[test]
fn results_are_identical_for_any_worker_count() {
    let one = run_scripted(1, 8);
    let four = run_scripted(4, 8);
    let eight = run_scripted(8, 8);
    assert_eq!(one, four);
    assert_eq!(one, eight);
}

#[test]
fn stats_and_reset_queue_hwm_starts_a_fresh_epoch() {
    let engine = Engine::with_config(EngineConfig {
        workers: 1,
        queue_capacity: 64,
        ..EngineConfig::default()
    });
    let session = engine.create_session();
    setup_session(&engine, session, 1);

    // Pile up async submissions so the queue visibly deepens.
    let tickets: Vec<_> = (0..32)
        .map(|i| engine.submit(session, vec![set(0, i)]))
        .collect();
    for t in tickets {
        t.wait().expect("batch commits");
    }
    let first = engine.stats_and_reset_queue_hwm();
    assert!(first.queue_depth_hwm > 0, "burst never showed in the HWM");
    // Every other counter matches a plain snapshot taken right after.
    let plain = engine.stats();
    assert_eq!(plain.batches, first.batches);
    assert_eq!(
        plain.queue_depth_hwm, 0,
        "reset variant re-arms the mark at zero"
    );

    // The next epoch rebuilds the mark from its own traffic only.
    engine
        .apply(session, vec![set(0, 99)])
        .expect("quiet batch");
    let second = engine.stats_and_reset_queue_hwm();
    assert!(
        second.queue_depth_hwm <= 2,
        "old epoch's depth ({}) leaked into the new mark ({})",
        first.queue_depth_hwm,
        second.queue_depth_hwm
    );
    engine.shutdown();
}
