//! Differential check of the two rollback strategies: a journal-strategy
//! engine and a snapshot-strategy engine fed identical SplitMix64-derived
//! batch workloads must produce identical per-batch outcomes and
//! byte-identical `DumpValues` dumps after every batch — including batches
//! that violate mid-propagation and roll back.

use stem_core::prng::SplitMix64;
use stem_core::{Value, VarId};
use stem_engine::{
    BatchError, BatchOutcome, Command, ConstraintSpec, Engine, EngineConfig, RollbackStrategy,
    SessionId,
};

fn engine(rollback: RollbackStrategy) -> Engine {
    Engine::with_config(EngineConfig {
        workers: 1,
        rollback,
        ..EngineConfig::default()
    })
}

/// One deterministic batch drawn from the rng. `n_vars` is the session's
/// variable count before the batch; `structural` additionally mixes in
/// journalable structure edits; `removals` allows `RemoveConstraint`
/// (journalable too: erasure pre-images plus a re-wiring undo entry).
fn gen_batch(
    rng: &mut SplitMix64,
    n_vars: usize,
    n_constraints: usize,
    structural: bool,
    removals: bool,
) -> Vec<Command> {
    let mut batch = Vec::new();
    let len = rng.range_usize(1, 5);
    for _ in 0..len {
        let var = VarId::from_index(rng.range_usize(0, n_vars));
        match rng.range_usize(0, 10) {
            // Values above ~60 trip the LeConst bound installed on the
            // chain, so a healthy fraction of batches violate and roll
            // back — the interesting case.
            0..=4 => batch.push(Command::Set {
                var,
                value: Value::Int(rng.range_i64(0, 90)),
                source: stem_engine::Source::Application,
            }),
            5 => batch.push(Command::Get { var }),
            6 => batch.push(Command::Probe {
                var,
                value: Value::Int(rng.range_i64(0, 90)),
            }),
            7 if structural => batch.push(Command::AddVariable {
                name: format!("x{}", rng.next_u64() % 1000),
            }),
            8 if structural && n_constraints > 0 => batch.push(Command::EnableConstraint {
                constraint: stem_core::ConstraintId::from_index(rng.range_usize(0, n_constraints)),
                enabled: rng.next_bool(),
            }),
            9 if removals && n_constraints > 1 => batch.push(Command::RemoveConstraint {
                constraint: stem_core::ConstraintId::from_index(rng.range_usize(0, n_constraints)),
            }),
            _ => batch.push(Command::Get { var }),
        }
    }
    batch
}

/// Renders a batch result to a canonical comparison string.
fn render(result: &Result<BatchOutcome, BatchError>) -> String {
    match result {
        Ok(out) => format!("ok outputs={:?}", out.outputs),
        // Violation details must match too: same failing command, same
        // violation shape.
        Err(e) => format!("err {e:?}"),
    }
}

fn dump(engine: &Engine, session: SessionId) -> String {
    let out = engine
        .apply(session, vec![Command::DumpValues])
        .expect("dump never fails");
    format!("{:?}", out.outputs)
}

fn build_chain(engine: &Engine, session: SessionId, n: usize) -> usize {
    let mut batch: Vec<Command> = (0..n)
        .map(|i| Command::AddVariable {
            name: format!("v{i}"),
        })
        .collect();
    for i in 0..n - 1 {
        batch.push(Command::AddConstraint {
            spec: ConstraintSpec::Equality,
            args: vec![VarId::from_index(i), VarId::from_index(i + 1)],
        });
    }
    // The tripwire: mid-chain values above 60 violate during propagation.
    batch.push(Command::AddConstraint {
        spec: ConstraintSpec::LeConst(Value::Int(60)),
        args: vec![VarId::from_index(n / 2)],
    });
    engine.apply(session, batch).expect("chain builds clean");
    n // constraints: n-1 equalities + 1 predicate = n
}

#[test]
fn journal_and_snapshot_rollback_agree_on_random_workloads() {
    let journal_eng = engine(RollbackStrategy::Journal);
    let snapshot_eng = engine(RollbackStrategy::Snapshot);
    let js = journal_eng.create_session();
    let ss = snapshot_eng.create_session();

    let n_vars = 10;
    let n_constraints = build_chain(&journal_eng, js, n_vars);
    build_chain(&snapshot_eng, ss, n_vars);

    // Phase 1: value-only workloads — the journal engine must serve every
    // batch without a single network snapshot or clone.
    let mut rng_j = SplitMix64::new(0xD1FF);
    let mut rng_s = SplitMix64::new(0xD1FF);
    let mut violations = 0usize;
    for round in 0..120 {
        let bj = gen_batch(&mut rng_j, n_vars, n_constraints, false, false);
        let bs = gen_batch(&mut rng_s, n_vars, n_constraints, false, false);
        let rj = journal_eng.apply(js, bj);
        let rs = snapshot_eng.apply(ss, bs);
        if rj.is_err() {
            violations += 1;
        }
        assert_eq!(
            render(&rj),
            render(&rs),
            "outcome diverged at round {round}"
        );
        assert_eq!(
            dump(&journal_eng, js),
            dump(&snapshot_eng, ss),
            "state diverged after round {round}"
        );
    }
    assert!(
        violations > 0,
        "workload never violated — tripwire too loose"
    );

    let jstats = journal_eng.session_stats(js);
    assert_eq!(
        jstats.net_snapshots, 0,
        "journal strategy must never snapshot on value-only batches"
    );
    assert_eq!(
        jstats.net_clones, 0,
        "journal strategy must never clone on value-only batches"
    );
    let sstats = snapshot_eng.session_stats(ss);
    assert!(
        sstats.net_snapshots > 0,
        "snapshot strategy should have taken snapshots"
    );

    // Phase 2: journalable structural edits ride the journal too.
    for round in 0..40 {
        // Variable count only grows; both sides grow identically, so track
        // via the journal engine's dump (cheaper: count AddVariable).
        let bj = gen_batch(&mut rng_j, n_vars, n_constraints, true, false);
        let bs = gen_batch(&mut rng_s, n_vars, n_constraints, true, false);
        let rj = journal_eng.apply(js, bj);
        let rs = snapshot_eng.apply(ss, bs);
        assert_eq!(
            render(&rj),
            render(&rs),
            "structural outcome diverged at round {round}"
        );
        assert_eq!(
            dump(&journal_eng, js),
            dump(&snapshot_eng, ss),
            "structural state diverged after round {round}"
        );
    }
    let jstats = journal_eng.session_stats(js);
    assert_eq!(
        jstats.net_snapshots, 0,
        "journalable structural batches must not snapshot"
    );
    assert_eq!(
        jstats.net_clones, 0,
        "journalable structural batches must not clone"
    );

    // Phase 3: RemoveConstraint journals too (erasure pre-images plus a
    // re-wiring undo entry), so even removal batches stay on the
    // O(touched) journal path — and the two engines still agree.
    let mut removal_batches = 0usize;
    for round in 0..30 {
        let bj = gen_batch(&mut rng_j, n_vars, n_constraints, true, true);
        let bs = gen_batch(&mut rng_s, n_vars, n_constraints, true, true);
        if bj
            .iter()
            .any(|c| matches!(c, Command::RemoveConstraint { .. }))
        {
            removal_batches += 1;
        }
        let rj = journal_eng.apply(js, bj);
        let rs = snapshot_eng.apply(ss, bs);
        assert_eq!(
            render(&rj),
            render(&rs),
            "removal outcome diverged at round {round}"
        );
        assert_eq!(
            dump(&journal_eng, js),
            dump(&snapshot_eng, ss),
            "removal state diverged after round {round}"
        );
    }
    assert!(removal_batches > 0, "workload never removed a constraint");
    let jstats = journal_eng.session_stats(js);
    assert_eq!(jstats.net_snapshots, 0, "still no snapshots under journal");
    assert_eq!(
        jstats.net_clones, 0,
        "removal batches must journal, not clone-and-swap"
    );

    journal_eng.shutdown();
    snapshot_eng.shutdown();
}

#[test]
fn journal_rollback_survives_panicking_commands() {
    // A panic mid-batch unwinds through catch_unwind; the journal engine
    // must abort the open cycle, replay the journal, and leave the session
    // exactly as the snapshot engine does.
    let journal_eng = engine(RollbackStrategy::Journal);
    let snapshot_eng = engine(RollbackStrategy::Snapshot);
    let js = journal_eng.create_session();
    let ss = snapshot_eng.create_session();
    build_chain(&journal_eng, js, 4);
    build_chain(&snapshot_eng, ss, 4);

    let panic_batch = |target: u32| {
        vec![
            Command::Set {
                var: VarId::from_index(0),
                value: Value::Int(7),
                source: stem_engine::Source::User,
            },
            // Invalid id: indexes far past the arena — the worker rejects
            // or panics depending on path; both engines must agree.
            Command::Set {
                var: VarId::from_index(target as usize),
                value: Value::Int(1),
                source: stem_engine::Source::User,
            },
        ]
    };
    let rj = journal_eng.apply(js, panic_batch(9999));
    let rs = snapshot_eng.apply(ss, panic_batch(9999));
    assert_eq!(render(&rj), render(&rs));
    assert_eq!(dump(&journal_eng, js), dump(&snapshot_eng, ss));

    journal_eng.shutdown();
    snapshot_eng.shutdown();
}
