//! Durable-engine lifecycle: log-before-ack, reopen/recovery equality,
//! closed-session retirement, checkpoint compaction, persist-failure
//! rollback, and the durability-related stats surface.

use std::fs;
use std::path::PathBuf;

use stem_core::{Value, VarId};
use stem_engine::{
    BatchError, Command, ConstraintSpec, Durability, DurabilityOptions, Engine, EngineConfig,
    Output, SessionId, Source,
};
use stem_persist::{
    failing_factory, ByteBudget, PersistCommand, PersistSource, Store, StoreOptions, WalRecord,
};

fn temp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("stem-engine-persist-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&d);
    d
}

fn config() -> EngineConfig {
    EngineConfig {
        workers: 2,
        ..EngineConfig::default()
    }
}

fn opts() -> DurabilityOptions {
    DurabilityOptions {
        checkpoint_bytes: 0, // no background checkpoints: deterministic
        ..DurabilityOptions::default()
    }
}

fn add(name: &str) -> Command {
    Command::AddVariable { name: name.into() }
}

fn set(ix: usize, v: i64) -> Command {
    Command::Set {
        var: VarId::from_index(ix),
        value: Value::Int(v),
        source: Source::User,
    }
}

fn dump(engine: &Engine, s: SessionId) -> Vec<(String, Value, stem_core::Justification)> {
    match engine
        .apply(s, vec![Command::DumpValues])
        .expect("dump")
        .outputs
        .remove(0)
    {
        Output::Dump(d) => d,
        other => panic!("expected dump, got {other:?}"),
    }
}

fn violations(engine: &Engine, s: SessionId) -> Vec<stem_core::Violation> {
    match engine
        .apply(s, vec![Command::CheckAll])
        .expect("check")
        .outputs
        .remove(0)
    {
        Output::Violations(v) => v,
        other => panic!("expected violations, got {other:?}"),
    }
}

/// Builds a session: c = a + b with a=2, b=3, plus a removed constraint
/// (tombstone) and a disabled bound — structural variety for recovery.
fn build_rich_session(engine: &Engine, s: SessionId) {
    engine.apply(s, vec![add("a"), add("b"), add("c")]).unwrap();
    engine
        .apply(
            s,
            vec![Command::AddConstraint {
                spec: ConstraintSpec::Equality,
                args: vec![VarId::from_index(0), VarId::from_index(1)],
            }],
        )
        .unwrap();
    engine
        .apply(
            s,
            vec![Command::AddConstraint {
                spec: ConstraintSpec::Sum,
                args: vec![
                    VarId::from_index(0),
                    VarId::from_index(1),
                    VarId::from_index(2),
                ],
            }],
        )
        .unwrap();
    // Tombstone the equality so a/b diverge, then bound c and disable it.
    engine
        .apply(
            s,
            vec![Command::RemoveConstraint {
                constraint: stem_core::ConstraintId::from_index(0),
            }],
        )
        .unwrap();
    engine
        .apply(
            s,
            vec![Command::AddConstraint {
                spec: ConstraintSpec::LeConst(Value::Int(100)),
                args: vec![VarId::from_index(2)],
            }],
        )
        .unwrap();
    engine
        .apply(
            s,
            vec![Command::EnableConstraint {
                constraint: stem_core::ConstraintId::from_index(2),
                enabled: false,
            }],
        )
        .unwrap();
    engine.apply(s, vec![set(0, 2), set(1, 3)]).unwrap();
}

#[test]
fn reopen_rebuilds_sessions_exactly() {
    let dir = temp_dir("roundtrip");
    let (d0, d1, v0);
    {
        let engine = Engine::open_with_config(&dir, config(), opts()).unwrap();
        let s0 = engine.create_session();
        let s1 = engine.create_session();
        build_rich_session(&engine, s0);
        engine.apply(s1, vec![add("x"), set(0, 42)]).unwrap();
        d0 = dump(&engine, s0);
        d1 = dump(&engine, s1);
        v0 = violations(&engine, s0);
        let stats = engine.stats();
        assert!(stats.wal_appends >= 8, "every mutating batch logs");
        assert!(stats.wal_bytes > 0);
        assert_eq!(stats.recoveries, 0);
        engine.shutdown();
    }
    let engine = Engine::open_with_config(&dir, config(), opts()).unwrap();
    let (s0, s1) = (SessionId(0), SessionId(1));
    assert_eq!(dump(&engine, s0), d0);
    assert_eq!(dump(&engine, s1), d1);
    assert_eq!(violations(&engine, s0), v0);
    assert_eq!(engine.stats().recoveries, 2);
    // Ids continue past everything the log has seen.
    assert_eq!(engine.create_session(), SessionId(2));
    // The rebuilt network still propagates: a=10 flows into c = a + b.
    engine.apply(s0, vec![set(0, 10)]).unwrap();
    let after = dump(&engine, s0);
    assert_eq!(after[2].1, Value::Int(13));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn read_only_batches_are_never_logged() {
    let dir = temp_dir("readonly");
    let engine = Engine::open_with_config(&dir, config(), opts()).unwrap();
    let s = engine.create_session();
    engine.apply(s, vec![add("a"), set(0, 1)]).unwrap();
    let logged = engine.stats().wal_appends;
    engine
        .apply(
            s,
            vec![
                Command::Get {
                    var: VarId::from_index(0),
                },
                Command::Probe {
                    var: VarId::from_index(0),
                    value: Value::Int(9),
                },
                Command::DumpValues,
                Command::CheckAll,
            ],
        )
        .unwrap();
    assert_eq!(engine.stats().wal_appends, logged);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn violation_batches_are_not_logged_and_not_recovered() {
    let dir = temp_dir("violation");
    {
        let engine = Engine::open_with_config(&dir, config(), opts()).unwrap();
        let s = engine.create_session();
        engine
            .apply(
                s,
                vec![
                    add("v"),
                    Command::AddConstraint {
                        spec: ConstraintSpec::LeConst(Value::Int(5)),
                        args: vec![VarId::from_index(0)],
                    },
                    set(0, 3),
                ],
            )
            .unwrap();
        let logged = engine.stats().wal_appends;
        let err = engine.apply(s, vec![set(0, 99)]).unwrap_err();
        assert!(matches!(err, BatchError::Violation { .. }));
        assert_eq!(
            engine.stats().wal_appends,
            logged,
            "rolled-back batches leave no record"
        );
    }
    let engine = Engine::open(&dir).unwrap();
    let d = dump(&engine, SessionId(0));
    assert_eq!(d[0].1, Value::Int(3), "the violating write never happened");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn closed_sessions_stay_closed_across_reopen() {
    let dir = temp_dir("close");
    {
        let engine = Engine::open_with_config(&dir, config(), opts()).unwrap();
        let s0 = engine.create_session();
        let s1 = engine.create_session();
        engine.apply(s0, vec![add("keep"), set(0, 1)]).unwrap();
        engine.apply(s1, vec![add("gone"), set(0, 2)]).unwrap();
        assert!(engine.close_session(s1));
    }
    let engine = Engine::open_with_config(&dir, config(), opts()).unwrap();
    assert_eq!(dump(&engine, SessionId(0))[0].0, "keep");
    assert_eq!(engine.stats().recoveries, 1, "only the live session");
    assert!(
        dump(&engine, SessionId(1)).is_empty(),
        "closed session was not resurrected"
    );
    // The retired id is not recycled.
    assert_eq!(engine.create_session(), SessionId(2));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn checkpoint_compacts_and_recovery_uses_the_snapshot() {
    let dir = temp_dir("checkpoint");
    let small_segments = DurabilityOptions {
        segment_bytes: 256,
        checkpoint_bytes: 0,
        ..DurabilityOptions::default()
    };
    let (expected, post);
    {
        let engine = Engine::open_with_config(&dir, config(), small_segments).unwrap();
        let s = engine.create_session();
        engine.apply(s, vec![add("a"), add("b")]).unwrap();
        for i in 0..30 {
            engine.apply(s, vec![set(0, i), set(1, i * 2)]).unwrap();
        }
        assert!(engine.checkpoint().unwrap());
        let stats = engine.stats();
        assert_eq!(stats.snapshots_written, 1);
        // One batch after the checkpoint: recovery = snapshot + tail.
        engine.apply(s, vec![set(0, 1000)]).unwrap();
        expected = dump(&engine, s);
        post = stats.wal_appends;
    }
    let logs = fs::read_dir(&dir)
        .unwrap()
        .filter(|e| {
            e.as_ref()
                .unwrap()
                .path()
                .extension()
                .is_some_and(|x| x == "log")
        })
        .count();
    assert!(logs <= 3, "covered segments were compacted, found {logs}");
    let engine = Engine::open_with_config(&dir, config(), opts()).unwrap();
    assert_eq!(dump(&engine, SessionId(0)), expected);
    assert_eq!(engine.stats().recoveries, 1);
    assert!(post > 0);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn automatic_checkpoints_fire_on_byte_threshold() {
    let dir = temp_dir("autockpt");
    let auto = DurabilityOptions {
        segment_bytes: 256,
        checkpoint_bytes: 512,
        ..DurabilityOptions::default()
    };
    let engine = Engine::open_with_config(&dir, config(), auto).unwrap();
    let s = engine.create_session();
    engine.apply(s, vec![add("a")]).unwrap();
    for i in 0..200 {
        engine.apply(s, vec![set(0, i)]).unwrap();
    }
    // The flusher thread ticks every ≤50ms; give it a few ticks.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while engine.stats().snapshots_written == 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    assert!(
        engine.stats().snapshots_written >= 1,
        "background checkpoint never fired"
    );
    let expected = dump(&engine, s);
    engine.shutdown();
    let engine = Engine::open_with_config(&dir, config(), opts()).unwrap();
    assert_eq!(dump(&engine, SessionId(0)), expected);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn interval_sync_survives_clean_shutdown() {
    let dir = temp_dir("interval");
    let interval = DurabilityOptions {
        mode: Durability::IntervalSync {
            interval: std::time::Duration::from_secs(3600),
        },
        checkpoint_bytes: 0,
        ..DurabilityOptions::default()
    };
    let expected;
    {
        let engine = Engine::open_with_config(&dir, config(), interval).unwrap();
        let s = engine.create_session();
        engine.apply(s, vec![add("a"), set(0, 7)]).unwrap();
        expected = dump(&engine, s);
        // Drop without an explicit sync: shutdown flushes deferred writes.
    }
    let engine = Engine::open(&dir).unwrap();
    assert_eq!(dump(&engine, SessionId(0)), expected);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn custom_kinds_are_rejected_only_when_durable() {
    let custom = || Command::AddConstraint {
        spec: ConstraintSpec::Custom(Box::new(|| {
            std::rc::Rc::new(stem_core::kinds::Equality::new())
        })),
        args: vec![VarId::from_index(0)],
    };
    let dir = temp_dir("custom");
    let engine = Engine::open_with_config(&dir, config(), opts()).unwrap();
    let s = engine.create_session();
    engine.apply(s, vec![add("a")]).unwrap();
    let err = engine.apply(s, vec![custom()]).unwrap_err();
    match err {
        BatchError::InvalidCommand { reason, .. } => {
            assert!(reason.contains("persisted"), "{reason}")
        }
        other => panic!("expected InvalidCommand, got {other}"),
    }
    engine.shutdown();

    let volatile = Engine::new(1);
    let s = volatile.create_session();
    volatile.apply(s, vec![add("a")]).unwrap();
    volatile.apply(s, vec![custom()]).unwrap();
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn wal_append_failure_rolls_the_batch_back() {
    let dir = temp_dir("walfail");
    // Enough budget for the store magic plus the first batch's record;
    // the second batch's append dies mid-frame.
    let budget = ByteBudget::new(96);
    let failing = DurabilityOptions {
        checkpoint_bytes: 0,
        file_factory: Some(failing_factory(budget)),
        ..DurabilityOptions::default()
    };
    let engine = Engine::open_with_config(&dir, config(), failing).unwrap();
    let s = engine.create_session();
    engine.apply(s, vec![add("a"), set(0, 1)]).unwrap();
    let err = engine.apply(s, vec![set(0, 2), set(0, 3)]).unwrap_err();
    assert!(matches!(err, BatchError::Persist { .. }), "{err}");
    // The failed batch rolled back in memory…
    assert_eq!(dump(&engine, s)[0].1, Value::Int(1));
    engine.shutdown();
    // …and recovery agrees: only the acknowledged batch exists.
    let engine = Engine::open(&dir).unwrap();
    let d = dump(&engine, SessionId(0));
    assert_eq!(d.len(), 1);
    assert_eq!(d[0].1, Value::Int(1));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn checkpoint_crash_leaves_log_recovery_intact() {
    let dir = temp_dir("ckptcrash");
    let expected;
    let wal_bytes;
    {
        let engine = Engine::open_with_config(&dir, config(), opts()).unwrap();
        let s = engine.create_session();
        engine.apply(s, vec![add("a"), add("b")]).unwrap();
        for i in 0..10 {
            engine.apply(s, vec![set(0, i), set(1, -i)]).unwrap();
        }
        expected = dump(&engine, s);
        wal_bytes = engine.stats().wal_bytes;
    }
    // Reopen with a budget that admits the fresh segment magic but dies
    // inside the snapshot tmp write: the checkpoint must fail without
    // destroying the log it meant to replace.
    {
        let budget = ByteBudget::new(40);
        let failing = DurabilityOptions {
            checkpoint_bytes: 0,
            file_factory: Some(failing_factory(budget)),
            ..DurabilityOptions::default()
        };
        let engine = Engine::open_with_config(&dir, config(), failing).unwrap();
        assert!(wal_bytes > 40, "budget must not cover the snapshot");
        assert!(engine.checkpoint().is_err(), "snapshot write must crash");
    }
    let engine = Engine::open(&dir).unwrap();
    assert_eq!(dump(&engine, SessionId(0)), expected);
    assert_eq!(engine.stats().snapshots_written, 0);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn durability_off_recovers_but_does_not_log() {
    let dir = temp_dir("off");
    {
        let engine = Engine::open_with_config(&dir, config(), opts()).unwrap();
        let s = engine.create_session();
        engine.apply(s, vec![add("a"), set(0, 5)]).unwrap();
    }
    {
        let off = DurabilityOptions {
            mode: Durability::Off,
            checkpoint_bytes: 0,
            ..DurabilityOptions::default()
        };
        let engine = Engine::open_with_config(&dir, config(), off).unwrap();
        assert_eq!(engine.durability(), Some(Durability::Off));
        let s = SessionId(0);
        assert_eq!(dump(&engine, s)[0].1, Value::Int(5), "recovery still runs");
        let appends = engine.stats().wal_appends;
        engine.apply(s, vec![set(0, 99)]).unwrap();
        assert_eq!(engine.stats().wal_appends, appends, "nothing new is logged");
        assert!(!engine.checkpoint().unwrap());
    }
    let engine = Engine::open(&dir).unwrap();
    assert_eq!(
        dump(&engine, SessionId(0))[0].1,
        Value::Int(5),
        "the unlogged write is gone, as Off promises"
    );
    let _ = fs::remove_dir_all(&dir);
}

/// A sequence gap in the log (corruption the checksums could not see)
/// must quarantine the session and fence the store with a checkpoint, so
/// the stale higher-seq record can never shadow commits made after the
/// quarantine is lifted.
#[test]
fn sequence_gap_quarantines_and_fences_stale_records() {
    let dir = temp_dir("seqgap");
    {
        let (mut store, _) = Store::open(&dir, StoreOptions::default()).unwrap();
        let set_rec = |seq: u64, v: i64| WalRecord::Batch {
            session: 0,
            seq,
            key: 0,
            commands: vec![PersistCommand::Set {
                var: VarId::from_index(0),
                value: Value::Int(v),
                source: PersistSource::User,
            }],
        };
        store
            .append(&WalRecord::Batch {
                session: 0,
                seq: 1,
                key: 0,
                commands: vec![PersistCommand::AddVariable { name: "v".into() }],
            })
            .unwrap();
        store.append(&set_rec(2, 1)).unwrap();
        // seq 3 is missing: the record at seq 4 is stale garbage that a
        // post-recovery commit would otherwise collide with.
        store.append(&set_rec(4, 99)).unwrap();
    }
    {
        let engine = Engine::open_with_config(&dir, config(), opts()).unwrap();
        let s = SessionId(0);
        assert!(engine.session_stats(s).quarantined);
        assert_eq!(engine.stats().sessions_quarantined, 1);
        assert!(
            engine.stats().snapshots_written >= 1,
            "open must fence the anomaly with a checkpoint"
        );
        let err = engine.apply(s, vec![set(0, 7)]).unwrap_err();
        assert!(matches!(err, BatchError::Quarantined), "{err}");
        assert_eq!(dump(&engine, s)[0].1, Value::Int(1), "pre-gap prefix");

        assert!(engine.lift_quarantine(s));
        // These land at seqs 3 and 4 — the latter the same number the
        // stale record held before the fence compacted it away.
        engine.apply(s, vec![set(0, 2)]).unwrap();
        engine.apply(s, vec![set(0, 5)]).unwrap();
        engine.shutdown();
    }
    let engine = Engine::open_with_config(&dir, config(), opts()).unwrap();
    let s = SessionId(0);
    assert!(!engine.session_stats(s).quarantined);
    assert_eq!(
        dump(&engine, s)[0].1,
        Value::Int(5),
        "post-quarantine commits win; the stale seq-4 record is gone"
    );
    let _ = fs::remove_dir_all(&dir);
}

/// Closed-session ids are forgotten two checkpoints after compaction has
/// retired every record mentioning them, so snapshots do not grow without
/// bound — while the session still never resurrects and its id is never
/// recycled.
#[test]
fn closed_ids_are_pruned_after_compaction() {
    let dir = temp_dir("prune");
    {
        let engine = Engine::open_with_config(&dir, config(), opts()).unwrap();
        let s0 = engine.create_session();
        let s1 = engine.create_session();
        engine.apply(s0, vec![add("keep"), set(0, 1)]).unwrap();
        engine.apply(s1, vec![add("gone"), set(0, 2)]).unwrap();
        assert!(engine.close_session(s1));
        // #1 compacts the segments holding s1's records (snapshot still
        // lists the id), #2 sees the compaction verified and tells the
        // workers to forget, #3 writes the first id-free snapshot.
        for _ in 0..3 {
            assert!(engine.checkpoint().unwrap());
        }
        engine.shutdown();
    }
    let (_, rec) = Store::open(&dir, StoreOptions::default()).unwrap();
    let snap = rec.snapshot.expect("checkpoints wrote snapshots");
    assert!(
        snap.closed.is_empty(),
        "pruned closed ids still in snapshot: {:?}",
        snap.closed
    );
    assert_eq!(snap.next_session, 2, "the id bound still covers s1");

    let engine = Engine::open_with_config(&dir, config(), opts()).unwrap();
    assert!(
        dump(&engine, SessionId(1)).is_empty(),
        "closed session must not resurrect after its id is pruned"
    );
    assert_eq!(engine.create_session(), SessionId(2), "id not recycled");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn volatile_engines_report_no_durability() {
    let engine = Engine::new(1);
    assert_eq!(engine.durability(), None);
    assert!(!engine.sync_wal().unwrap());
    assert!(!engine.checkpoint().unwrap());
    let s = engine.create_session();
    engine.apply(s, vec![add("a"), set(0, 1)]).unwrap();
    let stats = engine.stats();
    assert_eq!(
        (stats.wal_appends, stats.wal_bytes, stats.snapshots_written),
        (0, 0, 0)
    );
}
