//! Idempotent resubmission (keyed batches) and lease fencing: the two
//! engine-level guarantees the cluster tier builds failover on. A client
//! that resends a batch after a reconnect must never double-apply it, and
//! a deposed leader must never ack a write the new leader cannot see.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use stem_core::{Value, VarId};
use stem_engine::{
    BatchError, Command, Durability, DurabilityOptions, Engine, EngineConfig, Output, SessionId,
    Source,
};

fn temp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("stem-engine-dedup-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&d);
    d
}

fn config() -> EngineConfig {
    EngineConfig {
        workers: 1,
        ..EngineConfig::default()
    }
}

fn opts() -> DurabilityOptions {
    DurabilityOptions {
        checkpoint_bytes: 0,
        ..DurabilityOptions::default()
    }
}

fn add(name: &str) -> Command {
    Command::AddVariable { name: name.into() }
}

fn set(ix: usize, v: i64) -> Command {
    Command::Set {
        var: VarId::from_index(ix),
        value: Value::Int(v),
        source: Source::User,
    }
}

fn value_of(engine: &Engine, s: SessionId, ix: usize) -> Value {
    match engine
        .apply(
            s,
            vec![Command::Get {
                var: VarId::from_index(ix),
            }],
        )
        .expect("get")
        .outputs
        .remove(0)
    {
        Output::Value(v) => v,
        other => panic!("expected value, got {other:?}"),
    }
}

/// Resending an already-applied key is acked with an empty outcome, not
/// re-applied: the increment lands once no matter how often the client's
/// retry loop pushes it.
#[test]
fn duplicate_keys_are_skipped_not_reapplied() {
    let engine = Engine::new(1);
    let s = engine.create_session();
    engine.submit_keyed(s, vec![add("x")], 1).wait().unwrap();
    let first = engine.submit_keyed(s, vec![set(0, 7)], 2).wait().unwrap();
    assert!(!first.outputs.is_empty(), "a real batch reports outputs");

    for _ in 0..3 {
        let dup = engine.submit_keyed(s, vec![set(0, 99)], 2).wait().unwrap();
        assert!(dup.outputs.is_empty(), "duplicate is acked as a skip");
    }
    assert_eq!(value_of(&engine, s, 0), Value::Int(7), "no double-apply");
    assert_eq!(engine.stats().dedup_skips, 3);

    // Unkeyed batches (key 0) never dedup — legacy submit path.
    engine.submit_keyed(s, vec![set(0, 8)], 0).wait().unwrap();
    engine.submit_keyed(s, vec![set(0, 9)], 0).wait().unwrap();
    // (see above: key 0 means "unkeyed", so both applied)
    assert_eq!(value_of(&engine, s, 0), Value::Int(9));
    engine.shutdown();
}

/// A key that fails (violation) does not advance the watermark: the
/// client may retry the same key with the same commands and, once the
/// cause clears, have it apply.
#[test]
fn failed_batches_do_not_burn_their_key() {
    let engine = Engine::new(1);
    let s = engine.create_session();
    engine.submit_keyed(s, vec![add("a")], 1).wait().unwrap();
    let err = engine
        .submit_keyed(
            s,
            vec![Command::Set {
                var: VarId::from_index(5), // out of range
                value: Value::Int(1),
                source: Source::User,
            }],
            2,
        )
        .wait()
        .unwrap_err();
    assert!(matches!(err, BatchError::InvalidCommand { .. }), "{err}");
    // Same key, corrected commands: applies (the failure did not advance
    // the watermark), so a retry after a transport error is never lost.
    let ok = engine.submit_keyed(s, vec![set(0, 4)], 2).wait().unwrap();
    assert!(!ok.outputs.is_empty());
    assert_eq!(value_of(&engine, s, 0), Value::Int(4));
    engine.shutdown();
}

/// The watermark is durable: keys survive a crash/reopen both via the
/// log tail and via a checkpoint, so a client retrying across a restart
/// still cannot double-apply.
#[test]
fn dedup_watermark_survives_reopen() {
    let dir = temp_dir("reopen");
    {
        let engine = Engine::open_with_config(&dir, config(), opts()).unwrap();
        let s = engine.create_session();
        engine.submit_keyed(s, vec![add("n")], 1).wait().unwrap();
        engine.submit_keyed(s, vec![set(0, 10)], 2).wait().unwrap();
        engine.shutdown();
    }
    // Tail replay path.
    {
        let engine = Engine::open_with_config(&dir, config(), opts()).unwrap();
        let s = SessionId(0);
        let dup = engine.submit_keyed(s, vec![set(0, 55)], 2).wait().unwrap();
        assert!(dup.outputs.is_empty(), "replayed watermark blocks the dup");
        assert_eq!(value_of(&engine, s, 0), Value::Int(10));
        engine.submit_keyed(s, vec![set(0, 11)], 3).wait().unwrap();
        assert!(engine.checkpoint().unwrap());
        engine.shutdown();
    }
    // Checkpoint path: the snapshot's SessionState carries the watermark.
    {
        let engine = Engine::open_with_config(&dir, config(), opts()).unwrap();
        let s = SessionId(0);
        let dup = engine.submit_keyed(s, vec![set(0, 77)], 3).wait().unwrap();
        assert!(dup.outputs.is_empty(), "snapshot watermark blocks the dup");
        assert_eq!(value_of(&engine, s, 0), Value::Int(11));
        engine.shutdown();
    }
    let _ = fs::remove_dir_all(&dir);
}

/// Once the cluster epoch moves past an engine's lease, its appends are
/// fenced: the in-flight batch rolls back (Persist error, state
/// unchanged) instead of acking a write the new leader will never see.
/// Reads keep working — fencing guards the log, not the session.
#[test]
fn superseded_lease_fences_writes_but_not_reads() {
    let dir = temp_dir("fence");
    let engine = Engine::open_with_config(&dir, config(), opts()).unwrap();
    assert_eq!(engine.durability(), Some(Durability::CommitSync));
    let epoch = Arc::new(AtomicU64::new(3));
    engine.install_lease(3, 1, Arc::clone(&epoch)).unwrap();
    assert_eq!(engine.lease(), (3, 1));

    let s = engine.create_session();
    engine.apply(s, vec![add("v"), set(0, 1)]).unwrap();

    // The coordinator deposes this leader: epoch 3 -> 4.
    epoch.store(4, Ordering::SeqCst);
    let err = engine.apply(s, vec![set(0, 2)]).unwrap_err();
    assert!(matches!(err, BatchError::Persist { .. }), "{err}");
    assert_eq!(
        value_of(&engine, s, 0),
        Value::Int(1),
        "fenced batch rolled back"
    );
    assert!(
        engine.checkpoint().is_err(),
        "snapshots are fenced too — a deposed leader must not publish one"
    );
    engine.shutdown();

    // The log holds only the pre-fence history.
    let reopened = Engine::open(&dir).unwrap();
    assert_eq!(value_of(&reopened, SessionId(0), 0), Value::Int(1));
    reopened.shutdown();
    let _ = fs::remove_dir_all(&dir);
}

/// A volatile engine has no log to fence.
#[test]
fn install_lease_requires_durability() {
    let engine = Engine::new(1);
    let err = engine
        .install_lease(1, 1, Arc::new(AtomicU64::new(1)))
        .unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::Unsupported);
    assert_eq!(engine.lease(), (0, 0));
    engine.shutdown();
}
