//! Pins the engine-global vs per-session split of the WAL counters.
//!
//! `EngineStats::wal_appends`/`wal_bytes` come from the store and count
//! *everything* appended (batch records, close records). The per-session
//! `SessionStats::wal_appends`/`wal_bytes` are maintained by the owning
//! worker at commit time and attribute each batch record to its session —
//! so the session shares must sum to the engine totals, minus exactly the
//! records that belong to no session.

use std::fs;
use std::path::PathBuf;

use stem_core::{Value, VarId};
use stem_engine::{Command, DurabilityOptions, Engine, EngineConfig, Source};

fn temp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("stem-wal-stats-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&d);
    d
}

fn set(v: i64) -> Command {
    Command::Set {
        var: VarId::from_index(0),
        value: Value::Int(v),
        source: Source::User,
    }
}

#[test]
fn session_wal_counters_partition_the_engine_totals() {
    let dir = temp_dir("split");
    let engine = Engine::open_with_config(
        &dir,
        EngineConfig {
            workers: 2,
            ..EngineConfig::default()
        },
        DurabilityOptions {
            checkpoint_bytes: 0,
            ..DurabilityOptions::default()
        },
    )
    .unwrap();
    let s0 = engine.create_session();
    let s1 = engine.create_session();
    let s2 = engine.create_session();

    // s0: 1 + 5 mutating batches; s1: 1 + 2; s2: read-only only (after a
    // no-op probe the session exists but never logs).
    engine
        .apply(s0, vec![Command::AddVariable { name: "a".into() }])
        .unwrap();
    for i in 0..5 {
        engine.apply(s0, vec![set(i)]).unwrap();
    }
    engine
        .apply(s1, vec![Command::AddVariable { name: "b".into() }])
        .unwrap();
    engine.apply(s1, vec![set(1), set(2)]).unwrap();
    engine.apply(s1, vec![Command::CheckAll]).unwrap();
    engine.apply(s2, vec![Command::DumpValues]).unwrap();

    // A rolled-back batch must not be attributed to the session.
    let bad = engine.apply(
        s0,
        vec![Command::Set {
            var: VarId::from_index(99),
            value: Value::Int(0),
            source: Source::User,
        }],
    );
    assert!(bad.is_err());

    let (g0, g1, g2) = (
        engine.session_stats(s0),
        engine.session_stats(s1),
        engine.session_stats(s2),
    );
    assert_eq!(g0.wal_appends, 6);
    assert_eq!(g1.wal_appends, 2);
    assert_eq!(g2.wal_appends, 0);
    assert!(g0.wal_bytes > g1.wal_bytes);
    assert!(g1.wal_bytes > 0);
    assert_eq!(g2.wal_bytes, 0);

    // Partition: with no close/checkpoint records yet, the session shares
    // sum exactly to the store totals.
    let total = engine.stats();
    assert_eq!(total.wal_appends, g0.wal_appends + g1.wal_appends);
    assert_eq!(total.wal_bytes, g0.wal_bytes + g1.wal_bytes);

    // Closing a session appends a close record: engine totals move, the
    // remaining sessions' shares do not.
    assert!(engine.close_session(s1));
    let after = engine.stats();
    assert_eq!(after.wal_appends, total.wal_appends + 1);
    assert_eq!(engine.session_stats(s0).wal_appends, 6);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn volatile_sessions_report_zero_wal_counters() {
    let engine = Engine::new(1);
    let s = engine.create_session();
    engine
        .apply(s, vec![Command::AddVariable { name: "a".into() }, set(7)])
        .unwrap();
    let stats = engine.session_stats(s);
    assert_eq!((stats.wal_appends, stats.wal_bytes), (0, 0));
}
