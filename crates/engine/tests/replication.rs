//! Leader → follower WAL segment shipping, differential-style.
//!
//! A durable leader applies seeded random workloads; its sealed WAL
//! segments are shipped to a read-only replica engine (with a *different*
//! worker count, so shard placement is proven an implementation detail).
//! After shipping, every session's observable state — values,
//! justifications, violation sets — must be **byte-identical** between
//! leader and follower, under the canonical codec encoding. Then the
//! leader is killed mid-stream, the follower promoted, and the second
//! half of the workload applied; the promoted follower must track a
//! volatile reference engine that saw the whole stream.

use std::fs;
use std::path::PathBuf;

use stem_core::codec::{put_justification, put_str, put_value, put_violation};
use stem_core::prng::SplitMix64;
use stem_core::{Value, VarId};
use stem_engine::{
    BatchError, Command, ConstraintSpec, Durability, DurabilityOptions, Engine, EngineConfig,
    Output, SessionId, Source,
};

fn temp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("stem-replication-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&d);
    d
}

fn leader_config() -> EngineConfig {
    EngineConfig {
        workers: 3,
        ..EngineConfig::default()
    }
}

/// Small segments so every workload spans several shipping units.
fn ship_opts() -> DurabilityOptions {
    DurabilityOptions {
        segment_bytes: 512,
        checkpoint_bytes: 0,
        ..DurabilityOptions::default()
    }
}

fn set(ix: usize, v: i64) -> Command {
    Command::Set {
        var: VarId::from_index(ix),
        value: Value::Int(v),
        source: Source::User,
    }
}

/// c = a + b with a LeConst tripwire on c, so random workloads violate
/// and roll back at a healthy rate (rolled-back batches must not ship).
fn build_session(engine: &Engine, s: SessionId) {
    engine
        .apply(
            s,
            vec![
                Command::AddVariable { name: "a".into() },
                Command::AddVariable { name: "b".into() },
                Command::AddVariable { name: "c".into() },
                Command::AddConstraint {
                    spec: ConstraintSpec::Sum,
                    args: vec![
                        VarId::from_index(0),
                        VarId::from_index(1),
                        VarId::from_index(2),
                    ],
                },
                Command::AddConstraint {
                    spec: ConstraintSpec::LeConst(Value::Int(60)),
                    args: vec![VarId::from_index(2)],
                },
            ],
        )
        .expect("session skeleton builds clean");
}

/// One deterministic batch: mostly sets (some violating), a few
/// journalable structural edits and constraint toggles.
fn gen_batch(rng: &mut SplitMix64) -> Vec<Command> {
    let len = rng.range_usize(1, 4);
    (0..len)
        .map(|_| match rng.range_usize(0, 8) {
            0..=4 => set(rng.range_usize(0, 2), rng.range_i64(0, 45)),
            5 => Command::AddVariable {
                name: format!("x{}", rng.next_u64() % 1000),
            },
            6 => Command::EnableConstraint {
                constraint: stem_core::ConstraintId::from_index(1),
                enabled: rng.next_bool(),
            },
            _ => set(2, rng.range_i64(0, 90)),
        })
        .collect()
}

/// Canonical observation: the session's dump (names, values,
/// justifications) and violation set, rendered to codec bytes. Two
/// engines agree on a session iff these bytes are identical.
fn observe(engine: &Engine, s: SessionId) -> Vec<u8> {
    let out = engine
        .apply(s, vec![Command::DumpValues, Command::CheckAll])
        .expect("read-only observation always serves");
    let mut buf = Vec::new();
    for o in out.outputs {
        match o {
            Output::Dump(entries) => {
                for (name, value, just) in entries {
                    put_str(&mut buf, &name);
                    put_value(&mut buf, &value);
                    put_justification(&mut buf, &just);
                }
            }
            Output::Violations(vs) => {
                for v in vs {
                    put_violation(&mut buf, &v);
                }
            }
            other => panic!("unexpected output {other:?}"),
        }
    }
    buf
}

/// Ships every sealed segment to the follower, in index order.
fn ship_all(leader: &Engine, follower: &Engine) -> Vec<u64> {
    let mut sealed = leader.seal_wal().expect("leader has a log");
    sealed.sort_unstable();
    for &ix in &sealed {
        let bytes = leader.read_wal_segment(ix).expect("sealed segment reads");
        follower.ingest_segment(&bytes).expect("segment ingests");
    }
    sealed
}

#[test]
fn follower_matches_leader_byte_for_byte_across_25_seeds() {
    for seed in 0..25u64 {
        let dir = temp_dir(&format!("seed{seed}"));
        let leader = Engine::open_with_config(&dir, leader_config(), ship_opts()).unwrap();
        // Volatile reference engine: sees the whole workload, first half
        // and second, and is the oracle for the promoted follower.
        let reference = Engine::new(1);
        let sessions: Vec<SessionId> = (0..3).map(|_| leader.create_session()).collect();
        for &s in &sessions {
            assert_eq!(reference.create_session(), s);
            build_session(&leader, s);
            build_session(&reference, s);
        }

        // `Command` is intentionally not `Clone` (it can carry a kind
        // factory), so each engine draws the identical batch stream from
        // its own twin of the seeded rng.
        let mut rng_l = SplitMix64::new(0xF0110 + seed);
        let mut rng_r = SplitMix64::new(0xF0110 + seed);

        let mut violations = 0usize;
        for _ in 0..10 {
            for &s in &sessions {
                let rl = leader.apply(s, gen_batch(&mut rng_l));
                let rr = reference.apply(s, gen_batch(&mut rng_r));
                assert_eq!(format!("{rl:?}"), format!("{rr:?}"), "seed {seed}");
                violations += usize::from(rl.is_err());
            }
        }
        assert!(violations > 0, "seed {seed}: tripwire never fired");

        // Every 5th seed also exercises the snapshot bootstrap: the
        // follower ingests a leader checkpoint first, and the shipped
        // segments (whose records the snapshot already covers) dedupe
        // against its cursors.
        let follower = Engine::replica(2);
        assert!(follower.is_replica());
        if seed % 5 == 0 {
            assert!(leader.checkpoint().unwrap());
            let snap = leader
                .wal_snapshot_bytes()
                .unwrap()
                .expect("checkpoint wrote a snapshot");
            let installed = follower.ingest_snapshot(&snap).unwrap();
            assert_eq!(installed, 3, "seed {seed}: all sessions bootstrapped");
        }
        let sealed = ship_all(&leader, &follower);
        assert!(
            seed % 5 == 0 || sealed.len() > 1,
            "seed {seed}: workload must span several segments"
        );

        for &s in &sessions {
            assert_eq!(
                observe(&leader, s),
                observe(&follower, s),
                "seed {seed}: follower diverged from leader on {s}"
            );
        }
        let stats = follower.stats();
        assert_eq!(stats.segments_ingested, sealed.len() as u64);
        assert!(seed % 5 == 0 || stats.records_replayed > 0);

        // Re-shipping a segment is a no-op: every record dedupes.
        if let Some(&ix) = sealed.first() {
            let bytes = leader.read_wal_segment(ix).unwrap();
            let report = follower.ingest_segment(&bytes).unwrap();
            assert_eq!(report.applied, 0, "seed {seed}: re-ship re-applied");
            assert_eq!(report.anomalies, 0);
        }

        // Mid-stream leader kill: drop without clean shutdown, promote.
        let pre_promotion = observe(&follower, sessions[0]);
        drop(leader);
        let err = follower.apply(sessions[0], vec![set(0, 1)]).unwrap_err();
        assert!(matches!(err, BatchError::ReadOnlyReplica), "{err}");
        assert_eq!(
            observe(&follower, sessions[0]),
            pre_promotion,
            "seed {seed}: refused batch mutated replica state"
        );
        assert!(follower.promote());
        assert!(!follower.is_replica());

        // Second half lands on the promoted follower (continuing the
        // leader's rng stream); the reference saw the whole stream on one
        // engine and must agree byte-for-byte.
        for _ in 0..11 {
            for &s in &sessions {
                let rf = follower.apply(s, gen_batch(&mut rng_l));
                let rr = reference.apply(s, gen_batch(&mut rng_r));
                assert_eq!(format!("{rf:?}"), format!("{rr:?}"), "seed {seed}");
            }
        }
        for &s in &sessions {
            assert_eq!(
                observe(&follower, s),
                observe(&reference, s),
                "seed {seed}: promoted follower diverged from reference on {s}"
            );
        }
        // The promoted follower never hands out an id the stream used.
        assert_eq!(follower.create_session(), SessionId(3));
        let _ = fs::remove_dir_all(&dir);
    }
}

#[test]
fn closed_sessions_do_not_resurrect_on_the_follower() {
    let dir = temp_dir("close");
    let leader = Engine::open_with_config(&dir, leader_config(), ship_opts()).unwrap();
    let s0 = leader.create_session();
    let s1 = leader.create_session();
    build_session(&leader, s0);
    build_session(&leader, s1);
    leader.apply(s0, vec![set(0, 5)]).unwrap();
    assert!(leader.close_session(s1));

    let follower = Engine::replica(2);
    ship_all(&leader, &follower);
    assert_eq!(observe(&leader, s0), observe(&follower, s0));
    assert!(
        matches!(
            follower
                .apply(s1, vec![Command::DumpValues])
                .unwrap()
                .outputs
                .remove(0),
            Output::Dump(d) if d.is_empty()
        ),
        "closed session resurrected on the follower"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn segment_gap_quarantines_follower_sessions() {
    let dir = temp_dir("gap");
    let leader = Engine::open_with_config(&dir, leader_config(), ship_opts()).unwrap();
    let s = leader.create_session();
    build_session(&leader, s);
    for i in 0..60 {
        leader.apply(s, vec![set(0, i)]).unwrap();
    }
    let mut sealed = leader.seal_wal().unwrap();
    sealed.sort_unstable();
    assert!(sealed.len() >= 3, "need segments to drop one");

    // Ship the first and last segment, skipping the middle: the follower
    // sees a sequence gap, quarantines the session, and reports anomalies
    // instead of serving a state the leader never had.
    let follower = Engine::replica(2);
    follower
        .ingest_segment(&leader.read_wal_segment(sealed[0]).unwrap())
        .unwrap();
    let report = follower
        .ingest_segment(&leader.read_wal_segment(*sealed.last().unwrap()).unwrap())
        .unwrap();
    assert!(report.anomalies > 0, "gap not detected: {report:?}");
    assert!(follower.session_stats(s).quarantined);
    assert!(follower.stats().sessions_quarantined >= 1);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn ingestion_requires_replica_mode_and_strict_segments() {
    let dir = temp_dir("guards");
    let leader = Engine::open_with_config(&dir, leader_config(), ship_opts()).unwrap();
    let s = leader.create_session();
    build_session(&leader, s);
    let sealed = leader.seal_wal().unwrap();
    let bytes = leader.read_wal_segment(sealed[0]).unwrap();

    // A writable engine refuses ingestion outright.
    let writable = Engine::new(1);
    assert!(writable.ingest_segment(&bytes).is_err());
    assert!(writable.ingest_snapshot(&bytes).is_err());

    // A torn shipped segment is corruption, not a tail to salvage: the
    // shipping path re-reads sealed, fsynced files, so unlike crash
    // recovery there is nothing lenient about a short read.
    let follower = Engine::replica(1);
    assert!(follower.ingest_segment(&bytes[..bytes.len() - 3]).is_err());
    assert!(follower.ingest_segment(b"not a segment").is_err());
    // Non-durable engines have nothing to ship.
    assert!(writable.seal_wal().is_err());
    assert!(writable.read_wal_segment(0).is_err());
    assert!(writable.wal_snapshot_bytes().unwrap().is_none());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn group_commit_engine_ships_like_commit_sync() {
    // Group commit changes *when* fsync happens, not what is logged: a
    // follower fed a group-commit leader's segments must match it.
    let dir = temp_dir("group");
    let opts = DurabilityOptions {
        mode: Durability::GroupCommit,
        ..ship_opts()
    };
    let leader = Engine::open_with_config(&dir, leader_config(), opts).unwrap();
    let sessions: Vec<SessionId> = (0..3).map(|_| leader.create_session()).collect();
    let mut rng = SplitMix64::new(0x96C0);
    for &s in &sessions {
        build_session(&leader, s);
    }
    for _ in 0..15 {
        for &s in &sessions {
            let _ = leader.apply(s, gen_batch(&mut rng));
        }
    }
    assert!(
        leader.stats().wal_group_syncs > 0,
        "no group flush happened"
    );

    let follower = Engine::replica(2);
    ship_all(&leader, &follower);
    for &s in &sessions {
        assert_eq!(observe(&leader, s), observe(&follower, s), "{s}");
    }
    let _ = fs::remove_dir_all(&dir);
}
