//! # stem-compilers — tile-based module compilers (thesis §6.4.1)
//!
//! Module compilers "generate a compiled cell's internal structure based
//! on the placement, orientation and size parameters specified in the
//! compilers", treating subcells as black boxes seen through
//! [`CompilerView`]s (bounding box + sorted border pins only, lazily
//! recalculated). Butting io-pins establish connections between their
//! respective signals; remaining boundary pins export as io-signals of the
//! compiled cell.
//!
//! ```
//! use stem_compilers::VectorCompiler;
//! use stem_design::{Design, SignalDir};
//! use stem_geom::{Point, Rect};
//!
//! let mut d = Design::new();
//! let slice = d.define_class("SLICE");
//! d.add_signal(slice, "w", SignalDir::Input);
//! d.add_signal(slice, "e", SignalDir::Output);
//! d.set_class_bounding_box(slice, Rect::with_extent(Point::ORIGIN, 10, 6)).unwrap();
//! d.set_signal_pin(slice, "w", Point::new(0, 3));
//! d.set_signal_pin(slice, "e", Point::new(10, 3));
//!
//! let row = d.define_class("ROW");
//! let built = VectorCompiler::new(slice, 4).compile(&mut d, row).unwrap();
//! assert_eq!(built.instances.len(), 4);
//! assert_eq!(built.nets.len(), 3 + 2, "3 butting nets + 2 exported ends");
//! ```

#![warn(missing_docs)]
mod compile;
mod layout;
mod view;

pub use compile::{
    clear_structure, CompileError, CompiledStructure, GraphCompiler, GrowDirection, MatrixCompiler,
    Placement, VectorCompiler, WordCompiler,
};
pub use layout::{AnyCompiler, StructureLayouts};
pub use view::{CompilerView, SidePins, ViewData};
