//! The `CompilerView` of thesis §6.4.1: a calculated view interfacing the
//! module compilers to database cells.
//!
//! "Only the bounding box and the io-pins of a subcell are visible through
//! its compiler view. Moreover, the compiler views organize the io-pins of
//! their models in four lists (top, bottom, left and right), sorted
//! according to their locations … Data in views are erased whenever their
//! models change, and recalculation is triggered the next time the
//! compilation routines access the views for data."

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use stem_design::{CellClassId, ChangeKey, Design, ViewHandle};
use stem_geom::{Point, Rect, Side};

/// Io-pins of a cell grouped by bounding-box side, sorted by increasing
/// coordinate along the side.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SidePins {
    /// Pins on the top edge, sorted by x.
    pub top: Vec<(String, Point)>,
    /// Pins on the bottom edge, sorted by x.
    pub bottom: Vec<(String, Point)>,
    /// Pins on the left edge, sorted by y.
    pub left: Vec<(String, Point)>,
    /// Pins on the right edge, sorted by y.
    pub right: Vec<(String, Point)>,
}

/// Cached view data: class bounding box plus sorted pins.
#[derive(Debug, Clone, PartialEq)]
pub struct ViewData {
    /// The class bounding box.
    pub bbox: Rect,
    /// Border pins by side.
    pub pins: SidePins,
}

/// A lazily recalculated compiler view over one cell class.
///
/// Erasure is driven by the design's `#changed:key` broadcast; pure
/// [`ChangeKey::Values`] changes do not erase (the geometry is unchanged).
#[derive(Debug)]
pub struct CompilerView {
    model: CellClassId,
    cache: Rc<RefCell<Option<ViewData>>>,
    recalcs: Rc<Cell<usize>>,
    handle: ViewHandle,
}

impl CompilerView {
    /// Creates a view over `model`, registering its erasure callback.
    pub fn new(d: &mut Design, model: CellClassId) -> Self {
        let cache: Rc<RefCell<Option<ViewData>>> = Rc::new(RefCell::new(None));
        let cache2 = cache.clone();
        let handle = d.register_view(model, move |key| {
            if key != ChangeKey::Values {
                *cache2.borrow_mut() = None;
            }
        });
        CompilerView {
            model,
            cache,
            recalcs: Rc::new(Cell::new(0)),
            handle,
        }
    }

    /// The model class.
    pub fn model(&self) -> CellClassId {
        self.model
    }

    /// How many times the view data has been recalculated (for the lazy
    /// consistency experiments, DESIGN.md E13).
    pub fn recalc_count(&self) -> usize {
        self.recalcs.get()
    }

    /// Unregisters the view's erasure callback.
    pub fn release(&self, d: &mut Design) {
        d.unregister_view(self.handle);
    }

    /// The view data, recalculating if erased. Returns `None` when the
    /// model has no bounding box yet.
    pub fn data(&self, d: &mut Design) -> Option<ViewData> {
        if let Some(data) = self.cache.borrow().clone() {
            return Some(data);
        }
        let bbox = d.class_bounding_box(self.model)?;
        let mut pins = SidePins::default();
        for s in d.signals(self.model).to_vec() {
            let Some(p) = s.pin else { continue };
            match Side::of(bbox, p) {
                Some(Side::Top) => pins.top.push((s.name.clone(), p)),
                Some(Side::Bottom) => pins.bottom.push((s.name.clone(), p)),
                Some(Side::Left) => pins.left.push((s.name.clone(), p)),
                Some(Side::Right) => pins.right.push((s.name.clone(), p)),
                None => {}
            }
        }
        pins.top.sort_by_key(|(_, p)| p.x);
        pins.bottom.sort_by_key(|(_, p)| p.x);
        pins.left.sort_by_key(|(_, p)| p.y);
        pins.right.sort_by_key(|(_, p)| p.y);
        let data = ViewData { bbox, pins };
        *self.cache.borrow_mut() = Some(data.clone());
        self.recalcs.set(self.recalcs.get() + 1);
        Some(data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stem_design::SignalDir;

    fn model() -> (Design, CellClassId) {
        let mut d = Design::new();
        let c = d.define_class("SLICE");
        d.add_signal(c, "w", SignalDir::Input);
        d.add_signal(c, "e", SignalDir::Output);
        d.add_signal(c, "n", SignalDir::Input);
        d.set_class_bounding_box(c, Rect::with_extent(Point::ORIGIN, 10, 6))
            .unwrap();
        d.set_signal_pin(c, "w", Point::new(0, 3));
        d.set_signal_pin(c, "e", Point::new(10, 3));
        d.set_signal_pin(c, "n", Point::new(5, 6));
        (d, c)
    }

    #[test]
    fn sorts_pins_by_side() {
        let (mut d, c) = model();
        let v = CompilerView::new(&mut d, c);
        let data = v.data(&mut d).unwrap();
        assert_eq!(data.pins.left, vec![("w".to_string(), Point::new(0, 3))]);
        assert_eq!(data.pins.right, vec![("e".to_string(), Point::new(10, 3))]);
        assert_eq!(data.pins.top, vec![("n".to_string(), Point::new(5, 6))]);
        assert!(data.pins.bottom.is_empty());
    }

    #[test]
    fn caches_until_model_changes() {
        let (mut d, c) = model();
        let v = CompilerView::new(&mut d, c);
        v.data(&mut d).unwrap();
        v.data(&mut d).unwrap();
        assert_eq!(v.recalc_count(), 1, "second read served from cache");

        d.notify_changed(c, ChangeKey::Layout);
        v.data(&mut d).unwrap();
        assert_eq!(v.recalc_count(), 2, "erased and recalculated");
    }

    #[test]
    fn value_changes_do_not_erase() {
        let (mut d, c) = model();
        let v = CompilerView::new(&mut d, c);
        v.data(&mut d).unwrap();
        d.notify_changed(c, ChangeKey::Values);
        v.data(&mut d).unwrap();
        assert_eq!(v.recalc_count(), 1);
    }

    #[test]
    fn released_view_stops_erasing() {
        let (mut d, c) = model();
        let v = CompilerView::new(&mut d, c);
        v.data(&mut d).unwrap();
        v.release(&mut d);
        d.notify_changed(c, ChangeKey::Layout);
        // Cache still warm because the callback is gone.
        v.data(&mut d).unwrap();
        assert_eq!(v.recalc_count(), 1);
    }
}
