//! The tile-based module compilers of thesis §6.4.1 (after [Law85]):
//! "a VectorCompiler builds a linear array of subcells, a WordCompiler
//! builds a vector of subcells with special end-cells, and a
//! MatrixCompiler generates a two-dimensional array of subcells. A
//! GraphCompiler allows the user to graphically specify module builders
//! that are able to generate more complicated structures."
//!
//! All compilers reduce to the [`GraphCompiler`]: place subcells, connect
//! butting io-pins (pins landing on the same point), honour disallowed
//! pins ("which withdraws the non-connecting io-pins from the boundary"),
//! and export remaining boundary pins as io-signals of the compiled cell.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::error::Error;
use std::fmt;

use crate::view::CompilerView;
use stem_core::Violation;
use stem_design::{CellClassId, CellInstanceId, Design, NetId, SignalDir};
use stem_geom::{Point, Side, Transform};

/// Result of a compilation: what was built inside the target class.
#[derive(Debug, Clone)]
pub struct CompiledStructure {
    /// The placed subcells, in placement order.
    pub instances: Vec<CellInstanceId>,
    /// The nets created (butting + explicit groups + export nets).
    pub nets: Vec<NetId>,
    /// Names of the io-signals exported onto the compiled cell.
    pub exported: Vec<String>,
}

/// Why a compilation failed.
#[derive(Debug)]
pub enum CompileError {
    /// A placed class has no bounding box, so pins cannot be located.
    MissingBoundingBox(CellClassId),
    /// An explicit connection referenced an unknown placement name.
    UnknownInstance(String),
    /// An explicit connection referenced an unknown signal.
    UnknownSignal(String, String),
    /// Wiring raised a constraint violation (e.g. incompatible types).
    Violation(Violation),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::MissingBoundingBox(c) => {
                write!(f, "placed class {c} has no bounding box")
            }
            CompileError::UnknownInstance(n) => write!(f, "unknown placement {n:?}"),
            CompileError::UnknownSignal(i, s) => write!(f, "no signal {s:?} on placement {i:?}"),
            CompileError::Violation(v) => write!(f, "{v}"),
        }
    }
}

impl Error for CompileError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CompileError::Violation(v) => Some(v),
            _ => None,
        }
    }
}

impl From<Violation> for CompileError {
    fn from(v: Violation) -> Self {
        CompileError::Violation(v)
    }
}

/// One placement in a graph compilation.
#[derive(Debug, Clone)]
pub struct Placement {
    /// The class to place.
    pub class: CellClassId,
    /// Instance name (unique within the compilation).
    pub name: String,
    /// Placement transform.
    pub transform: Transform,
}

/// The general module builder (Fig. 6.2): explicit placements, butting
/// connections, disallowed pins, extra connection groups, boundary export.
#[derive(Debug, Default)]
pub struct GraphCompiler {
    placements: Vec<Placement>,
    disallowed: HashSet<(String, String)>,
    extra_nets: Vec<Vec<(String, String)>>,
    export_boundary: bool,
}

impl GraphCompiler {
    /// Creates an empty compiler with boundary export enabled.
    pub fn new() -> Self {
        GraphCompiler {
            export_boundary: true,
            ..Default::default()
        }
    }

    /// Places an instance of `class` named `name` at `transform`.
    pub fn place(
        &mut self,
        class: CellClassId,
        name: impl Into<String>,
        transform: Transform,
    ) -> &mut Self {
        self.placements.push(Placement {
            class,
            name: name.into(),
            transform,
        });
        self
    }

    /// Disallows connections on one pin; the pin is withdrawn from butting
    /// and from the exported boundary.
    pub fn disallow(
        &mut self,
        instance: impl Into<String>,
        signal: impl Into<String>,
    ) -> &mut Self {
        self.disallowed.insert((instance.into(), signal.into()));
        self
    }

    /// Adds an explicit net over `(instance, signal)` pins that do not
    /// butt geometrically.
    pub fn connect_group(&mut self, pins: &[(&str, &str)]) -> &mut Self {
        self.extra_nets.push(
            pins.iter()
                .map(|(i, s)| (i.to_string(), s.to_string()))
                .collect(),
        );
        self
    }

    /// Enables or disables exporting boundary pins as io-signals.
    pub fn set_export_boundary(&mut self, export: bool) -> &mut Self {
        self.export_boundary = export;
        self
    }

    /// Builds the structure inside `target`.
    ///
    /// # Errors
    ///
    /// See [`CompileError`].
    pub fn compile(
        &self,
        d: &mut Design,
        target: CellClassId,
    ) -> Result<CompiledStructure, CompileError> {
        let mut out = CompiledStructure {
            instances: Vec::new(),
            nets: Vec::new(),
            exported: Vec::new(),
        };
        // Compiler views per distinct placed class (§6.4.1: subcells are
        // black boxes seen through views).
        let mut views: HashMap<CellClassId, CompilerView> = HashMap::new();
        let mut by_name: HashMap<String, CellInstanceId> = HashMap::new();

        // 1. Place.
        for p in &self.placements {
            views
                .entry(p.class)
                .or_insert_with(|| CompilerView::new(d, p.class));
            if views[&p.class].data(d).is_none() {
                return Err(CompileError::MissingBoundingBox(p.class));
            }
            let inst = d
                .instantiate(p.class, target, p.name.clone(), p.transform)
                .map_err(CompileError::Violation)?;
            by_name.insert(p.name.clone(), inst);
            out.instances.push(inst);
        }

        // 2. Collect transformed pins.
        // BTreeMap keyed by point for deterministic net ordering.
        let mut groups: BTreeMap<Point, Vec<(CellInstanceId, String, SignalDir)>> = BTreeMap::new();
        let mut explicit_pins: HashSet<(CellInstanceId, String)> = HashSet::new();
        for group in &self.extra_nets {
            for (iname, sig) in group {
                let inst = *by_name
                    .get(iname)
                    .ok_or_else(|| CompileError::UnknownInstance(iname.clone()))?;
                explicit_pins.insert((inst, sig.clone()));
            }
        }
        for p in &self.placements {
            let inst = by_name[&p.name];
            let data = views[&p.class].data(d).expect("checked above");
            let all_pins = data
                .pins
                .top
                .iter()
                .chain(&data.pins.bottom)
                .chain(&data.pins.left)
                .chain(&data.pins.right);
            for (sig, pin) in all_pins {
                if self.disallowed.contains(&(p.name.clone(), sig.clone())) {
                    continue;
                }
                if explicit_pins.contains(&(inst, sig.clone())) {
                    continue;
                }
                let dir = d
                    .signal_def(p.class, sig)
                    .map(|s| s.dir)
                    .unwrap_or(SignalDir::InOut);
                groups
                    .entry(p.transform.apply(*pin))
                    .or_default()
                    .push((inst, sig.clone(), dir));
            }
        }

        // 3. Butting nets.
        let mut net_no = 0usize;
        let mut singletons: Vec<(Point, CellInstanceId, String, SignalDir)> = Vec::new();
        for (point, pins) in &groups {
            if pins.len() >= 2 {
                let net = d.add_net(target, format!("butt{net_no}"));
                net_no += 1;
                for (inst, sig, _) in pins {
                    d.connect(net, *inst, sig)
                        .map_err(CompileError::Violation)?;
                }
                out.nets.push(net);
            } else {
                let (inst, sig, dir) = pins[0].clone();
                singletons.push((*point, inst, sig, dir));
            }
        }

        // 4. Explicit connection groups.
        for group in &self.extra_nets {
            let net = d.add_net(target, format!("conn{net_no}"));
            net_no += 1;
            for (iname, sig) in group {
                let inst = *by_name
                    .get(iname)
                    .ok_or_else(|| CompileError::UnknownInstance(iname.clone()))?;
                let class = d.instance_class(inst);
                if d.signal_def(class, sig).is_none() {
                    return Err(CompileError::UnknownSignal(iname.clone(), sig.clone()));
                }
                d.connect(net, inst, sig).map_err(CompileError::Violation)?;
            }
            out.nets.push(net);
        }

        // 5. Export boundary singletons as io-signals of the compiled cell.
        if self.export_boundary {
            let Some(bbox) = d.class_bounding_box(target) else {
                return Ok(out);
            };
            for (point, inst, sig, dir) in singletons {
                if Side::of(bbox, point).is_none() {
                    continue;
                }
                let export = format!("{}_{}", d.instance_name(inst), sig);
                // Recompilation reuses surviving io-signals from a previous
                // generation instead of colliding on the name.
                if d.signal_def(target, &export).is_none() {
                    d.add_signal(target, export.clone(), dir);
                }
                d.set_signal_pin(target, &export, point);
                let net = d.add_net(target, format!("io_{export}"));
                d.connect(net, inst, &sig)
                    .map_err(CompileError::Violation)?;
                d.connect_io(net, &export)
                    .map_err(CompileError::Violation)?;
                out.nets.push(net);
                out.exported.push(export);
            }
        }
        for (_, v) in views {
            v.release(d);
        }
        Ok(out)
    }
}

/// Clears a compiled cell's internal structure — every subcell and net —
/// so a module compiler can regenerate it with new parameters (§6.4.1:
/// the compiler is the cell's `structureLayout`; re-specifying its
/// parameters rebuilds the structure). Io-signals survive, so connected
/// contexts keep their interface; dependency-directed erasure resets any
/// values the removed structure justified.
pub fn clear_structure(d: &mut Design, class: CellClassId) {
    for inst in d.subcells(class).to_vec() {
        d.remove_instance(inst);
    }
    for net in d.nets_of(class).to_vec() {
        d.remove_net(net);
    }
    d.invalidate_class_bbox(class);
}

/// Direction a vector grows in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GrowDirection {
    /// Placements advance in +x.
    #[default]
    Right,
    /// Placements advance in +y.
    Up,
}

/// Linear array of `count` copies of one cell (§6.4.1).
#[derive(Debug, Clone)]
pub struct VectorCompiler {
    /// Cell to repeat.
    pub cell: CellClassId,
    /// Number of copies.
    pub count: usize,
    /// Gap between copies in lambda (0 = abutting).
    pub spacing: i64,
    /// Growth direction.
    pub direction: GrowDirection,
}

impl VectorCompiler {
    /// Creates an abutting vector.
    pub fn new(cell: CellClassId, count: usize) -> Self {
        VectorCompiler {
            cell,
            count,
            spacing: 0,
            direction: GrowDirection::Right,
        }
    }

    /// Builds the vector inside `target`.
    ///
    /// # Errors
    ///
    /// See [`CompileError`].
    pub fn compile(
        &self,
        d: &mut Design,
        target: CellClassId,
    ) -> Result<CompiledStructure, CompileError> {
        let bbox = d
            .class_bounding_box(self.cell)
            .ok_or(CompileError::MissingBoundingBox(self.cell))?;
        let step = match self.direction {
            GrowDirection::Right => Point::new(bbox.width() + self.spacing, 0),
            GrowDirection::Up => Point::new(0, bbox.height() + self.spacing),
        };
        let mut g = GraphCompiler::new();
        for i in 0..self.count {
            let offset = Point::new(step.x * i as i64, step.y * i as i64);
            g.place(
                self.cell,
                format!("{}.{}", d.class_name(self.cell), i),
                Transform::translation(offset),
            );
        }
        g.compile(d, target)
    }
}

/// Vector with special end cells (§6.4.1).
#[derive(Debug, Clone)]
pub struct WordCompiler {
    /// Left end-cell.
    pub left_end: CellClassId,
    /// Repeated body cell.
    pub body: CellClassId,
    /// Right end-cell.
    pub right_end: CellClassId,
    /// Number of body copies.
    pub count: usize,
}

impl WordCompiler {
    /// Creates a word compiler.
    pub fn new(
        left_end: CellClassId,
        body: CellClassId,
        right_end: CellClassId,
        count: usize,
    ) -> Self {
        WordCompiler {
            left_end,
            body,
            right_end,
            count,
        }
    }

    /// Builds `left_end body × count right_end` inside `target`.
    ///
    /// # Errors
    ///
    /// See [`CompileError`].
    pub fn compile(
        &self,
        d: &mut Design,
        target: CellClassId,
    ) -> Result<CompiledStructure, CompileError> {
        let w_left = d
            .class_bounding_box(self.left_end)
            .ok_or(CompileError::MissingBoundingBox(self.left_end))?
            .width();
        let w_body = d
            .class_bounding_box(self.body)
            .ok_or(CompileError::MissingBoundingBox(self.body))?
            .width();
        let mut g = GraphCompiler::new();
        g.place(self.left_end, "left", Transform::IDENTITY);
        let mut x = w_left;
        for i in 0..self.count {
            g.place(
                self.body,
                format!("body.{i}"),
                Transform::translation(Point::new(x, 0)),
            );
            x += w_body;
        }
        g.place(
            self.right_end,
            "right",
            Transform::translation(Point::new(x, 0)),
        );
        g.compile(d, target)
    }
}

/// Two-dimensional array of one cell (§6.4.1).
#[derive(Debug, Clone)]
pub struct MatrixCompiler {
    /// Cell to tile.
    pub cell: CellClassId,
    /// Rows (y direction).
    pub rows: usize,
    /// Columns (x direction).
    pub cols: usize,
}

impl MatrixCompiler {
    /// Creates an abutting matrix.
    pub fn new(cell: CellClassId, rows: usize, cols: usize) -> Self {
        MatrixCompiler { cell, rows, cols }
    }

    /// Builds the matrix inside `target`.
    ///
    /// # Errors
    ///
    /// See [`CompileError`].
    pub fn compile(
        &self,
        d: &mut Design,
        target: CellClassId,
    ) -> Result<CompiledStructure, CompileError> {
        let bbox = d
            .class_bounding_box(self.cell)
            .ok_or(CompileError::MissingBoundingBox(self.cell))?;
        let mut g = GraphCompiler::new();
        for r in 0..self.rows {
            for c in 0..self.cols {
                g.place(
                    self.cell,
                    format!("m{r}_{c}"),
                    Transform::translation(Point::new(
                        bbox.width() * c as i64,
                        bbox.height() * r as i64,
                    )),
                );
            }
        }
        g.compile(d, target)
    }
}
