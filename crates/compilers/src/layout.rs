//! The `structureLayout` association of thesis §6.4.1: "the cell designer
//! specifies the kind of module compiler to be used for the cell, and an
//! instance of that compiler class is created and assigned to the cell as
//! its structureLayout instance variable". Re-specifying the compiler's
//! parameters regenerates the cell's structure.

use crate::compile::{
    clear_structure, CompileError, CompiledStructure, MatrixCompiler, VectorCompiler, WordCompiler,
};
use std::collections::HashMap;
use stem_design::{CellClassId, Design};

/// Any of the parameterised (non-graph) module compilers, as storable data.
#[derive(Debug, Clone)]
pub enum AnyCompiler {
    /// Linear array.
    Vector(VectorCompiler),
    /// Vector with end cells.
    Word(WordCompiler),
    /// Two-dimensional array.
    Matrix(MatrixCompiler),
}

impl AnyCompiler {
    /// Runs the compiler into `target`.
    ///
    /// # Errors
    ///
    /// See [`CompileError`].
    pub fn compile(
        &self,
        d: &mut Design,
        target: CellClassId,
    ) -> Result<CompiledStructure, CompileError> {
        match self {
            AnyCompiler::Vector(c) => c.compile(d, target),
            AnyCompiler::Word(c) => c.compile(d, target),
            AnyCompiler::Matrix(c) => c.compile(d, target),
        }
    }
}

impl From<VectorCompiler> for AnyCompiler {
    fn from(c: VectorCompiler) -> Self {
        AnyCompiler::Vector(c)
    }
}

impl From<WordCompiler> for AnyCompiler {
    fn from(c: WordCompiler) -> Self {
        AnyCompiler::Word(c)
    }
}

impl From<MatrixCompiler> for AnyCompiler {
    fn from(c: MatrixCompiler) -> Self {
        AnyCompiler::Matrix(c)
    }
}

/// Registry of compiled cells' structure generators.
#[derive(Debug, Clone, Default)]
pub struct StructureLayouts {
    map: HashMap<CellClassId, AnyCompiler>,
}

impl StructureLayouts {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Assigns a compiler to a cell and builds its structure.
    ///
    /// # Errors
    ///
    /// See [`CompileError`]; on failure nothing is assigned.
    pub fn assign(
        &mut self,
        d: &mut Design,
        target: CellClassId,
        compiler: impl Into<AnyCompiler>,
    ) -> Result<CompiledStructure, CompileError> {
        let compiler = compiler.into();
        let built = compiler.compile(d, target)?;
        self.map.insert(target, compiler);
        Ok(built)
    }

    /// The compiler assigned to a cell, if any.
    pub fn layout_of(&self, class: CellClassId) -> Option<&AnyCompiler> {
        self.map.get(&class)
    }

    /// Re-specifies a compiled cell's parameters and regenerates its
    /// structure (old subcells and nets are cleared first; the interface
    /// persists).
    ///
    /// # Errors
    ///
    /// See [`CompileError`].
    ///
    /// # Panics
    ///
    /// Panics if the cell has no assigned compiler.
    pub fn regenerate(
        &mut self,
        d: &mut Design,
        target: CellClassId,
        compiler: impl Into<AnyCompiler>,
    ) -> Result<CompiledStructure, CompileError> {
        assert!(
            self.map.contains_key(&target),
            "cell has no structureLayout; use assign first"
        );
        clear_structure(d, target);
        let compiler = compiler.into();
        let built = compiler.compile(d, target)?;
        self.map.insert(target, compiler);
        Ok(built)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stem_design::SignalDir;
    use stem_geom::{Point, Rect};

    fn slice(d: &mut Design) -> CellClassId {
        let c = d.define_class("SLICE");
        d.add_signal(c, "w", SignalDir::Input);
        d.add_signal(c, "e", SignalDir::Output);
        d.set_class_bounding_box(c, Rect::with_extent(Point::ORIGIN, 10, 10))
            .unwrap();
        d.set_signal_pin(c, "w", Point::new(0, 5));
        d.set_signal_pin(c, "e", Point::new(10, 5));
        c
    }

    #[test]
    fn assign_then_regenerate_with_new_parameters() {
        let mut d = Design::new();
        let s = slice(&mut d);
        let row = d.define_class("ROW");
        let mut layouts = StructureLayouts::new();
        let built = layouts
            .assign(&mut d, row, VectorCompiler::new(s, 3))
            .unwrap();
        assert_eq!(built.instances.len(), 3);
        assert!(matches!(
            layouts.layout_of(row),
            Some(AnyCompiler::Vector(_))
        ));

        let built = layouts
            .regenerate(&mut d, row, VectorCompiler::new(s, 6))
            .unwrap();
        assert_eq!(built.instances.len(), 6);
        assert_eq!(d.class_bounding_box(row).unwrap().width(), 60);
    }

    #[test]
    #[should_panic(expected = "no structureLayout")]
    fn regenerate_requires_assignment() {
        let mut d = Design::new();
        let s = slice(&mut d);
        let row = d.define_class("ROW");
        let mut layouts = StructureLayouts::new();
        let _ = layouts.regenerate(&mut d, row, VectorCompiler::new(s, 2));
    }

    #[test]
    fn matrix_layout_roundtrip() {
        let mut d = Design::new();
        let tile = d.define_class("TILE");
        d.add_signal(tile, "n", SignalDir::InOut);
        d.add_signal(tile, "s", SignalDir::InOut);
        d.set_class_bounding_box(tile, Rect::with_extent(Point::ORIGIN, 10, 10))
            .unwrap();
        d.set_signal_pin(tile, "n", Point::new(5, 10));
        d.set_signal_pin(tile, "s", Point::new(5, 0));
        let arr = d.define_class("ARR");
        let mut layouts = StructureLayouts::new();
        layouts
            .assign(&mut d, arr, MatrixCompiler::new(tile, 2, 3))
            .unwrap();
        let built = layouts
            .regenerate(&mut d, arr, MatrixCompiler::new(tile, 3, 3))
            .unwrap();
        assert_eq!(built.instances.len(), 9);
    }
}
