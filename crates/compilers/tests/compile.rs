//! E13 — thesis Fig. 6.2: building a 5-bit adder from 2-bit slices with a
//! GraphCompiler, plus the other compilers and the lazy-view behaviour.

use stem_compilers::{
    CompileError, GraphCompiler, GrowDirection, MatrixCompiler, VectorCompiler, WordCompiler,
};
use stem_design::{CellClassId, Design, SignalDir};
use stem_geom::{Point, Rect, Transform};

/// A 2-bit adder slice: carry in on the left, carry out on the right,
/// operand/sum pins on top/bottom.
fn adder_slice2(d: &mut Design, name: &str) -> CellClassId {
    let c = d.define_class(name);
    d.add_signal(c, "cin", SignalDir::Input);
    d.add_signal(c, "cout", SignalDir::Output);
    for i in 0..2 {
        d.add_signal(c, format!("a{i}"), SignalDir::Input);
        d.add_signal(c, format!("b{i}"), SignalDir::Input);
        d.add_signal(c, format!("s{i}"), SignalDir::Output);
    }
    d.set_class_bounding_box(c, Rect::with_extent(Point::ORIGIN, 20, 10))
        .unwrap();
    d.set_signal_pin(c, "cin", Point::new(0, 5));
    d.set_signal_pin(c, "cout", Point::new(20, 5));
    for i in 0..2i64 {
        d.set_signal_pin(c, &format!("a{i}"), Point::new(3 + 10 * i, 10));
        d.set_signal_pin(c, &format!("b{i}"), Point::new(7 + 10 * i, 10));
        d.set_signal_pin(c, &format!("s{i}"), Point::new(5 + 10 * i, 0));
    }
    c
}

/// A 1-bit adder slice with the same pitch.
fn adder_slice1(d: &mut Design, name: &str) -> CellClassId {
    let c = d.define_class(name);
    d.add_signal(c, "cin", SignalDir::Input);
    d.add_signal(c, "cout", SignalDir::Output);
    d.add_signal(c, "a0", SignalDir::Input);
    d.add_signal(c, "b0", SignalDir::Input);
    d.add_signal(c, "s0", SignalDir::Output);
    d.set_class_bounding_box(c, Rect::with_extent(Point::ORIGIN, 10, 10))
        .unwrap();
    d.set_signal_pin(c, "cin", Point::new(0, 5));
    d.set_signal_pin(c, "cout", Point::new(10, 5));
    d.set_signal_pin(c, "a0", Point::new(3, 10));
    d.set_signal_pin(c, "b0", Point::new(7, 10));
    d.set_signal_pin(c, "s0", Point::new(5, 0));
    c
}

/// Fig. 6.2: a 5-bit adder built from two 2-bit slices plus a 1-bit slice;
/// butting carry pins chain automatically, everything else exports.
#[test]
fn fig6_2_five_bit_adder_with_graph_compiler() {
    let mut d = Design::new();
    let s2 = adder_slice2(&mut d, "SLICE2");
    let s1 = adder_slice1(&mut d, "SLICE1");
    let adder5 = d.define_class("ADDER5");

    let mut g = GraphCompiler::new();
    g.place(s2, "lo", Transform::IDENTITY)
        .place(s2, "mid", Transform::translation(Point::new(20, 0)))
        .place(s1, "hi", Transform::translation(Point::new(40, 0)));
    let built = g.compile(&mut d, adder5).unwrap();

    assert_eq!(built.instances.len(), 3);
    assert_eq!(
        d.class_bounding_box(adder5),
        Some(Rect::with_extent(Point::ORIGIN, 50, 10))
    );

    // Two internal carry nets: lo.cout↔mid.cin and mid.cout↔hi.cin.
    let butt_nets: Vec<_> = built
        .nets
        .iter()
        .filter(|&&n| d.net_name(n).starts_with("butt"))
        .collect();
    assert_eq!(butt_nets.len(), 2);

    // Exports: 5×(a,b,s) + cin + cout = 17 io-signals.
    assert_eq!(built.exported.len(), 17);
    assert!(built.exported.contains(&"lo_cin".to_string()));
    assert!(built.exported.contains(&"hi_cout".to_string()));
    assert!(built.exported.contains(&"mid_s1".to_string()));
    assert_eq!(d.signals(adder5).len(), 17);
}

#[test]
fn disallowed_pins_are_withdrawn() {
    let mut d = Design::new();
    let s2 = adder_slice2(&mut d, "SLICE2");
    let top = d.define_class("TOP");
    let mut g = GraphCompiler::new();
    g.place(s2, "only", Transform::IDENTITY);
    g.disallow("only", "cin").disallow("only", "cout");
    let built = g.compile(&mut d, top).unwrap();
    // Carries not exported ("withdraws the non-connecting io-pins from
    // the boundary").
    assert!(!built.exported.iter().any(|e| e.contains("cin")));
    assert!(!built.exported.iter().any(|e| e.contains("cout")));
    assert_eq!(built.exported.len(), 6);
}

#[test]
fn explicit_connection_groups() {
    let mut d = Design::new();
    let s1 = adder_slice1(&mut d, "SLICE1");
    let top = d.define_class("TOP");
    let mut g = GraphCompiler::new();
    // Two slices far apart (no butting); wire carry explicitly.
    g.place(s1, "a", Transform::IDENTITY).place(
        s1,
        "b",
        Transform::translation(Point::new(100, 0)),
    );
    g.connect_group(&[("a", "cout"), ("b", "cin")]);
    let built = g.compile(&mut d, top).unwrap();
    let conn = built
        .nets
        .iter()
        .find(|&&n| d.net_name(n).starts_with("conn"))
        .copied()
        .unwrap();
    assert_eq!(d.net_connections(conn).len(), 2);
    // The explicitly wired pins are not exported.
    assert!(!built.exported.contains(&"a_cout".to_string()));
    assert!(!built.exported.contains(&"b_cin".to_string()));
}

#[test]
fn vector_compiler_chains_carries() {
    let mut d = Design::new();
    let s1 = adder_slice1(&mut d, "SLICE1");
    let row = d.define_class("ROW8");
    let built = VectorCompiler::new(s1, 8).compile(&mut d, row).unwrap();
    assert_eq!(built.instances.len(), 8);
    let butt = built
        .nets
        .iter()
        .filter(|&&n| d.net_name(n).starts_with("butt"))
        .count();
    assert_eq!(butt, 7, "seven internal carry nets");
    assert_eq!(d.class_bounding_box(row).unwrap().width(), 80);
}

#[test]
fn vector_compiler_grows_up() {
    let mut d = Design::new();
    let s1 = adder_slice1(&mut d, "SLICE1");
    let col = d.define_class("COL");
    let mut v = VectorCompiler::new(s1, 3);
    v.direction = GrowDirection::Up;
    let built = v.compile(&mut d, col).unwrap();
    assert_eq!(built.instances.len(), 3);
    assert_eq!(d.class_bounding_box(col).unwrap().height(), 30);
}

#[test]
fn word_compiler_uses_end_cells() {
    let mut d = Design::new();
    // End cells terminate the carry chain.
    let lend = d.define_class("LEND");
    d.add_signal(lend, "cout", SignalDir::Output);
    d.set_class_bounding_box(lend, Rect::with_extent(Point::ORIGIN, 4, 10))
        .unwrap();
    d.set_signal_pin(lend, "cout", Point::new(4, 5));
    let rend = d.define_class("REND");
    d.add_signal(rend, "cin", SignalDir::Input);
    d.set_class_bounding_box(rend, Rect::with_extent(Point::ORIGIN, 4, 10))
        .unwrap();
    d.set_signal_pin(rend, "cin", Point::new(0, 5));
    let s1 = adder_slice1(&mut d, "SLICE1");

    let word = d.define_class("WORD4");
    let built = WordCompiler::new(lend, s1, rend, 4)
        .compile(&mut d, word)
        .unwrap();
    assert_eq!(built.instances.len(), 6);
    // No carry pins remain on the boundary.
    assert!(!built
        .exported
        .iter()
        .any(|e| e.contains("cin") || e.contains("cout")));
    assert_eq!(d.class_bounding_box(word).unwrap().width(), 4 + 40 + 4);
}

#[test]
fn matrix_compiler_tiles_2d() {
    let mut d = Design::new();
    // A tile with north/south and east/west feedthroughs.
    let tile = d.define_class("TILE");
    d.add_signal(tile, "n", SignalDir::InOut);
    d.add_signal(tile, "s", SignalDir::InOut);
    d.add_signal(tile, "e", SignalDir::InOut);
    d.add_signal(tile, "w", SignalDir::InOut);
    d.set_class_bounding_box(tile, Rect::with_extent(Point::ORIGIN, 10, 10))
        .unwrap();
    d.set_signal_pin(tile, "n", Point::new(5, 10));
    d.set_signal_pin(tile, "s", Point::new(5, 0));
    d.set_signal_pin(tile, "e", Point::new(10, 5));
    d.set_signal_pin(tile, "w", Point::new(0, 5));

    let arr = d.define_class("ARR");
    let built = MatrixCompiler::new(tile, 3, 4)
        .compile(&mut d, arr)
        .unwrap();
    assert_eq!(built.instances.len(), 12);
    let butt = built
        .nets
        .iter()
        .filter(|&&n| d.net_name(n).starts_with("butt"))
        .count();
    // Internal seams: 3 rows × 3 vertical seams + 2 horizontal seams × 4.
    assert_eq!(butt, 3 * 3 + 2 * 4);
    assert_eq!(
        d.class_bounding_box(arr),
        Some(Rect::with_extent(Point::ORIGIN, 40, 30))
    );
    // Boundary pins exported: 4 top + 4 bottom + 3 left + 3 right.
    assert_eq!(built.exported.len(), 14);
}

#[test]
fn missing_bbox_is_reported() {
    let mut d = Design::new();
    let c = d.define_class("NOBOX");
    let t = d.define_class("T");
    let err = VectorCompiler::new(c, 2).compile(&mut d, t).unwrap_err();
    assert!(matches!(err, CompileError::MissingBoundingBox(_)));
}

#[test]
fn unknown_instance_in_group_is_reported() {
    let mut d = Design::new();
    let s1 = adder_slice1(&mut d, "SLICE1");
    let t = d.define_class("T");
    let mut g = GraphCompiler::new();
    g.place(s1, "a", Transform::IDENTITY);
    g.connect_group(&[("a", "cout"), ("ghost", "cin")]);
    let err = g.compile(&mut d, t).unwrap_err();
    assert!(matches!(err, CompileError::UnknownInstance(_)));
}

#[test]
fn bit_widths_flow_through_compiled_structure() {
    let mut d = Design::new();
    let s1 = adder_slice1(&mut d, "SLICE1");
    d.set_signal_bit_width(s1, "a0", 1).unwrap();
    d.set_signal_bit_width(s1, "cin", 1).unwrap();
    d.set_signal_bit_width(s1, "cout", 1).unwrap();
    let row = d.define_class("ROW2");
    let built = VectorCompiler::new(s1, 2).compile(&mut d, row).unwrap();
    // Exported io-signal inherits the width through the net equality.
    let exported_a = built
        .exported
        .iter()
        .find(|e| e.ends_with("_a0"))
        .unwrap()
        .clone();
    assert_eq!(d.signal_bit_width(row, &exported_a), Some(1));
}

/// §6.4.1: the compiler is the cell's structure generator — re-running it
/// with different parameters regenerates the internal structure while the
/// cell identity (and surviving io-signals) persist.
#[test]
fn parameterized_regeneration() {
    let mut d = Design::new();
    let s1 = adder_slice1(&mut d, "SLICE1");
    let row = d.define_class("ROW");
    let built4 = VectorCompiler::new(s1, 4).compile(&mut d, row).unwrap();
    assert_eq!(built4.instances.len(), 4);
    assert_eq!(d.class_bounding_box(row).unwrap().width(), 40);
    let n_signals_4 = d.signals(row).len();

    stem_compilers::clear_structure(&mut d, row);
    assert!(d.subcells(row).is_empty());
    assert!(d.nets_of(row).is_empty());

    // Regenerate wider: same cell, new parameter.
    let built8 = VectorCompiler::new(s1, 8).compile(&mut d, row).unwrap();
    assert_eq!(built8.instances.len(), 8);
    assert_eq!(d.class_bounding_box(row).unwrap().width(), 80);
    // The shared end-pin signals were reused, new per-slice ones added.
    assert!(d.signals(row).len() > n_signals_4);
    // The regenerated structure is electrically sound: cin chain intact.
    let butt = built8
        .nets
        .iter()
        .filter(|&&n| d.net_name(n).starts_with("butt"))
        .count();
    assert_eq!(butt, 7);
}

/// Regeneration at the same parameters is idempotent in interface size.
#[test]
fn regeneration_is_interface_stable() {
    let mut d = Design::new();
    let s1 = adder_slice1(&mut d, "SLICE1");
    let row = d.define_class("ROW");
    VectorCompiler::new(s1, 4).compile(&mut d, row).unwrap();
    let sig_names: Vec<String> = d.signals(row).iter().map(|s| s.name.clone()).collect();
    stem_compilers::clear_structure(&mut d, row);
    VectorCompiler::new(s1, 4).compile(&mut d, row).unwrap();
    let again: Vec<String> = d.signals(row).iter().map(|s| s.name.clone()).collect();
    assert_eq!(sig_names, again);
}
