//! Hierarchical delay estimation networks (thesis §7.3).
//!
//! Delay constraints "incrementally compute the worst case delay estimates
//! between input and output signals of cells by searching for the longest
//! paths in the delay networks", using the RC model of Fig. 7.10
//! (`delay = internal + R_out · C_load`) and the assumption that delays of
//! cascaded components are additive.
//!
//! For each declared class delay (an input→output pair the designer marked
//! critical), every instance gets a dual *instance delay* variable linked
//! to the class delay with a loading adjustment. Delay paths through a
//! composite cell are enumerated (only via declared subcell delays —
//! "this gives cell designers the ability to focus STEM's attention to the
//! critical delay paths … and reduces the extent of combinatorial
//! explosion"), summed by `UniAdditionConstraint`s and maximised into the
//! composite's class delay by a `UniMaximumConstraint` (Fig. 7.12).
//!
//! Networks are erased whenever the internal structure changes and rebuilt
//! only when delay values are requested (§7.3: "incremental editing of
//! delay networks is not implemented due to efficiency considerations").
//!
//! Re-characterising a leaf cell under a *deep* hierarchy propagates
//! through one implicit link per sibling, so each level's path sum
//! legitimately recomputes twice — the thesis's §9.2.3 scheduling
//! limitation. Its suggested remedy is built in: raise
//! [`Network::set_value_change_limit`](stem_core::Network::set_value_change_limit)
//! to 2 (see `tests/scale.rs`), or invalidate and rebuild instead.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::rc::Rc;
use std::sync::Arc;

use stem_core::kinds::{Functional, ImplicitLink, LinkSemantics, Predicate};
use stem_core::{ConstraintId, Justification, Network, PlainKind, Value, VarId, Violation};
use stem_design::{CellClassId, CellInstanceId, Design, SignalDir, StructureEvent};

/// Electrical parameters of one io-signal, for the RC delay model
/// (Fig. 7.10). With resistance in kΩ and capacitance in pF, the product
/// is directly in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ElectricalParams {
    /// Output (driver) resistance in kΩ; meaningful on output signals.
    pub out_resistance: f64,
    /// Input (load) capacitance in pF; meaningful on input signals.
    pub in_capacitance: f64,
}

/// Link semantics for dual delay variables (Fig. 7.11): the instance delay
/// is the class delay plus the RC loading adjustment of the instance's
/// output net. Instance delays never propagate back to class delays.
#[derive(Debug, Clone, Copy)]
pub struct DelayLink {
    /// `R_out · C_load` of this instance's context, in nanoseconds.
    pub load_adjust: f64,
}

impl LinkSemantics for DelayLink {
    fn name(&self) -> &str {
        "delayLink"
    }

    fn downward(&self, net: &Network, class_var: VarId, _inst_var: VarId) -> Option<Value> {
        let d = net.value(class_var).as_f64()?;
        Some(Value::Float(d + self.load_adjust))
    }

    fn is_satisfied(&self, _net: &Network, _class_var: VarId, _inst_var: VarId) -> bool {
        // A pure propagation link: consistency of the duals is maintained
        // by downward propagation alone ("delay variables in the cell
        // instances do not propagate to their dual delay variables in the
        // cell class", §5.1.1), and module validation (Fig. 8.2) must be
        // able to tentatively override an instance delay with a candidate
        // realisation's value without the link itself objecting.
        true
    }
}

/// One declared class delay: a critical input→output pair.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DelayDecl {
    /// Source (input) signal name.
    pub from: String,
    /// Destination (output) signal name.
    pub to: String,
}

#[derive(Debug, Default)]
struct BuiltNetwork {
    constraints: Vec<ConstraintId>,
}

/// The delay-checking tool: declared delays, electrical parameters, and
/// the on-demand delay networks it builds over a [`Design`].
///
/// This plays the role of STEM's delay subsystem: a tool integrated into
/// the environment through constraints, with its own state.
#[derive(Debug)]
pub struct DelayAnalyzer {
    /// Declared class delays with their class-side variables.
    declared: HashMap<CellClassId, Vec<(DelayDecl, VarId)>>,
    electrical: HashMap<(CellClassId, String), ElectricalParams>,
    /// Persistent dual instance-delay variables.
    inst_vars: HashMap<(CellInstanceId, String, String), VarId>,
    built: HashMap<CellClassId, BuiltNetwork>,
    dirty: HashSet<CellClassId>,
    /// Cap on enumerated delay paths per declared delay, guarding against
    /// the "combinatorial explosion in delay path generation" (§7.3).
    max_paths: usize,
}

impl Default for DelayAnalyzer {
    fn default() -> Self {
        DelayAnalyzer {
            declared: HashMap::new(),
            electrical: HashMap::new(),
            inst_vars: HashMap::new(),
            built: HashMap::new(),
            dirty: HashSet::new(),
            max_paths: 10_000,
        }
    }
}

impl DelayAnalyzer {
    /// Creates an empty analyzer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the per-delay path-enumeration cap (§7.3's explosion guard).
    ///
    /// # Panics
    ///
    /// Panics for a zero cap.
    pub fn set_max_paths(&mut self, cap: usize) {
        assert!(cap > 0, "path cap must be positive");
        self.max_paths = cap;
    }

    /// Registers the analyzer's invalidation hooks on a design, so
    /// structural edits erase affected delay networks (§7.3). Returns the
    /// shared handle through which the analyzer is used afterwards.
    pub fn install(self, d: &mut Design) -> Rc<RefCell<DelayAnalyzer>> {
        let shared = Rc::new(RefCell::new(self));
        let weak = Rc::downgrade(&shared);
        d.add_hook(move |d, ev| {
            let Some(analyzer) = weak.upgrade() else {
                return;
            };
            let class = match ev {
                StructureEvent::InstanceAdded { instance }
                | StructureEvent::TransformChanged { instance } => d.instance_parent(*instance),
                StructureEvent::InstanceRemoved { parent, .. } => *parent,
                StructureEvent::NetConnected { net, .. }
                | StructureEvent::NetDisconnected { net, .. } => d.net_parent(*net),
            };
            analyzer.borrow_mut().invalidate(d, class);
        });
        shared
    }

    /// Sets the electrical parameters of a signal (used for loading
    /// adjustments).
    pub fn set_electrical(&mut self, class: CellClassId, signal: &str, params: ElectricalParams) {
        self.electrical.insert((class, signal.to_string()), params);
    }

    /// The electrical parameters of a signal (defaults to zeros).
    pub fn electrical(&self, class: CellClassId, signal: &str) -> ElectricalParams {
        self.electrical
            .get(&(class, signal.to_string()))
            .copied()
            .unwrap_or_default()
    }

    /// Declares a critical class delay `from → to` on a class, creating
    /// its class-side variable. Containing cells will route delay paths
    /// through this declaration.
    pub fn declare_delay(
        &mut self,
        d: &mut Design,
        class: CellClassId,
        from: &str,
        to: &str,
    ) -> VarId {
        if let Some(v) = self.class_delay_var(class, from, to) {
            return v;
        }
        let owner: Arc<str> = Arc::from(d.class_name(class));
        let var = d.network_mut().add_variable_with(
            format!("delay:{from}->{to}"),
            Some(owner),
            Rc::new(PlainKind),
        );
        self.declared.entry(class).or_default().push((
            DelayDecl {
                from: from.to_string(),
                to: to.to_string(),
            },
            var,
        ));
        // New edges may appear in any containing cell's delay graph.
        self.dirty.extend(self.built.keys().copied());
        var
    }

    /// Declared delays of a class.
    pub fn declared(&self, class: CellClassId) -> &[(DelayDecl, VarId)] {
        self.declared.get(&class).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The class-side delay variable of a declaration.
    pub fn class_delay_var(&self, class: CellClassId, from: &str, to: &str) -> Option<VarId> {
        self.declared
            .get(&class)?
            .iter()
            .find_map(|(decl, v)| (decl.from == from && decl.to == to).then_some(*v))
    }

    /// The dual instance-delay variable, if it has been created.
    pub fn instance_delay_var(&self, inst: CellInstanceId, from: &str, to: &str) -> Option<VarId> {
        self.inst_vars
            .get(&(inst, from.to_string(), to.to_string()))
            .copied()
    }

    /// Sets a designer's delay estimate on a class delay (used before the
    /// internal structure exists, §7.3).
    ///
    /// # Errors
    ///
    /// Returns a violation when containing networks reject the value.
    ///
    /// # Panics
    ///
    /// Panics if the delay was not declared.
    pub fn set_estimate(
        &mut self,
        d: &mut Design,
        class: CellClassId,
        from: &str,
        to: &str,
        ns: f64,
    ) -> Result<(), Violation> {
        let var = self
            .class_delay_var(class, from, to)
            .expect("delay not declared");
        d.network_mut()
            .set(var, Value::Float(ns), Justification::User)
    }

    /// Removes a designer estimate so the computed value can take over.
    ///
    /// # Panics
    ///
    /// Panics if the delay was not declared.
    pub fn clear_estimate(&mut self, d: &mut Design, class: CellClassId, from: &str, to: &str) {
        let var = self
            .class_delay_var(class, from, to)
            .expect("delay not declared");
        let enabled = d.network().is_propagation_enabled();
        d.network_mut().set_propagation_enabled(false);
        d.network_mut()
            .set(var, Value::Nil, Justification::Update)
            .expect("plain store");
        d.network_mut().set_propagation_enabled(enabled);
        self.dirty.insert(class);
    }

    /// Adds a maximum-delay specification (`delay from A to B must not be
    /// longer than …`, §5.3) as a predicate constraint on the class delay.
    ///
    /// # Errors
    ///
    /// Returns a violation if the current delay already exceeds the bound.
    ///
    /// # Panics
    ///
    /// Panics if the delay was not declared.
    pub fn constrain_max(
        &mut self,
        d: &mut Design,
        class: CellClassId,
        from: &str,
        to: &str,
        ns: f64,
    ) -> Result<ConstraintId, Violation> {
        let var = self
            .class_delay_var(class, from, to)
            .expect("delay not declared");
        d.network_mut()
            .add_constraint(Predicate::le_const(Value::Float(ns)), [var])
    }

    /// Tears down the built delay network of a class (structure changed).
    pub fn invalidate(&mut self, d: &mut Design, class: CellClassId) {
        if let Some(built) = self.built.remove(&class) {
            for cid in built.constraints {
                if d.network().is_active(cid) {
                    d.network_mut().remove_constraint(cid);
                }
            }
        }
        self.dirty.insert(class);
    }

    /// The worst-case delay `from → to` of a class, building the delay
    /// network on demand. Returns `None` when no value can be derived
    /// (leaf cell without estimate, or no connecting path).
    ///
    /// # Errors
    ///
    /// Returns a violation when building the network exposes a conflict
    /// (e.g. a computed delay exceeding a user specification).
    pub fn delay(
        &mut self,
        d: &mut Design,
        class: CellClassId,
        from: &str,
        to: &str,
    ) -> Result<Option<f64>, Violation> {
        self.ensure_built(d, class)?;
        let Some(var) = self.class_delay_var(class, from, to) else {
            return Ok(None);
        };
        Ok(d.network().value(var).as_f64())
    }

    /// Builds (or rebuilds) the delay network of `class` if needed.
    ///
    /// # Errors
    ///
    /// Returns the first violation raised while wiring the network.
    pub fn ensure_built(&mut self, d: &mut Design, class: CellClassId) -> Result<(), Violation> {
        if self.built.contains_key(&class) && !self.dirty.contains(&class) {
            return Ok(());
        }
        // Subcell classes must be evaluated first so their class delays
        // hold values (bottom-up characteristics, §5.1). Recurse.
        let sub_classes: HashSet<CellClassId> = d
            .subcells(class)
            .iter()
            .map(|&i| d.instance_class(i))
            .collect();
        for sc in sub_classes {
            if sc != class {
                self.ensure_built(d, sc)?;
            }
        }
        self.invalidate(d, class);
        self.dirty.remove(&class);
        if d.subcells(class).is_empty() {
            // Leaf cell: its class delays are estimates/measurements.
            self.built.insert(class, BuiltNetwork::default());
            return Ok(());
        }
        let result = self.build(d, class);
        if result.is_err() {
            // Leave marked dirty so a later query retries.
            self.dirty.insert(class);
        }
        result
    }

    fn build(&mut self, d: &mut Design, class: CellClassId) -> Result<(), Violation> {
        let mut built = BuiltNetwork::default();

        // 1. Dual instance-delay variables with RC loading links.
        let subcells: Vec<CellInstanceId> = d.subcells(class).to_vec();
        for &inst in &subcells {
            let ic = d.instance_class(inst);
            let decls: Vec<(DelayDecl, VarId)> = self.declared(ic).to_vec();
            for (decl, class_var) in decls {
                let key = (inst, decl.from.clone(), decl.to.clone());
                let inst_var = *self.inst_vars.entry(key).or_insert_with(|| {
                    let owner: Arc<str> = Arc::from(
                        format!("{}.{}", d.class_name(class), d.instance_name(inst)).as_str(),
                    );
                    d.network_mut().add_variable_with(
                        format!("delay:{}->{}", decl.from, decl.to),
                        Some(owner),
                        Rc::new(PlainKind),
                    )
                });
                let load_adjust = self.load_adjust(d, inst, &decl.to);
                let cid = d.network_mut().add_constraint(
                    ImplicitLink::new(DelayLink { load_adjust }),
                    [class_var, inst_var],
                )?;
                built.constraints.push(cid);
            }
        }

        // 2. Delay paths for each of the composite's declared delays.
        let comp_decls: Vec<(DelayDecl, VarId)> = self.declared(class).to_vec();
        for (decl, comp_var) in comp_decls {
            // Skip if the designer pinned an estimate: the network would
            // fight the user value (§7.3: estimates removed before
            // computing).
            if d.network().justification(comp_var).is_user() {
                continue;
            }
            let paths = self.enumerate_paths(d, class, &decl.from, &decl.to);
            if paths.len() > self.max_paths {
                return Err(Violation::custom(
                    format!(
                        "delay path explosion: {} paths for {}->{} in {} (cap {}); declare fewer subcell delays or raise the cap",
                        paths.len(), decl.from, decl.to, d.class_name(class), self.max_paths
                    ),
                    None,
                ));
            }
            if paths.is_empty() {
                continue;
            }
            let mut path_vars = Vec::new();
            for (i, path) in paths.iter().enumerate() {
                let owner: Arc<str> = Arc::from(d.class_name(class));
                let pv = d.network_mut().add_variable_with(
                    format!("path{}:{}->{}", i, decl.from, decl.to),
                    Some(owner),
                    Rc::new(PlainKind),
                );
                let mut args = path.clone();
                args.push(pv);
                let cid = d
                    .network_mut()
                    .add_constraint(Functional::uni_addition(), args)?;
                built.constraints.push(cid);
                path_vars.push(pv);
            }
            let mut args = path_vars;
            args.push(comp_var);
            let cid = d
                .network_mut()
                .add_constraint(Functional::uni_maximum(), args)?;
            built.constraints.push(cid);
        }
        self.built.insert(class, built);
        Ok(())
    }

    /// `R_out · C_load` for an instance's output signal: the driver
    /// resistance times the sum of the input capacitances of every sink
    /// pin on the connected net. Public because module validation
    /// (Fig. 8.2, `validDelaysFor:`) adjusts candidate delays with the
    /// instance's loading context.
    pub fn load_adjust(&self, d: &Design, inst: CellInstanceId, out_signal: &str) -> f64 {
        let ic = d.instance_class(inst);
        let r = self.electrical(ic, out_signal).out_resistance;
        if r == 0.0 {
            return 0.0;
        }
        let Some(net) = d.connection(inst, out_signal) else {
            return 0.0;
        };
        let mut c_load = 0.0;
        for (sink, sig) in d.net_connections(net) {
            if *sink == inst && sig == out_signal {
                continue;
            }
            let sc = d.instance_class(*sink);
            c_load += self.electrical(sc, sig).in_capacitance;
        }
        r * c_load
    }

    /// All simple delay paths from io-signal `from` to io-signal `to` of
    /// `class`, as sequences of instance-delay variables (Fig. 7.12).
    fn enumerate_paths(
        &mut self,
        d: &Design,
        class: CellClassId,
        from: &str,
        to: &str,
    ) -> Vec<Vec<VarId>> {
        // Net reachable from the io input.
        let io_net = |sig: &str| -> Option<stem_design::NetId> {
            d.nets_of(class)
                .iter()
                .copied()
                .find(|&n| d.net_io_connections(n).iter().any(|s| s == sig))
        };
        let Some(start_net) = io_net(from) else {
            return Vec::new();
        };
        let mut paths = Vec::new();
        let mut visited_insts: HashSet<CellInstanceId> = HashSet::new();
        let mut prefix: Vec<VarId> = Vec::new();
        self.dfs_paths(
            d,
            class,
            start_net,
            to,
            &mut visited_insts,
            &mut prefix,
            &mut paths,
        );
        paths
    }

    #[allow(clippy::too_many_arguments)]
    fn dfs_paths(
        &self,
        d: &Design,
        class: CellClassId,
        net: stem_design::NetId,
        to: &str,
        visited: &mut HashSet<CellInstanceId>,
        prefix: &mut Vec<VarId>,
        out: &mut Vec<Vec<VarId>>,
    ) {
        // Reached the destination io-signal?
        if !prefix.is_empty() && d.net_io_connections(net).iter().any(|s| s == to) {
            out.push(prefix.clone());
        }
        // Hop into each subcell whose input pin sits on this net.
        for (inst, sig) in d.net_connections(net).to_vec() {
            if visited.contains(&inst) {
                continue;
            }
            let ic = d.instance_class(inst);
            let Some(sd) = d.signal_def(ic, &sig) else {
                continue;
            };
            if sd.dir == SignalDir::Output {
                continue;
            }
            // Traverse each declared delay of the subcell from this input.
            for (decl, _) in self.declared(ic).to_vec() {
                if decl.from != sig {
                    continue;
                }
                let Some(iv) = self.instance_delay_var(inst, &decl.from, &decl.to) else {
                    continue;
                };
                let Some(next_net) = d.connection(inst, &decl.to) else {
                    continue;
                };
                visited.insert(inst);
                prefix.push(iv);
                self.dfs_paths(d, class, next_net, to, visited, prefix, out);
                prefix.pop();
                visited.remove(&inst);
            }
        }
        let _ = class;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stem_design::SignalDir;
    use stem_geom::Transform;

    fn leaf_cell(d: &mut Design, an: &mut DelayAnalyzer, name: &str, delay: f64) -> CellClassId {
        let c = d.define_class(name);
        d.add_signal(c, "in", SignalDir::Input);
        d.add_signal(c, "out", SignalDir::Output);
        an.declare_delay(d, c, "in", "out");
        an.set_estimate(d, c, "in", "out", delay).unwrap();
        c
    }

    #[test]
    fn leaf_estimate_is_returned() {
        let mut d = Design::new();
        let mut an = DelayAnalyzer::new();
        let c = leaf_cell(&mut d, &mut an, "INV", 2.0);
        assert_eq!(an.delay(&mut d, c, "in", "out").unwrap(), Some(2.0));
    }

    #[test]
    fn cascade_sums_delays() {
        let mut d = Design::new();
        let mut an = DelayAnalyzer::new();
        let a = leaf_cell(&mut d, &mut an, "A", 2.0);
        let b = leaf_cell(&mut d, &mut an, "B", 3.0);
        let top = d.define_class("TOP");
        d.add_signal(top, "in", SignalDir::Input);
        d.add_signal(top, "out", SignalDir::Output);
        an.declare_delay(&mut d, top, "in", "out");
        let ia = d.instantiate(a, top, "a1", Transform::IDENTITY).unwrap();
        let ib = d.instantiate(b, top, "b1", Transform::IDENTITY).unwrap();
        let n_in = d.add_net(top, "n_in");
        d.connect_io(n_in, "in").unwrap();
        d.connect(n_in, ia, "in").unwrap();
        let n_mid = d.add_net(top, "n_mid");
        d.connect(n_mid, ia, "out").unwrap();
        d.connect(n_mid, ib, "in").unwrap();
        let n_out = d.add_net(top, "n_out");
        d.connect(n_out, ib, "out").unwrap();
        d.connect_io(n_out, "out").unwrap();

        assert_eq!(an.delay(&mut d, top, "in", "out").unwrap(), Some(5.0));
    }

    #[test]
    fn parallel_paths_take_maximum() {
        let mut d = Design::new();
        let mut an = DelayAnalyzer::new();
        let fast = leaf_cell(&mut d, &mut an, "FAST", 1.0);
        let slow = leaf_cell(&mut d, &mut an, "SLOW", 7.0);
        let top = d.define_class("TOP");
        d.add_signal(top, "in", SignalDir::Input);
        d.add_signal(top, "out", SignalDir::Output);
        an.declare_delay(&mut d, top, "in", "out");
        let i1 = d.instantiate(fast, top, "f", Transform::IDENTITY).unwrap();
        let i2 = d.instantiate(slow, top, "s", Transform::IDENTITY).unwrap();
        let n_in = d.add_net(top, "ni");
        d.connect_io(n_in, "in").unwrap();
        d.connect(n_in, i1, "in").unwrap();
        d.connect(n_in, i2, "in").unwrap();
        let n_out = d.add_net(top, "no");
        d.connect(n_out, i1, "out").unwrap();
        d.connect(n_out, i2, "out").unwrap();
        d.connect_io(n_out, "out").unwrap();

        assert_eq!(an.delay(&mut d, top, "in", "out").unwrap(), Some(7.0));
    }

    #[test]
    fn rc_loading_adjusts_instance_delay() {
        let mut d = Design::new();
        let mut an = DelayAnalyzer::new();
        let a = leaf_cell(&mut d, &mut an, "DRV", 2.0);
        an.set_electrical(
            a,
            "out",
            ElectricalParams {
                out_resistance: 2.0, // kΩ
                ..Default::default()
            },
        );
        let b = leaf_cell(&mut d, &mut an, "LOAD", 1.0);
        an.set_electrical(
            b,
            "in",
            ElectricalParams {
                in_capacitance: 0.5, // pF
                ..Default::default()
            },
        );
        let top = d.define_class("TOP");
        d.add_signal(top, "in", SignalDir::Input);
        d.add_signal(top, "out", SignalDir::Output);
        an.declare_delay(&mut d, top, "in", "out");
        let ia = d.instantiate(a, top, "drv", Transform::IDENTITY).unwrap();
        let ib = d.instantiate(b, top, "ld", Transform::IDENTITY).unwrap();
        let ni = d.add_net(top, "ni");
        d.connect_io(ni, "in").unwrap();
        d.connect(ni, ia, "in").unwrap();
        let nm = d.add_net(top, "nm");
        d.connect(nm, ia, "out").unwrap();
        d.connect(nm, ib, "in").unwrap();
        let no = d.add_net(top, "no");
        d.connect(no, ib, "out").unwrap();
        d.connect_io(no, "out").unwrap();

        // DRV sees 2.0 + 2kΩ·0.5pF = 3.0 ns; LOAD drives the io (no load).
        assert_eq!(an.delay(&mut d, top, "in", "out").unwrap(), Some(4.0));
        let iv = an.instance_delay_var(ia, "in", "out").unwrap();
        assert_eq!(d.network().value(iv), &Value::Float(3.0));
    }

    #[test]
    fn spec_violation_on_build() {
        let mut d = Design::new();
        let mut an = DelayAnalyzer::new();
        let slow = leaf_cell(&mut d, &mut an, "SLOW", 9.0);
        let top = d.define_class("TOP");
        d.add_signal(top, "in", SignalDir::Input);
        d.add_signal(top, "out", SignalDir::Output);
        an.declare_delay(&mut d, top, "in", "out");
        an.constrain_max(&mut d, top, "in", "out", 5.0).unwrap();
        let i = d.instantiate(slow, top, "s", Transform::IDENTITY).unwrap();
        let ni = d.add_net(top, "ni");
        d.connect_io(ni, "in").unwrap();
        d.connect(ni, i, "in").unwrap();
        let no = d.add_net(top, "no");
        d.connect(no, i, "out").unwrap();
        d.connect_io(no, "out").unwrap();

        let err = an.delay(&mut d, top, "in", "out").unwrap_err();
        let _ = err;
        // Improving the subcell makes the build succeed.
        an.clear_estimate(&mut d, slow, "in", "out");
        an.set_estimate(&mut d, slow, "in", "out", 4.0).unwrap();
        assert_eq!(an.delay(&mut d, top, "in", "out").unwrap(), Some(4.0));
    }

    #[test]
    fn class_delay_change_repropagates_hierarchically() {
        let mut d = Design::new();
        let mut an = DelayAnalyzer::new();
        let a = leaf_cell(&mut d, &mut an, "A", 2.0);
        let top = d.define_class("TOP");
        d.add_signal(top, "in", SignalDir::Input);
        d.add_signal(top, "out", SignalDir::Output);
        an.declare_delay(&mut d, top, "in", "out");
        let ia = d.instantiate(a, top, "a", Transform::IDENTITY).unwrap();
        let ni = d.add_net(top, "ni");
        d.connect_io(ni, "in").unwrap();
        d.connect(ni, ia, "in").unwrap();
        let no = d.add_net(top, "no");
        d.connect(no, ia, "out").unwrap();
        d.connect_io(no, "out").unwrap();
        assert_eq!(an.delay(&mut d, top, "in", "out").unwrap(), Some(2.0));

        // Refine the leaf's characteristic: the change flows up without a
        // rebuild ("propagated up the design hierarchy as soon as they are
        // available", §7.3).
        an.clear_estimate(&mut d, a, "in", "out");
        an.set_estimate(&mut d, a, "in", "out", 3.5).unwrap();
        assert_eq!(an.delay(&mut d, top, "in", "out").unwrap(), Some(3.5));
    }
}
