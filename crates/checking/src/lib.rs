//! # stem-checking — incremental design checking (thesis ch. 7)
//!
//! The second sample application of the constraint-propagation framework:
//! constraints that capture design specifications and derive design
//! characteristics incrementally, so that "design characteristics in low
//! levels of the design hierarchy can be propagated up the hierarchy and
//! checked against design specifications at higher levels".
//!
//! Three checkers:
//!
//! - **Signal types** (§7.1) live in `stem-design` (they are installed by
//!   the environment whenever nets connect) and are re-exported here.
//! - **Bounding boxes** (§7.2): the dual class/instance box machinery is
//!   built into `stem-design`; this crate adds the designer-declared
//!   predicates of Fig. 7.9 ([`aspect_ratio_predicate`],
//!   [`area_at_most_predicate`], [`pitch_match_predicate`]).
//! - **Delays** (§7.3): the [`DelayAnalyzer`] builds hierarchical delay
//!   networks from `UniAddition`/`UniMaximum` constraints over dual delay
//!   variables with RC loading adjustments.

#![warn(missing_docs)]
mod bbox;
mod delay;

pub use bbox::{
    area_at_most_predicate, aspect_ratio_predicate, constrain_area_at_most, constrain_aspect_ratio,
    constrain_pitch_match, pitch_match_predicate, set_bbox_checked,
};
pub use delay::{DelayAnalyzer, DelayDecl, DelayLink, ElectricalParams};

// Signal typing is implemented in the environment substrate (§7.1 installs
// its constraints from net wiring); re-export the pieces for discoverability.
pub use stem_design::{BitWidthKind, Compatible, SignalTypeKind, TypeForests, TypeHierarchy};
