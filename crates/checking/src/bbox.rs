//! Bounding-box predicate constraints (thesis §7.2, Fig. 7.9): aspect
//! ratio, area and pitch-matching constraints that designers declare on
//! bounding-box variables.

use stem_core::kinds::Predicate;
use stem_core::{ConstraintId, Justification, Value, VarId, Violation};
use stem_design::{CellClassId, Design, BOUNDING_BOX};

/// The `AspectRatioPredicate` of Fig. 7.9: every (non-`Nil`) rectangle
/// argument must have `width / height == ratio` (within `tol`).
pub fn aspect_ratio_predicate(ratio: f64, tol: f64) -> Predicate {
    Predicate::custom("aspectRatioPredicate", move |vals| {
        vals.iter().all(|v| match v.as_rect() {
            Some(r) => match r.aspect_ratio() {
                Some(a) => (a - ratio).abs() <= tol,
                None => false,
            },
            None => v.is_nil(),
        })
    })
}

/// Area constraint: every rectangle argument has area ≤ `max_area`.
pub fn area_at_most_predicate(max_area: i64) -> Predicate {
    Predicate::custom("areaPredicate", move |vals| {
        vals.iter().all(|v| match v.as_rect() {
            Some(r) => r.area() <= max_area,
            None => v.is_nil(),
        })
    })
}

/// Pitch-matching constraint: all rectangle arguments share the same
/// height (for abutting cells in a datapath).
pub fn pitch_match_predicate() -> Predicate {
    Predicate::custom("pitchMatchPredicate", move |vals| {
        let mut h: Option<i64> = None;
        for v in vals {
            if let Some(r) = v.as_rect() {
                match h {
                    None => h = Some(r.height()),
                    Some(x) if x == r.height() => {}
                    Some(_) => return false,
                }
            } else if !v.is_nil() {
                return false;
            }
        }
        true
    })
}

/// Declares an aspect-ratio constraint on a class's bounding box.
///
/// # Errors
///
/// Returns a violation if the current box already breaks the ratio.
///
/// # Panics
///
/// Panics if the class lacks the built-in bounding-box property.
pub fn constrain_aspect_ratio(
    d: &mut Design,
    class: CellClassId,
    ratio: f64,
    tol: f64,
) -> Result<ConstraintId, Violation> {
    let var = d
        .class_property_var(class, BOUNDING_BOX)
        .expect("built-in boundingBox");
    d.network_mut()
        .add_constraint(aspect_ratio_predicate(ratio, tol), [var])
}

/// Declares a maximum-area constraint on a class's bounding box.
///
/// # Errors
///
/// Returns a violation if the current box is already too large.
///
/// # Panics
///
/// Panics if the class lacks the built-in bounding-box property.
pub fn constrain_area_at_most(
    d: &mut Design,
    class: CellClassId,
    max_area: i64,
) -> Result<ConstraintId, Violation> {
    let var = d
        .class_property_var(class, BOUNDING_BOX)
        .expect("built-in boundingBox");
    d.network_mut()
        .add_constraint(area_at_most_predicate(max_area), [var])
}

/// Declares a pitch-match constraint across several classes' bounding
/// boxes.
///
/// # Errors
///
/// Returns a violation if current boxes already disagree in height.
///
/// # Panics
///
/// Panics if a class lacks the built-in bounding-box property.
pub fn constrain_pitch_match(
    d: &mut Design,
    classes: &[CellClassId],
) -> Result<ConstraintId, Violation> {
    let vars: Vec<VarId> = classes
        .iter()
        .map(|&c| {
            d.class_property_var(c, BOUNDING_BOX)
                .expect("built-in boundingBox")
        })
        .collect();
    d.network_mut()
        .add_constraint(pitch_match_predicate(), vars)
}

/// Helper: assigns a user bounding box, returning the violation if any
/// declared predicate rejects it.
///
/// # Errors
///
/// Returns the violation raised by a rejecting predicate.
pub fn set_bbox_checked(
    d: &mut Design,
    class: CellClassId,
    r: stem_geom::Rect,
) -> Result<(), Violation> {
    let var = d
        .class_property_var(class, BOUNDING_BOX)
        .expect("built-in boundingBox");
    d.network_mut()
        .set(var, Value::Rect(r), Justification::User)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stem_geom::{Point, Rect};

    fn rect(w: i64, h: i64) -> Rect {
        Rect::with_extent(Point::ORIGIN, w, h)
    }

    #[test]
    fn aspect_ratio_accepts_and_rejects() {
        let mut d = Design::new();
        let c = d.define_class("C");
        constrain_aspect_ratio(&mut d, c, 2.0, 1e-9).unwrap();
        assert!(set_bbox_checked(&mut d, c, rect(8, 4)).is_ok());
        assert!(set_bbox_checked(&mut d, c, rect(9, 4)).is_err());
        // Restored to the last valid value.
        assert_eq!(d.class_bounding_box(c), Some(rect(8, 4)));
    }

    #[test]
    fn area_constraint() {
        let mut d = Design::new();
        let c = d.define_class("C");
        constrain_area_at_most(&mut d, c, 100).unwrap();
        assert!(set_bbox_checked(&mut d, c, rect(10, 10)).is_ok());
        assert!(set_bbox_checked(&mut d, c, rect(11, 10)).is_err());
    }

    #[test]
    fn pitch_matching_across_classes() {
        let mut d = Design::new();
        let a = d.define_class("A");
        let b = d.define_class("B");
        constrain_pitch_match(&mut d, &[a, b]).unwrap();
        set_bbox_checked(&mut d, a, rect(10, 6)).unwrap();
        assert!(set_bbox_checked(&mut d, b, rect(20, 6)).is_ok());
        assert!(set_bbox_checked(&mut d, b, rect(20, 7)).is_err());
    }

    #[test]
    fn constraint_applies_retroactively_on_add() {
        let mut d = Design::new();
        let c = d.define_class("C");
        set_bbox_checked(&mut d, c, rect(9, 4)).unwrap();
        // Adding a 2:1 constraint against an existing 9:4 box violates
        // immediately (Fig. 4.13 re-initialisation check).
        assert!(constrain_aspect_ratio(&mut d, c, 2.0, 1e-9).is_err());
    }
}
