//! E7 — the ADDER/ACCUMULATOR worked example of thesis §5.1 and the
//! hierarchical delay networks of Fig. 7.12.
//!
//! "When a designer first designs an eight-bit ADDER, a delay constraint of
//! '120ns or less' may be specified … an instance of the ADDER cell may be
//! used in an ACCUMULATOR cell, built by cascading an 8-bit REGISTER to an
//! ADDER, which has an overall delay constraint of '160ns or less'. If the
//! characteristic delay of the REGISTER instance is 60ns and that of the
//! ADDER instance is 110ns (after adjustment for loading), then a
//! constraint violation is triggered."

use stem_checking::{DelayAnalyzer, ElectricalParams};
use stem_core::Value;
use stem_design::{CellClassId, Design, SignalDir};
use stem_geom::Transform;

struct Fixture {
    d: Design,
    an: DelayAnalyzer,
    adder: CellClassId,
    register: CellClassId,
    accumulator: CellClassId,
}

/// Builds the ACCUMULATOR = REGISTER → ADDER cascade.
fn build(reg_delay: f64, adder_delay: f64, adder_load_ns: f64) -> Fixture {
    let mut d = Design::new();
    let mut an = DelayAnalyzer::new();

    let adder = d.define_class("ADDER");
    d.add_signal(adder, "a", SignalDir::Input);
    d.add_signal(adder, "sum", SignalDir::Output);
    d.set_signal_bit_width(adder, "a", 8).unwrap();
    d.set_signal_bit_width(adder, "sum", 8).unwrap();
    an.declare_delay(&mut d, adder, "a", "sum");
    an.set_estimate(&mut d, adder, "a", "sum", adder_delay)
        .unwrap();
    // Loading: adder drives the accumulator output; model the load as
    // R_out · C_load = adder_load_ns.
    an.set_electrical(
        adder,
        "sum",
        ElectricalParams {
            out_resistance: 1.0,
            ..Default::default()
        },
    );

    let register = d.define_class("REGISTER");
    d.add_signal(register, "d", SignalDir::Input);
    d.add_signal(register, "q", SignalDir::Output);
    d.set_signal_bit_width(register, "d", 8).unwrap();
    d.set_signal_bit_width(register, "q", 8).unwrap();
    an.declare_delay(&mut d, register, "d", "q");
    an.set_estimate(&mut d, register, "d", "q", reg_delay)
        .unwrap();

    // An output buffer providing the adder's load capacitance.
    let obuf = d.define_class("OBUF");
    d.add_signal(obuf, "in", SignalDir::Input);
    d.add_signal(obuf, "out", SignalDir::Output);
    d.set_signal_bit_width(obuf, "in", 8).unwrap();
    d.set_signal_bit_width(obuf, "out", 8).unwrap();
    an.declare_delay(&mut d, obuf, "in", "out");
    an.set_estimate(&mut d, obuf, "in", "out", 0.0).unwrap();
    an.set_electrical(
        obuf,
        "in",
        ElectricalParams {
            in_capacitance: adder_load_ns, // with R_out = 1 kΩ, ns directly
            ..Default::default()
        },
    );

    let accumulator = d.define_class("ACCUMULATOR");
    d.add_signal(accumulator, "in", SignalDir::Input);
    d.add_signal(accumulator, "out", SignalDir::Output);
    an.declare_delay(&mut d, accumulator, "in", "out");

    let reg = d
        .instantiate(register, accumulator, "reg", Transform::IDENTITY)
        .unwrap();
    let add = d
        .instantiate(adder, accumulator, "add", Transform::IDENTITY)
        .unwrap();
    let buf = d
        .instantiate(obuf, accumulator, "buf", Transform::IDENTITY)
        .unwrap();

    let n_in = d.add_net(accumulator, "n_in");
    d.connect_io(n_in, "in").unwrap();
    d.connect(n_in, reg, "d").unwrap();
    let n_mid = d.add_net(accumulator, "n_mid");
    d.connect(n_mid, reg, "q").unwrap();
    d.connect(n_mid, add, "a").unwrap();
    let n_sum = d.add_net(accumulator, "n_sum");
    d.connect(n_sum, add, "sum").unwrap();
    d.connect(n_sum, buf, "in").unwrap();
    let n_out = d.add_net(accumulator, "n_out");
    d.connect(n_out, buf, "out").unwrap();
    d.connect_io(n_out, "out").unwrap();

    Fixture {
        d,
        an,
        adder,
        register,
        accumulator,
    }
}

#[test]
fn accumulator_meets_spec_when_components_are_fast_enough() {
    // REGISTER 60 + ADDER 90 (+10 loading) = 160 ≤ 160: OK.
    let mut f = build(60.0, 90.0, 10.0);
    f.an.constrain_max(&mut f.d, f.accumulator, "in", "out", 160.0)
        .unwrap();
    let total =
        f.an.delay(&mut f.d, f.accumulator, "in", "out")
            .unwrap()
            .unwrap();
    assert!((total - 160.0).abs() < 1e-9, "60 + 90 + 10 = {total}");
}

#[test]
fn accumulator_violates_160ns_spec_as_in_the_thesis() {
    // The thesis numbers: REGISTER 60 ns, ADDER 110 ns after loading
    // (here 100 intrinsic + 10 load) — total 170 > 160 → violation.
    let mut f = build(60.0, 100.0, 10.0);
    f.an.constrain_max(&mut f.d, f.accumulator, "in", "out", 160.0)
        .unwrap();
    let err =
        f.an.delay(&mut f.d, f.accumulator, "in", "out")
            .unwrap_err();
    let _ = err;
}

#[test]
fn adder_class_delay_spec_constrains_internal_design() {
    // "As the internal structure of the ADDER is designed, constraint
    // violation is triggered if a delay value greater than 120ns is
    // propagated to this delay variable."
    let mut f = build(60.0, 100.0, 0.0);
    f.an.constrain_max(&mut f.d, f.adder, "a", "sum", 120.0)
        .unwrap();
    // Re-characterising the adder at 130ns violates its own spec.
    f.an.clear_estimate(&mut f.d, f.adder, "a", "sum");
    assert!(f
        .an
        .set_estimate(&mut f.d, f.adder, "a", "sum", 130.0)
        .is_err());
    assert!(f
        .an
        .set_estimate(&mut f.d, f.adder, "a", "sum", 110.0)
        .is_ok());
}

#[test]
fn register_improvement_relaxes_the_budget_least_commitment() {
    // The least-commitment story (§1.1): only the *sum* is constrained.
    // A slow adder (105) fails with a nominal register (60)…
    let mut f = build(60.0, 105.0, 0.0);
    f.an.constrain_max(&mut f.d, f.accumulator, "in", "out", 160.0)
        .unwrap();
    assert!(f.an.delay(&mut f.d, f.accumulator, "in", "out").is_err());
    // …but a faster register (50) relaxes the implicit adder budget and
    // the same adder now passes.
    f.an.clear_estimate(&mut f.d, f.register, "d", "q");
    f.an.set_estimate(&mut f.d, f.register, "d", "q", 50.0)
        .unwrap();
    let total =
        f.an.delay(&mut f.d, f.accumulator, "in", "out")
            .unwrap()
            .unwrap();
    assert!((total - 155.0).abs() < 1e-9);
}

#[test]
fn structure_edit_invalidates_network_via_hook() {
    let f = build(60.0, 90.0, 0.0);
    let mut d = f.d;
    let shared = f.an.install(&mut d);
    let acc = f.accumulator;
    let total = shared
        .borrow_mut()
        .delay(&mut d, acc, "in", "out")
        .unwrap()
        .unwrap();
    assert!((total - 150.0).abs() < 1e-9);

    // Remove the register: the hook invalidates; the rebuilt network has
    // no in→out path (the io input now reaches nothing).
    let reg_inst = d.subcells(acc)[0];
    d.remove_instance(reg_inst);
    let after = shared.borrow_mut().delay(&mut d, acc, "in", "out").unwrap();
    assert_eq!(after, None);
}

#[test]
fn instance_delay_vars_carry_adjusted_values() {
    let mut f = build(60.0, 90.0, 10.0);
    f.an.delay(&mut f.d, f.accumulator, "in", "out")
        .unwrap()
        .unwrap();
    let add_inst = f.d.subcells(f.accumulator)[1];
    let iv = f.an.instance_delay_var(add_inst, "a", "sum").unwrap();
    assert_eq!(
        f.d.network().value(iv),
        &Value::Float(100.0),
        "90 + 10 load"
    );
    let reg_inst = f.d.subcells(f.accumulator)[0];
    let rv = f.an.instance_delay_var(reg_inst, "d", "q").unwrap();
    assert_eq!(f.d.network().value(rv), &Value::Float(60.0));
}

/// §7.3's combinatorial-explosion guard: a cell with many parallel
/// declared-delay branches exceeds a tiny path cap and is reported, not
/// silently exploded.
#[test]
fn delay_path_explosion_is_guarded() {
    use stem_design::Design;

    let mut d = Design::new();
    let mut an = DelayAnalyzer::new();
    an.set_max_paths(4);

    let branch = d.define_class("BR");
    d.add_signal(branch, "in", SignalDir::Input);
    d.add_signal(branch, "out", SignalDir::Output);
    an.declare_delay(&mut d, branch, "in", "out");
    an.set_estimate(&mut d, branch, "in", "out", 1.0).unwrap();

    let top = d.define_class("WIDE");
    d.add_signal(top, "in", SignalDir::Input);
    d.add_signal(top, "out", SignalDir::Output);
    an.declare_delay(&mut d, top, "in", "out");
    let n_in = d.add_net(top, "ni");
    d.connect_io(n_in, "in").unwrap();
    let n_out = d.add_net(top, "no");
    d.connect_io(n_out, "out").unwrap();
    for i in 0..6 {
        let b = d
            .instantiate(branch, top, format!("b{i}"), Transform::IDENTITY)
            .unwrap();
        d.connect(n_in, b, "in").unwrap();
        d.connect(n_out, b, "out").unwrap();
    }
    let err = an.delay(&mut d, top, "in", "out").unwrap_err();
    assert!(err.to_string().contains("explosion"), "{err}");

    // Raising the cap recovers.
    an.set_max_paths(100);
    assert_eq!(an.delay(&mut d, top, "in", "out").unwrap(), Some(1.0));
}
