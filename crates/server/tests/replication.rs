//! Replication over the wire: a leader server on a durable engine, a
//! follower server on a replica engine, segments shipped client-side
//! (fetch from one socket, ingest into the other), then kill-leader /
//! promote-follower — all through [`Client`], no in-process shortcuts.

use std::fs;
use std::path::PathBuf;

use stem_core::{Value, VarId};
use stem_engine::{
    Command, ConstraintSpec, Durability, DurabilityOptions, Engine, EngineConfig, SessionId, Source,
};
use stem_server::{Client, Server};

fn temp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("stem-server-repl-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&d);
    d
}

fn leader_engine(dir: &PathBuf) -> Engine {
    let opts = DurabilityOptions {
        segment_bytes: 512,
        checkpoint_bytes: 0,
        mode: Durability::GroupCommit,
        ..DurabilityOptions::default()
    };
    let config = EngineConfig {
        workers: 2,
        ..EngineConfig::default()
    };
    Engine::open_with_config(dir, config, opts).expect("durable leader opens")
}

fn set(ix: usize, v: i64) -> Command {
    Command::Set {
        var: VarId::from_index(ix),
        value: Value::Int(v),
        source: Source::User,
    }
}

/// Client-side shipping: seal on the leader connection, fetch each
/// sealed segment, ingest into the follower connection.
fn ship(leader: &mut Client, follower: &mut Client) -> (u64, u64, u64) {
    let mut totals = (0, 0, 0);
    for ix in leader.seal_wal().expect("leader seals") {
        let bytes = leader.fetch_segment(ix).expect("segment fetches");
        let (a, s, x) = follower.ingest_segment(&bytes).expect("segment ingests");
        totals = (totals.0 + a, totals.1 + s, totals.2 + x);
    }
    totals
}

#[test]
fn kill_leader_promote_follower_over_tcp() {
    let dir = temp_dir("fleet");
    let leader_srv = Server::spawn(leader_engine(&dir), "127.0.0.1:0").unwrap();
    let follower_srv = Server::spawn(Engine::replica(3), "127.0.0.1:0").unwrap();
    let mut leader = Client::connect(leader_srv.local_addr()).unwrap();
    let mut follower = Client::connect(follower_srv.local_addr()).unwrap();

    // Two sessions of real work on the leader.
    let s0 = leader.open().unwrap();
    let s1 = leader.open().unwrap();
    for &s in &[s0, s1] {
        leader
            .apply(
                s,
                &[
                    Command::AddVariable { name: "a".into() },
                    Command::AddVariable { name: "b".into() },
                    Command::AddVariable { name: "sum".into() },
                    Command::AddConstraint {
                        spec: ConstraintSpec::Sum,
                        args: vec![
                            VarId::from_index(0),
                            VarId::from_index(1),
                            VarId::from_index(2),
                        ],
                    },
                ],
            )
            .unwrap()
            .unwrap();
    }
    for i in 0..20i64 {
        leader
            .apply(s0, &[set(0, i), set(1, 2 * i)])
            .unwrap()
            .unwrap();
        leader.apply(s1, &[set(0, -i)]).unwrap().unwrap();
    }

    // Bootstrap the follower from the leader's snapshot (none yet —
    // checkpoints are disabled — so this leg is a no-op by design) and
    // ship every sealed segment over the two sockets.
    assert_eq!(leader.fetch_snapshot().unwrap(), None);
    let (applied, skipped, anomalies) = ship(&mut leader, &mut follower);
    assert!(applied >= 42, "42 batches shipped, got {applied}");
    assert_eq!((skipped, anomalies), (0, 0));

    // The follower now serves identical reads over its own socket…
    assert_eq!(
        follower.value(s0, VarId::from_index(2)).unwrap().unwrap(),
        Value::Int(3 * 19)
    );
    assert_eq!(
        follower.value(s1, VarId::from_index(0)).unwrap().unwrap(),
        Value::Int(-19)
    );
    assert_eq!(
        format!("{:?}", follower.dump(s0).unwrap()),
        format!("{:?}", leader.dump(s0).unwrap()),
        "dump must match leader byte for byte"
    );
    // …but refuses writes.
    assert!(matches!(
        follower.apply(s0, &[set(0, 7)]).unwrap(),
        Err(stem_engine::BatchError::ReadOnlyReplica)
    ));
    // Re-shipping the same segments is idempotent.
    let mut follower2 = Client::connect(follower_srv.local_addr()).unwrap();
    let (re_applied, re_skipped, _) = ship(&mut leader, &mut follower2);
    assert_eq!(re_applied, 0, "idempotent re-ship must apply nothing");
    assert!(re_skipped > 0);

    // Kill the leader mid-fleet: server torn down, engine dropped.
    drop(leader);
    drop(leader_srv);

    // Promote the follower over its socket; it starts taking writes and
    // its replication verbs go dormant (not a durable engine).
    assert!(follower.promote().unwrap());
    assert!(!follower.promote().unwrap(), "second promote is a no-op");
    follower.apply(s0, &[set(0, 100)]).unwrap().unwrap();
    assert_eq!(
        follower.value(s0, VarId::from_index(2)).unwrap().unwrap(),
        Value::Int(100 + 2 * 19)
    );
    assert!(follower.seal_wal().is_err(), "volatile promotee has no WAL");

    // New sessions allocate above everything the replica ever ingested.
    let fresh = follower.open().unwrap();
    assert_eq!(fresh, SessionId(2));

    let stats = follower.stats().unwrap();
    assert!(stats.segments_ingested > 0);
    assert!(stats.records_replayed >= 42);
    let _ = fs::remove_dir_all(&dir);
}
