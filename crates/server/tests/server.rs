//! Loopback end-to-end: a real [`Server`] on an ephemeral port, driven
//! by [`Client`]s over TCP — session lifecycle, pipelined submission,
//! queries, stats, cross-connection ordering, and shutdown.

use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use stem_core::{Justification, Value, VarId};
use stem_engine::{BatchError, Command, ConstraintSpec, Engine, SessionId, Source};
use stem_server::{Client, Server};

fn spawn_server() -> Server {
    Server::spawn(Engine::new(2), "127.0.0.1:0").expect("bind ephemeral port")
}

fn set(ix: usize, v: i64) -> Command {
    Command::Set {
        var: VarId::from_index(ix),
        value: Value::Int(v),
        source: Source::User,
    }
}

#[test]
fn session_lifecycle_queries_and_stats_over_tcp() {
    let server = spawn_server();
    let mut c = Client::connect(server.local_addr()).unwrap();
    c.ping().unwrap();

    let s = c.open().unwrap();
    // a + b = c with a tripwire; then read values and provenance back.
    c.apply(
        s,
        &[
            Command::AddVariable { name: "a".into() },
            Command::AddVariable { name: "b".into() },
            Command::AddVariable { name: "c".into() },
            Command::AddConstraint {
                spec: ConstraintSpec::Sum,
                args: vec![
                    VarId::from_index(0),
                    VarId::from_index(1),
                    VarId::from_index(2),
                ],
            },
        ],
    )
    .unwrap()
    .expect("skeleton applies");
    c.apply(s, &[set(0, 4), set(1, 38)]).unwrap().unwrap();

    assert_eq!(
        c.value(s, VarId::from_index(2)).unwrap().unwrap(),
        Value::Int(42)
    );
    let dump = c.dump(s).unwrap();
    assert_eq!(dump.len(), 3);
    let (_, value, just) = dump.iter().find(|(name, _, _)| name == "c").unwrap();
    assert_eq!(*value, Value::Int(42));
    assert!(
        matches!(just, Justification::Propagated { .. }),
        "c must be justified by the sum constraint, got {just:?}"
    );
    assert!(c.violations(s).unwrap().is_empty());

    // A violating batch reports the violation and rolls back.
    let err = c
        .apply(
            s,
            &[Command::AddConstraint {
                spec: ConstraintSpec::LeConst(Value::Int(10)),
                args: vec![VarId::from_index(2)],
            }],
        )
        .unwrap()
        .unwrap_err();
    assert!(matches!(err, BatchError::Violation { .. }), "{err:?}");
    assert_eq!(
        c.value(s, VarId::from_index(2)).unwrap().unwrap(),
        Value::Int(42),
        "violating batch must roll back over the wire too"
    );

    let stats = c.stats().unwrap();
    assert!(stats.batches >= 5);
    assert_eq!(stats.violations, 1);
    let ss = c.session_stats(s).unwrap();
    assert_eq!(ss.violations, 1);
    assert_eq!(ss.n_variables, 3);
    assert!(!ss.quarantined);

    // Untouched session ids materialise fresh (empty) sessions, so a
    // set on one fails command validation — cleanly, not fatally.
    assert!(matches!(
        c.apply(SessionId(999), &[set(0, 1)]).unwrap(),
        Err(BatchError::InvalidCommand { .. })
    ));

    assert!(c.close_session(s).unwrap());
    assert!(!c.close_session(s).unwrap(), "second close reports absent");
}

#[test]
fn pipelined_batches_come_back_in_order() {
    let server = spawn_server();
    let mut c = Client::connect(server.local_addr()).unwrap();
    let s = c.open().unwrap();
    c.apply(s, &[Command::AddVariable { name: "v".into() }])
        .unwrap()
        .unwrap();

    // 100 batches in flight before reading a single reply; the i-th
    // reply must carry the i-th probe value.
    const N: i64 = 100;
    for i in 0..N {
        c.submit(
            s,
            &[
                set(0, i),
                Command::Get {
                    var: VarId::from_index(0),
                },
            ],
        )
        .unwrap();
    }
    // call() is refused while the pipeline is open.
    assert!(c.stats().is_err());
    let results = c.drain().unwrap();
    assert_eq!(results.len(), N as usize);
    for (i, result) in results.into_iter().enumerate() {
        let out = result.unwrap_or_else(|e| panic!("batch {i}: {e}"));
        assert_eq!(
            format!("{:?}", out.outputs[1]),
            format!("{:?}", stem_engine::Output::Value(Value::Int(i as i64))),
            "reply {i} out of order"
        );
    }
    // Drained: immediate calls work again.
    assert!(c.stats().unwrap().batches >= N as u64);
}

#[test]
fn one_session_driven_from_many_connections_stays_ordered() {
    let server = spawn_server();
    let addr = server.local_addr();
    let mut admin = Client::connect(addr).unwrap();
    let s = admin.open().unwrap();
    admin
        .apply(
            s,
            &[
                Command::AddVariable {
                    name: "slot".into(),
                },
                Command::SetValueChangeLimit { limit: 100_000 },
            ],
        )
        .unwrap()
        .unwrap();

    // 4 connections race 50 batches each into one session. Every batch
    // sets `slot` to a tagged value and reads it back in the same batch;
    // per-session serialisation means each batch observes its *own*
    // write, never a torn interleaving.
    let applied = Arc::new(AtomicU64::new(0));
    std::thread::scope(|scope| {
        for conn in 0..4i64 {
            let applied = Arc::clone(&applied);
            scope.spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                for i in 0..50i64 {
                    let tag = conn * 1000 + i;
                    c.submit(
                        s,
                        &[
                            set(0, tag),
                            Command::Get {
                                var: VarId::from_index(0),
                            },
                        ],
                    )
                    .unwrap();
                }
                for (i, result) in c.drain().unwrap().into_iter().enumerate() {
                    let out = result.unwrap_or_else(|e| panic!("conn {conn} batch {i}: {e}"));
                    let tag = conn * 1000 + i as i64;
                    assert_eq!(
                        format!("{:?}", out.outputs[1]),
                        format!("{:?}", stem_engine::Output::Value(Value::Int(tag))),
                        "conn {conn}: batch {i} saw someone else's write inside its own batch"
                    );
                    applied.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    assert_eq!(applied.load(Ordering::Relaxed), 200);
    let ss = admin.session_stats(s).unwrap();
    assert_eq!(ss.batches_ok, 201, "200 raced batches + the skeleton");
}

#[test]
fn malformed_frames_get_an_error_reply_and_close_the_connection() {
    let server = spawn_server();
    let addr = server.local_addr();

    // Garbage payload inside a valid frame: server replies Err, closes.
    {
        use stem_core::codec::Reader;
        use stem_server::proto::{read_frame, write_frame, Reply};
        let mut raw = TcpStream::connect(addr).unwrap();
        write_frame(&mut raw, &[0xFFu8, 1, 2, 3]).unwrap();
        let payload = read_frame(&mut raw).unwrap().expect("an error reply");
        let reply = Reply::decode(&mut Reader::new(&payload)).unwrap();
        assert!(matches!(reply, Reply::Err { .. }), "{reply:?}");
        // ... and then the connection closes cleanly.
        assert_eq!(read_frame(&mut raw).unwrap(), None);
    }
    // Corrupt frame header: connection just dies; server survives.
    {
        use std::io::Write;
        let mut raw = TcpStream::connect(addr).unwrap();
        raw.write_all(&[0xDE, 0xAD, 0xBE, 0xEF, 0, 0, 0, 0])
            .unwrap();
    }
    // The server is still healthy for well-formed clients.
    let mut c = Client::connect(addr).unwrap();
    c.ping().unwrap();
}

#[test]
fn shutdown_request_stops_the_server() {
    let server = spawn_server();
    let addr = server.local_addr();
    let mut c = Client::connect(addr).unwrap();
    let s = c.open().unwrap();
    c.apply(s, &[Command::AddVariable { name: "v".into() }])
        .unwrap()
        .unwrap();
    c.shutdown_server().unwrap();
    server.wait(); // returns because the client asked for shutdown
    drop(server);
    assert!(
        TcpStream::connect(addr).is_err()
            || Client::connect(addr).and_then(|mut c| c.ping()).is_err(),
        "listener must be gone after shutdown"
    );
}

// ---------------------------------------------------------------------
// Robustness: timeouts, idle reaping, connection caps, client failover.
// ---------------------------------------------------------------------

use std::io::{Read, Write};
use std::time::{Duration, Instant};

use stem_server::{RetryPolicy, ServerOptions};

/// Reads until the server closes the connection (EOF or reset),
/// panicking if it stays open past `within`.
fn expect_eviction(stream: &mut TcpStream, within: Duration) {
    stream
        .set_read_timeout(Some(Duration::from_millis(50)))
        .unwrap();
    let start = Instant::now();
    let mut buf = [0u8; 64];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => return, // clean close
            Ok(_) => continue,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::ConnectionReset | std::io::ErrorKind::BrokenPipe
                ) =>
            {
                return
            }
            Err(_) => {
                assert!(
                    start.elapsed() < within,
                    "server kept the dead connection open past {within:?}"
                );
            }
        }
    }
}

#[test]
fn half_open_and_idle_connections_are_reaped_without_hurting_others() {
    let server = Server::spawn_with(
        Engine::new(1),
        "127.0.0.1:0",
        ServerOptions {
            read_timeout: Duration::from_millis(150),
            idle_timeout: Some(Duration::from_millis(200)),
            ..ServerOptions::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    // A half-open peer: three header bytes, then silence mid-frame.
    let mut stalled = TcpStream::connect(addr).unwrap();
    stalled.write_all(&[0x08, 0x00, 0x00]).unwrap();
    // An idle peer: connected, never speaks.
    let mut idle = TcpStream::connect(addr).unwrap();

    // A healthy client keeps working the whole time the reaper runs.
    let mut healthy = Client::connect(addr).unwrap();
    let s = healthy.open().unwrap();
    healthy
        .apply(s, &[Command::AddVariable { name: "v".into() }])
        .unwrap()
        .unwrap();
    for i in 0..8 {
        healthy.apply(s, &[set(0, i)]).unwrap().unwrap();
        std::thread::sleep(Duration::from_millis(60));
    }

    expect_eviction(&mut stalled, Duration::from_secs(3));
    expect_eviction(&mut idle, Duration::from_secs(3));
    // And the healthy connection survived both evictions.
    healthy.ping().unwrap();
    assert_eq!(
        healthy.value(s, VarId::from_index(0)).unwrap().unwrap(),
        Value::Int(7)
    );
}

#[test]
fn connection_cap_refuses_with_busy_and_frees_on_disconnect() {
    let server = Server::spawn_with(
        Engine::new(1),
        "127.0.0.1:0",
        ServerOptions {
            max_connections: Some(1),
            ..ServerOptions::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    let mut first = Client::connect(addr).unwrap();
    first.ping().unwrap();

    // The slot is taken: the next connection gets a structured refusal,
    // not a silent drop.
    let mut refused = Client::connect(addr).unwrap();
    let err = refused.ping().unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::ConnectionRefused);
    assert!(
        err.to_string().contains("connection cap"),
        "refusal must name the cause, got: {err}"
    );
    // The occupant never noticed.
    first.ping().unwrap();

    // Freeing the slot readmits new connections (the server needs a
    // moment to observe the close).
    drop(first);
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        if let Ok(mut c) = Client::connect(addr) {
            if c.ping().is_ok() {
                break;
            }
        }
        assert!(Instant::now() < deadline, "slot never freed");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Two servers front one shared engine; the client pipelines keyed
/// mutating batches while its connection is yanked mid-stream. The
/// resubmit path must neither lose a batch nor apply one twice — the
/// variable count is the witness.
#[test]
fn failover_client_resubmits_without_loss_or_double_apply() {
    let engine = Arc::new(Engine::new(2));
    let srv_a = Server::spawn(Arc::clone(&engine), "127.0.0.1:0").unwrap();
    let srv_b = Server::spawn(Arc::clone(&engine), "127.0.0.1:0").unwrap();
    let addrs = [srv_a.local_addr(), srv_b.local_addr()];

    let mut c = Client::connect_failover(&addrs[..], RetryPolicy::default()).unwrap();
    let s = c.open().unwrap();

    const N: usize = 30;
    for i in 0..N {
        c.submit(
            s,
            &[Command::AddVariable {
                name: format!("n{i}"),
            }],
        )
        .unwrap();
        if i == N / 2 {
            // Yank every connection on both servers mid-pipeline; the
            // client reconnects (either server — same engine) and
            // resends its unanswered frames under their original keys.
            srv_a.disconnect_all();
            srv_b.disconnect_all();
        }
    }
    let results = c.drain().unwrap();
    assert_eq!(results.len(), N);
    for (i, r) in results.iter().enumerate() {
        assert!(r.is_ok(), "batch {i} failed: {r:?}");
    }
    // The proof: exactly N variables. A lost batch leaves fewer; a
    // double-applied resend leaves more. (Dedup acks arrive as empty
    // outcomes, so some Ok results carry no outputs — that's the
    // resubmit guard working.)
    let ss = c.session_stats(s).unwrap();
    assert_eq!(ss.n_variables, N as u64, "lost or double-applied batches");
    assert!(c.stats().unwrap().dedup_skips as usize <= N);
}

/// Busy refusals during failover are retryable: a capped server and a
/// free one share an engine; the client lands on whichever accepts.
#[test]
fn failover_client_rides_past_a_busy_server() {
    let engine = Arc::new(Engine::new(1));
    let capped = Server::spawn_with(
        Arc::clone(&engine),
        "127.0.0.1:0",
        ServerOptions {
            max_connections: Some(0),
            ..ServerOptions::default()
        },
    )
    .unwrap();
    let free = Server::spawn(Arc::clone(&engine), "127.0.0.1:0").unwrap();

    let mut c = Client::connect_failover(
        &[capped.local_addr(), free.local_addr()][..],
        RetryPolicy::default(),
    )
    .unwrap();
    c.ping().unwrap();
    let s = c.open().unwrap();
    c.apply(s, &[Command::AddVariable { name: "v".into() }])
        .unwrap()
        .unwrap();
    assert_eq!(c.session_stats(s).unwrap().n_variables, 1);
}
