//! Loopback end-to-end: a real [`Server`] on an ephemeral port, driven
//! by [`Client`]s over TCP — session lifecycle, pipelined submission,
//! queries, stats, cross-connection ordering, and shutdown.

use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use stem_core::{Justification, Value, VarId};
use stem_engine::{BatchError, Command, ConstraintSpec, Engine, SessionId, Source};
use stem_server::{Client, Server};

fn spawn_server() -> Server {
    Server::spawn(Engine::new(2), "127.0.0.1:0").expect("bind ephemeral port")
}

fn set(ix: usize, v: i64) -> Command {
    Command::Set {
        var: VarId::from_index(ix),
        value: Value::Int(v),
        source: Source::User,
    }
}

#[test]
fn session_lifecycle_queries_and_stats_over_tcp() {
    let server = spawn_server();
    let mut c = Client::connect(server.local_addr()).unwrap();
    c.ping().unwrap();

    let s = c.open().unwrap();
    // a + b = c with a tripwire; then read values and provenance back.
    c.apply(
        s,
        &[
            Command::AddVariable { name: "a".into() },
            Command::AddVariable { name: "b".into() },
            Command::AddVariable { name: "c".into() },
            Command::AddConstraint {
                spec: ConstraintSpec::Sum,
                args: vec![
                    VarId::from_index(0),
                    VarId::from_index(1),
                    VarId::from_index(2),
                ],
            },
        ],
    )
    .unwrap()
    .expect("skeleton applies");
    c.apply(s, &[set(0, 4), set(1, 38)]).unwrap().unwrap();

    assert_eq!(
        c.value(s, VarId::from_index(2)).unwrap().unwrap(),
        Value::Int(42)
    );
    let dump = c.dump(s).unwrap();
    assert_eq!(dump.len(), 3);
    let (_, value, just) = dump.iter().find(|(name, _, _)| name == "c").unwrap();
    assert_eq!(*value, Value::Int(42));
    assert!(
        matches!(just, Justification::Propagated { .. }),
        "c must be justified by the sum constraint, got {just:?}"
    );
    assert!(c.violations(s).unwrap().is_empty());

    // A violating batch reports the violation and rolls back.
    let err = c
        .apply(
            s,
            &[Command::AddConstraint {
                spec: ConstraintSpec::LeConst(Value::Int(10)),
                args: vec![VarId::from_index(2)],
            }],
        )
        .unwrap()
        .unwrap_err();
    assert!(matches!(err, BatchError::Violation { .. }), "{err:?}");
    assert_eq!(
        c.value(s, VarId::from_index(2)).unwrap().unwrap(),
        Value::Int(42),
        "violating batch must roll back over the wire too"
    );

    let stats = c.stats().unwrap();
    assert!(stats.batches >= 5);
    assert_eq!(stats.violations, 1);
    let ss = c.session_stats(s).unwrap();
    assert_eq!(ss.violations, 1);
    assert_eq!(ss.n_variables, 3);
    assert!(!ss.quarantined);

    // Untouched session ids materialise fresh (empty) sessions, so a
    // set on one fails command validation — cleanly, not fatally.
    assert!(matches!(
        c.apply(SessionId(999), &[set(0, 1)]).unwrap(),
        Err(BatchError::InvalidCommand { .. })
    ));

    assert!(c.close_session(s).unwrap());
    assert!(!c.close_session(s).unwrap(), "second close reports absent");
}

#[test]
fn pipelined_batches_come_back_in_order() {
    let server = spawn_server();
    let mut c = Client::connect(server.local_addr()).unwrap();
    let s = c.open().unwrap();
    c.apply(s, &[Command::AddVariable { name: "v".into() }])
        .unwrap()
        .unwrap();

    // 100 batches in flight before reading a single reply; the i-th
    // reply must carry the i-th probe value.
    const N: i64 = 100;
    for i in 0..N {
        c.submit(
            s,
            &[
                set(0, i),
                Command::Get {
                    var: VarId::from_index(0),
                },
            ],
        )
        .unwrap();
    }
    // call() is refused while the pipeline is open.
    assert!(c.stats().is_err());
    let results = c.drain().unwrap();
    assert_eq!(results.len(), N as usize);
    for (i, result) in results.into_iter().enumerate() {
        let out = result.unwrap_or_else(|e| panic!("batch {i}: {e}"));
        assert_eq!(
            format!("{:?}", out.outputs[1]),
            format!("{:?}", stem_engine::Output::Value(Value::Int(i as i64))),
            "reply {i} out of order"
        );
    }
    // Drained: immediate calls work again.
    assert!(c.stats().unwrap().batches >= N as u64);
}

#[test]
fn one_session_driven_from_many_connections_stays_ordered() {
    let server = spawn_server();
    let addr = server.local_addr();
    let mut admin = Client::connect(addr).unwrap();
    let s = admin.open().unwrap();
    admin
        .apply(
            s,
            &[
                Command::AddVariable {
                    name: "slot".into(),
                },
                Command::SetValueChangeLimit { limit: 100_000 },
            ],
        )
        .unwrap()
        .unwrap();

    // 4 connections race 50 batches each into one session. Every batch
    // sets `slot` to a tagged value and reads it back in the same batch;
    // per-session serialisation means each batch observes its *own*
    // write, never a torn interleaving.
    let applied = Arc::new(AtomicU64::new(0));
    std::thread::scope(|scope| {
        for conn in 0..4i64 {
            let applied = Arc::clone(&applied);
            scope.spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                for i in 0..50i64 {
                    let tag = conn * 1000 + i;
                    c.submit(
                        s,
                        &[
                            set(0, tag),
                            Command::Get {
                                var: VarId::from_index(0),
                            },
                        ],
                    )
                    .unwrap();
                }
                for (i, result) in c.drain().unwrap().into_iter().enumerate() {
                    let out = result.unwrap_or_else(|e| panic!("conn {conn} batch {i}: {e}"));
                    let tag = conn * 1000 + i as i64;
                    assert_eq!(
                        format!("{:?}", out.outputs[1]),
                        format!("{:?}", stem_engine::Output::Value(Value::Int(tag))),
                        "conn {conn}: batch {i} saw someone else's write inside its own batch"
                    );
                    applied.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    assert_eq!(applied.load(Ordering::Relaxed), 200);
    let ss = admin.session_stats(s).unwrap();
    assert_eq!(ss.batches_ok, 201, "200 raced batches + the skeleton");
}

#[test]
fn malformed_frames_get_an_error_reply_and_close_the_connection() {
    let server = spawn_server();
    let addr = server.local_addr();

    // Garbage payload inside a valid frame: server replies Err, closes.
    {
        use stem_core::codec::Reader;
        use stem_server::proto::{read_frame, write_frame, Reply};
        let mut raw = TcpStream::connect(addr).unwrap();
        write_frame(&mut raw, &[0xFFu8, 1, 2, 3]).unwrap();
        let payload = read_frame(&mut raw).unwrap().expect("an error reply");
        let reply = Reply::decode(&mut Reader::new(&payload)).unwrap();
        assert!(matches!(reply, Reply::Err { .. }), "{reply:?}");
        // ... and then the connection closes cleanly.
        assert_eq!(read_frame(&mut raw).unwrap(), None);
    }
    // Corrupt frame header: connection just dies; server survives.
    {
        use std::io::Write;
        let mut raw = TcpStream::connect(addr).unwrap();
        raw.write_all(&[0xDE, 0xAD, 0xBE, 0xEF, 0, 0, 0, 0])
            .unwrap();
    }
    // The server is still healthy for well-formed clients.
    let mut c = Client::connect(addr).unwrap();
    c.ping().unwrap();
}

#[test]
fn shutdown_request_stops_the_server() {
    let server = spawn_server();
    let addr = server.local_addr();
    let mut c = Client::connect(addr).unwrap();
    let s = c.open().unwrap();
    c.apply(s, &[Command::AddVariable { name: "v".into() }])
        .unwrap()
        .unwrap();
    c.shutdown_server().unwrap();
    server.wait(); // returns because the client asked for shutdown
    drop(server);
    assert!(
        TcpStream::connect(addr).is_err()
            || Client::connect(addr).and_then(|mut c| c.ping()).is_err(),
        "listener must be gone after shutdown"
    );
}
