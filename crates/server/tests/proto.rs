//! Wire-protocol unit coverage: frame framing (EOF, torn, corrupt),
//! request/reply round-trips for every message type, and truncation
//! sweeps mirroring the core codec's crash matrix.

use std::io::Cursor;

use stem_core::codec::Reader;
use stem_core::{ConstraintId, FinSet, Interval, Justification, Value, VarId, Violation};
use stem_engine::{
    BatchError, BatchOutcome, Command, ConstraintSpec, EngineStats, Output, SessionStats, Source,
};
use stem_server::proto::{read_frame, write_frame, Reply, Request, MAX_FRAME_LEN};

fn frame_bytes(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    write_frame(&mut out, payload).unwrap();
    out
}

#[test]
fn frames_round_trip_and_reject_corruption() {
    let payload = b"hello, session service".to_vec();
    let bytes = frame_bytes(&payload);
    assert_eq!(
        read_frame(&mut Cursor::new(&bytes)).unwrap().as_deref(),
        Some(payload.as_slice())
    );
    // Clean EOF between frames.
    assert_eq!(read_frame(&mut Cursor::new(&[] as &[u8])).unwrap(), None);
    // EOF inside the header and inside the payload are hard errors.
    for cut in 1..bytes.len() {
        assert!(
            read_frame(&mut Cursor::new(&bytes[..cut])).is_err(),
            "cut at {cut} did not error"
        );
    }
    // Any single corrupted byte fails the checksum (or the length field).
    for i in 0..bytes.len() {
        let mut bad = bytes.clone();
        bad[i] ^= 0x40;
        assert!(
            read_frame(&mut Cursor::new(&bad)).is_err(),
            "corrupt byte {i} went unnoticed"
        );
    }
    // Oversized length claims are rejected before allocation.
    let mut huge = Vec::new();
    huge.extend_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
    huge.extend_from_slice(&0u32.to_le_bytes());
    assert!(read_frame(&mut Cursor::new(&huge)).is_err());
    // And refused on the write side too.
    let mut sink = Vec::new();
    assert!(write_frame(&mut sink, &vec![0u8; MAX_FRAME_LEN as usize + 1]).is_err());
}

fn sample_requests() -> Vec<Request> {
    vec![
        Request::Ping,
        Request::Open,
        Request::Close { session: 7 },
        Request::Submit {
            session: 3,
            commands: vec![
                Command::AddVariable { name: "α".into() },
                Command::Set {
                    var: VarId::from_index(0),
                    value: Value::List(vec![Value::Int(1), Value::str("x")]),
                    source: Source::Application,
                },
                Command::Unset {
                    var: VarId::from_index(1),
                },
                Command::AddConstraint {
                    spec: ConstraintSpec::Scale {
                        gain: 2.5,
                        offset: -1.0,
                    },
                    args: vec![VarId::from_index(0), VarId::from_index(1)],
                },
                Command::RemoveConstraint {
                    constraint: ConstraintId::from_index(4),
                },
                Command::EnableConstraint {
                    constraint: ConstraintId::from_index(2),
                    enabled: false,
                },
                Command::SetKindEnabled {
                    kind_name: "sum".into(),
                    enabled: true,
                },
                Command::SetValueChangeLimit { limit: 3 },
                Command::Get {
                    var: VarId::from_index(9),
                },
                Command::Probe {
                    var: VarId::from_index(2),
                    value: Value::Float(0.5),
                },
                Command::DumpValues,
                Command::CheckAll,
            ],
        },
        Request::Stats,
        Request::SessionStats { session: 11 },
        Request::SealWal,
        Request::FetchSegment { index: 42 },
        Request::FetchSnapshot,
        Request::IngestSnapshot {
            bytes: vec![1, 2, 3, 0xFF],
        },
        Request::IngestSegment {
            bytes: b"STEMWAL1garbage-but-opaque-here".to_vec(),
        },
        Request::Promote,
        Request::Shutdown,
        Request::SubmitSeq {
            session: 6,
            key: 41,
            commands: vec![
                Command::AddVariable { name: "w".into() },
                Command::Set {
                    var: VarId::from_index(0),
                    value: Value::Int(8),
                    source: Source::User,
                },
            ],
        },
        Request::Lease { session: 5 },
        Request::CatchUp,
        // A domain session over the wire: interval/finite-set values and
        // every domain constraint spec must survive the round trip.
        Request::Submit {
            session: 9,
            commands: vec![
                Command::Set {
                    var: VarId::from_index(0),
                    value: Value::Interval(Interval::new(-5, 4096)),
                    source: Source::User,
                },
                Command::Set {
                    var: VarId::from_index(1),
                    value: Value::FinSet(FinSet::new(0x8000_0000_0000_0011)),
                    source: Source::Update,
                },
                Command::AddConstraint {
                    spec: ConstraintSpec::DomAdd {
                        views: [(1, 0), (-1, 3), (1, 0)],
                        out: Some(2),
                    },
                    args: vec![
                        VarId::from_index(0),
                        VarId::from_index(1),
                        VarId::from_index(2),
                    ],
                },
                Command::AddConstraint {
                    spec: ConstraintSpec::DomLe {
                        c: -7,
                        views: [(-1, 0), (-1, 0)],
                        out: None,
                    },
                    args: vec![VarId::from_index(0), VarId::from_index(1)],
                },
                Command::AddConstraint {
                    spec: ConstraintSpec::DomAllDiff,
                    args: vec![VarId::from_index(0), VarId::from_index(1)],
                },
                Command::AddConstraint {
                    spec: ConstraintSpec::DomReifLe {
                        c: 2,
                        views: [(1, 0), (1, 0)],
                    },
                    args: vec![
                        VarId::from_index(3),
                        VarId::from_index(0),
                        VarId::from_index(1),
                    ],
                },
                Command::Probe {
                    var: VarId::from_index(2),
                    value: Value::Interval(Interval::new(i64::MIN, i64::MAX)),
                },
            ],
        },
    ]
}

fn sample_replies() -> Vec<Reply> {
    let mut stats = EngineStats {
        batches: 10,
        batches_ok: 9,
        wal_appends: 8,
        wal_bytes: 4096,
        wal_group_syncs: 3,
        segments_ingested: 2,
        records_replayed: 77,
        dedup_skips: 6,
        domain_tightenings: 31,
        subsumed_pruned: 12,
        wipeouts: 2,
        ..EngineStats::default()
    };
    stats.latency_buckets[0] = 5;
    *stats.latency_buckets.last_mut().unwrap() = 1;
    vec![
        Reply::Pong,
        Reply::Session { id: 12 },
        Reply::Closed { existed: true },
        Reply::Batch(Ok(BatchOutcome {
            outputs: vec![
                Output::Unit,
                Output::Var(VarId::from_index(3)),
                Output::Constraint(ConstraintId::from_index(1)),
                Output::Value(Value::str("wire")),
                Output::Feasible(false),
                Output::Count(6),
                Output::Dump(vec![(
                    "a".into(),
                    Value::Int(7),
                    Justification::Propagated {
                        constraint: ConstraintId::from_index(0),
                        record: stem_core::DependencyRecord::All,
                    },
                )]),
                Output::Violations(vec![Violation::unsatisfied(ConstraintId::from_index(2))]),
            ],
            waves: 4,
            assignments: 9,
        })),
        Reply::Batch(Err(BatchError::Violation {
            index: 1,
            violation: Violation::revisit(
                VarId::from_index(0),
                ConstraintId::from_index(1),
                Value::Int(99),
            ),
        })),
        Reply::Batch(Err(BatchError::InvalidCommand {
            index: 0,
            reason: "nope".into(),
        })),
        Reply::Batch(Err(BatchError::Panicked {
            index: usize::MAX,
            message: "boom".into(),
        })),
        Reply::Batch(Err(BatchError::Persist {
            message: "disk full".into(),
        })),
        Reply::Batch(Err(BatchError::Quarantined)),
        Reply::Batch(Err(BatchError::Backpressure)),
        Reply::Batch(Err(BatchError::Shutdown)),
        Reply::Batch(Err(BatchError::ReadOnlyReplica)),
        Reply::Stats(stats),
        Reply::SessionStats(SessionStats {
            batches: 5,
            wal_appends: 4,
            wal_bytes: 512,
            quarantined: true,
            domain_tightenings: 17,
            subsumed_pruned: 3,
            wipeouts: 1,
            ..SessionStats::default()
        }),
        // Domain values inside a dump reply (the inspector path).
        Reply::Batch(Ok(BatchOutcome {
            outputs: vec![
                Output::Value(Value::Interval(Interval::new(10, 20))),
                Output::Dump(vec![(
                    "dom".into(),
                    Value::FinSet(FinSet::new(0b1010_0001)),
                    Justification::User,
                )]),
            ],
            waves: 1,
            assignments: 2,
        })),
        Reply::Sealed {
            segments: vec![0, 1, 5],
        },
        Reply::Segment {
            bytes: vec![9; 100],
        },
        Reply::Snapshot { bytes: None },
        Reply::Snapshot {
            bytes: Some(vec![1, 2, 3]),
        },
        Reply::Ingested {
            applied: 10,
            skipped: 2,
            anomalies: 0,
        },
        Reply::Promoted { was_replica: true },
        Reply::ShuttingDown,
        Reply::Err {
            message: "bad day".into(),
        },
        Reply::Busy {
            active: 64,
            max: 64,
        },
        Reply::Lease {
            epoch: 3,
            holder: 1,
        },
        Reply::CatchUp {
            snapshot: None,
            segments: vec![],
        },
        Reply::CatchUp {
            snapshot: Some(b"STEMSNP1opaque".to_vec()),
            segments: vec![b"STEMWAL1one".to_vec(), b"STEMWAL1two".to_vec()],
        },
    ]
}

#[test]
fn every_request_round_trips() {
    for req in sample_requests() {
        let mut buf = Vec::new();
        req.encode(&mut buf).unwrap();
        let mut r = Reader::new(&buf);
        let back = Request::decode(&mut r).unwrap_or_else(|e| panic!("{req:?}: {e:?}"));
        assert!(r.is_empty(), "{req:?}: trailing bytes");
        assert_eq!(format!("{req:?}"), format!("{back:?}"));
    }
}

#[test]
fn every_reply_round_trips() {
    for reply in sample_replies() {
        let mut buf = Vec::new();
        reply.encode(&mut buf);
        let mut r = Reader::new(&buf);
        let back = Reply::decode(&mut r).unwrap_or_else(|e| panic!("{reply:?}: {e:?}"));
        assert!(r.is_empty(), "{reply:?}: trailing bytes");
        assert_eq!(format!("{reply:?}"), format!("{back:?}"));
    }
}

#[test]
fn every_truncation_of_every_message_errors_cleanly() {
    for req in sample_requests() {
        let mut buf = Vec::new();
        req.encode(&mut buf).unwrap();
        for cut in 0..buf.len() {
            let mut r = Reader::new(&buf[..cut]);
            // A proper prefix of a different message may still decode (a
            // smaller tag-only request is a prefix of a larger one), but
            // it must never panic and never read past the buffer.
            let _ = Request::decode(&mut r);
            assert!(r.position() <= cut, "{req:?}: overran at cut {cut}");
        }
    }
    for reply in sample_replies() {
        let mut buf = Vec::new();
        reply.encode(&mut buf);
        for cut in 0..buf.len() {
            let mut r = Reader::new(&buf[..cut]);
            let _ = Reply::decode(&mut r);
            assert!(r.position() <= cut, "{reply:?}: overran at cut {cut}");
        }
    }
}

#[test]
fn unknown_tags_are_rejected() {
    use stem_core::codec::DecodeError;
    for tag in [16u8, 0x80, 0xFF] {
        assert!(matches!(
            Request::decode(&mut Reader::new(&[tag])),
            Err(DecodeError::Tag { .. })
        ));
        assert!(matches!(
            Reply::decode(&mut Reader::new(&[tag])),
            Err(DecodeError::Tag { .. })
        ));
    }
}

#[test]
fn custom_kinds_are_refused_at_encode_time() {
    let req = Request::Submit {
        session: 0,
        commands: vec![Command::AddConstraint {
            spec: ConstraintSpec::Custom(Box::new(|| {
                std::rc::Rc::new(stem_core::kinds::Equality::new())
            })),
            args: vec![],
        }],
    };
    let mut buf = Vec::new();
    assert!(req.encode(&mut buf).is_err());
}
