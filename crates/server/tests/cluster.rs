//! stem-cluster end-to-end: session-sharded routing, id translation,
//! stats roll-up, segment shipping, lease-fenced failover — capped by a
//! 25-seed kill-leader-mid-pipeline differential against a volatile
//! twin engine: every acked batch must survive promotion byte-for-byte,
//! none may apply twice.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

use stem_core::prng::SplitMix64;
use stem_core::{Value, VarId};
use stem_engine::{
    BatchError, BatchOutcome, Command, ConstraintSpec, Engine, EngineConfig, SessionId, Source,
};
use stem_persist::Lease;
use stem_server::proto::{Reply, Request};
use stem_server::{Backend, Cluster, ClusterOptions};

fn temp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("stem-cluster-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&d);
    d
}

fn options(shards: usize) -> ClusterOptions {
    ClusterOptions {
        shards,
        workers_per_shard: 1,
        segment_bytes: 256,  // rotate early so shipping has segments to move
        ship_interval: None, // tests drive the schedule themselves
    }
}

// Application-source writes: propagation may overwrite them, so
// re-setting across the equality chain retracts and re-propagates
// instead of tripping the user-value overwrite rule.
fn set(ix: usize, v: i64) -> Command {
    Command::Set {
        var: VarId::from_index(ix),
        value: Value::Int(v),
        source: Source::Application,
    }
}

/// Synchronous submit through the router, unkeyed.
fn c_apply(
    cluster: &Cluster,
    s: SessionId,
    commands: Vec<Command>,
) -> Result<BatchOutcome, BatchError> {
    cluster.submit(s, 0, commands).wait()
}

/// Variables + equality chain + a `LeConst(60)` tripwire mid-chain, so
/// a healthy fraction of random Sets violate and roll back. Fresh
/// commands per call (specs are not `Clone`).
fn chain_cmds(n: usize) -> Vec<Command> {
    let mut batch: Vec<Command> = (0..n)
        .map(|i| Command::AddVariable {
            name: format!("v{i}"),
        })
        .collect();
    for i in 0..n - 1 {
        batch.push(Command::AddConstraint {
            spec: ConstraintSpec::Equality,
            args: vec![VarId::from_index(i), VarId::from_index(i + 1)],
        });
    }
    batch.push(Command::AddConstraint {
        spec: ConstraintSpec::LeConst(Value::Int(60)),
        args: vec![VarId::from_index(n / 2)],
    });
    batch
}

/// One deterministic batch drawn from the rng (same shape as the engine
/// differential's generator; drawn once per side to keep rngs in
/// lockstep, since commands are not `Clone`).
fn gen_batch(rng: &mut SplitMix64, n_vars: usize, n_constraints: usize) -> Vec<Command> {
    let mut batch = Vec::new();
    let len = rng.range_usize(1, 5);
    for _ in 0..len {
        let var = VarId::from_index(rng.range_usize(0, n_vars));
        match rng.range_usize(0, 10) {
            0..=4 => batch.push(Command::Set {
                var,
                value: Value::Int(rng.range_i64(0, 90)),
                source: Source::Application,
            }),
            5 => batch.push(Command::Get { var }),
            6 => batch.push(Command::Probe {
                var,
                value: Value::Int(rng.range_i64(0, 90)),
            }),
            7 => batch.push(Command::AddVariable {
                name: format!("x{}", rng.next_u64() % 1000),
            }),
            8 => batch.push(Command::EnableConstraint {
                constraint: stem_core::ConstraintId::from_index(rng.range_usize(0, n_constraints)),
                enabled: rng.next_bool(),
            }),
            _ => batch.push(Command::Get { var }),
        }
    }
    batch
}

fn render(result: &Result<BatchOutcome, BatchError>) -> String {
    match result {
        Ok(out) => format!("ok outputs={:?}", out.outputs),
        Err(e) => format!("err {e:?}"),
    }
}

/// Canonical state string: full dump plus the violation report.
fn state_of(apply: impl FnOnce(Vec<Command>) -> Result<BatchOutcome, BatchError>) -> String {
    let out = apply(vec![Command::DumpValues, Command::CheckAll]).expect("reads never fail");
    format!("{:?}", out.outputs)
}

#[test]
fn router_translates_ids_and_rolls_up_stats() {
    let cluster = Cluster::volatile(options(3));
    assert_eq!(cluster.shards(), 3);

    let sessions: Vec<SessionId> = (0..12).map(|_| cluster.open_session()).collect();
    let mut ids: Vec<u64> = sessions.iter().map(|s| s.0).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), 12, "global session ids must be unique");

    for (i, &s) in sessions.iter().enumerate() {
        c_apply(
            &cluster,
            s,
            vec![Command::AddVariable { name: "v".into() }, set(0, i as i64)],
        )
        .unwrap_or_else(|e| panic!("session {}: {e:?}", s.0));
    }
    // Each session's state lives on exactly its own shard-local session.
    for (i, &s) in sessions.iter().enumerate() {
        let out = c_apply(
            &cluster,
            s,
            vec![Command::Get {
                var: VarId::from_index(0),
            }],
        )
        .unwrap();
        assert_eq!(
            format!("{:?}", out.outputs[0]),
            format!("{:?}", stem_engine::Output::Value(Value::Int(i as i64)))
        );
    }
    // The roll-up absorbs every shard leader exactly once.
    assert_eq!(cluster.stats().batches_ok, 24);

    // serve() speaks the wire vocabulary with global ids.
    match cluster.serve(Request::SessionStats {
        session: sessions[0].0,
    }) {
        Reply::SessionStats(ss) => assert_eq!(ss.n_variables, 1),
        other => panic!("{other:?}"),
    }
    // Replication verbs are the cluster's own business.
    assert!(matches!(cluster.serve(Request::SealWal), Reply::Err { .. }));
    // No lease on a volatile cluster, and nothing to fail over to.
    assert!(matches!(
        cluster.serve(Request::Lease {
            session: sessions[0].0
        }),
        Reply::Lease {
            epoch: 0,
            holder: 0
        }
    ));
    assert!(cluster.fail_over(0).is_err());

    assert!(cluster.close_session(sessions[3]));
    assert!(
        !cluster.close_session(sessions[3]),
        "second close is absent"
    );
}

#[test]
fn rendezvous_spreads_sessions_across_shards() {
    let cluster = Cluster::volatile(options(4));
    let mut per_shard = [0usize; 4];
    for _ in 0..64 {
        per_shard[cluster.shard_of(cluster.open_session())] += 1;
    }
    assert!(
        per_shard.iter().all(|&n| n > 0),
        "64 opens left a shard empty: {per_shard:?}"
    );
}

#[test]
fn fail_over_preserves_acked_batches_and_refuses_a_second() {
    let dir = temp_dir("failover");
    let cluster = Cluster::open(&dir, options(2)).unwrap();

    // Sessions on both shards (open until each shard has one).
    let mut by_shard: [Vec<SessionId>; 2] = [Vec::new(), Vec::new()];
    while by_shard.iter().any(Vec::is_empty) {
        let s = cluster.open_session();
        by_shard[cluster.shard_of(s)].push(s);
    }
    for shard in &by_shard {
        for &s in shard {
            c_apply(&cluster, s, chain_cmds(6)).unwrap();
            c_apply(&cluster, s, vec![set(0, 11)]).unwrap();
        }
    }
    // Ship what exists, then write more that stays unshipped — failover
    // must deliver both halves (warm shipping + post-mortem catch-up).
    let moved = cluster.ship_now().unwrap();
    assert!(moved > 0, "256-byte segments must have sealed by now");
    for shard in &by_shard {
        for &s in shard {
            c_apply(&cluster, s, vec![set(2, 37)]).unwrap();
        }
    }

    let epoch_before = cluster.lease_of(0).0;
    cluster.fail_over(0).unwrap();
    assert!(
        cluster.lease_of(0).0 > epoch_before,
        "failover must advance the lease epoch"
    );

    // Every acked write is on the promoted leader; the chain propagated
    // 37 down the equalities, so any slot reads it back.
    for &s in &by_shard[0] {
        let out = c_apply(
            &cluster,
            s,
            vec![Command::Get {
                var: VarId::from_index(5),
            }],
        )
        .unwrap();
        assert_eq!(
            format!("{:?}", out.outputs[0]),
            format!("{:?}", stem_engine::Output::Value(Value::Int(37)))
        );
        // And it keeps accepting writes.
        c_apply(&cluster, s, vec![set(1, 40)]).unwrap();
    }
    // The other shard never noticed.
    for &s in &by_shard[1] {
        c_apply(&cluster, s, vec![set(3, 12)]).unwrap();
    }

    let err = cluster.fail_over(0).unwrap_err();
    assert!(
        err.to_string().contains("already failed over"),
        "second failover must be refused, got: {err}"
    );
    // An untouched shard can still fail over.
    cluster.fail_over(1).unwrap();
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn lease_epochs_are_monotonic_across_cluster_reopen() {
    let dir = temp_dir("lease-reopen");
    let (first_epochs, session);
    {
        let cluster = Cluster::open(&dir, options(2)).unwrap();
        first_epochs = [cluster.lease_of(0).0, cluster.lease_of(1).0];
        session = cluster.open_session();
        c_apply(&cluster, session, chain_cmds(4)).unwrap();
        c_apply(&cluster, session, vec![set(0, 21)]).unwrap();
        cluster.shutdown();
    }
    let cluster = Cluster::open(&dir, options(2)).unwrap();
    for (ix, &first) in first_epochs.iter().enumerate() {
        assert!(
            cluster.lease_of(ix).0 > first,
            "shard {ix}: reopen must advance the persisted epoch, \
             {} !> {first}",
            cluster.lease_of(ix).0,
        );
    }
    // Recovery replayed the first incarnation's WAL: same global id,
    // same values.
    let out = c_apply(
        &cluster,
        session,
        vec![Command::Get {
            var: VarId::from_index(3),
        }],
    )
    .unwrap();
    assert_eq!(
        format!("{:?}", out.outputs[0]),
        format!("{:?}", stem_engine::Output::Value(Value::Int(21)))
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn resurrected_leader_is_fenced_by_the_advanced_lease() {
    let dir = temp_dir("zombie");
    let cluster = Cluster::open(&dir, options(1)).unwrap();
    let s = cluster.open_session();
    c_apply(&cluster, s, chain_cmds(4)).unwrap();
    let old_epoch = cluster.lease_of(0).0;
    cluster.fail_over(0).unwrap();
    let new_epoch = cluster.lease_of(0).0;
    assert!(new_epoch > old_epoch);
    drop(cluster);

    // A zombie process reopens the dead leader's store under its stale
    // grant. The durable lease outranks it: appends are fenced before
    // acknowledgement, reads still work.
    let shard_dir = dir.join("shard-0");
    let on_disk = Lease::load(&shard_dir).unwrap().expect("lease persisted");
    assert_eq!(on_disk.epoch, new_epoch, "failover durably advanced it");
    let zombie = Engine::open_with_config(
        &shard_dir,
        EngineConfig {
            workers: 1,
            ..EngineConfig::default()
        },
        stem_engine::DurabilityOptions {
            checkpoint_bytes: 0,
            ..stem_engine::DurabilityOptions::default()
        },
    )
    .unwrap();
    let live = Arc::new(AtomicU64::new(on_disk.epoch));
    zombie.install_lease(old_epoch, 1, live).unwrap();
    let zs = SessionId(s.0); // 1 shard: global == local
    let err = zombie.apply(zs, vec![set(0, 9)]).unwrap_err();
    assert!(
        matches!(err, BatchError::Persist { .. }),
        "stale-grant append must be fenced, got {err:?}"
    );
    let reads = zombie.apply(zs, vec![Command::DumpValues]).unwrap();
    assert!(!reads.outputs.is_empty());
    let _ = fs::remove_dir_all(&dir);
}

/// The headline differential: a durable 2-shard cluster and a volatile
/// twin engine are fed identical seeded workloads; mid-pipeline — with
/// batches still in flight — the busiest shard's leader is killed and
/// its follower promoted. Per-batch results, final dumps, violation
/// reports, and structure counts must match the twin byte-for-byte: no
/// acked batch lost, none duplicated.
#[test]
fn kill_leader_mid_pipeline_differential_25_seeds() {
    const SEEDS: u64 = 25;
    const SESSIONS: usize = 3;
    const N_VARS: usize = 8;
    const PIPELINED: usize = 12; // in flight when the leader dies
    const AFTER: usize = 8; // applied on the promoted leader

    for seed in 0..SEEDS {
        let dir = temp_dir(&format!("diff-{seed}"));
        let cluster = Cluster::open(&dir, options(2)).unwrap();
        let twin = Engine::with_config(EngineConfig {
            workers: 1,
            ..EngineConfig::default()
        });

        let pairs: Vec<(SessionId, SessionId)> = (0..SESSIONS)
            .map(|_| (cluster.open_session(), twin.create_session()))
            .collect();
        for &(cs, ts) in &pairs {
            c_apply(&cluster, cs, chain_cmds(N_VARS)).unwrap();
            twin.apply(ts, chain_cmds(N_VARS)).unwrap();
        }
        let n_constraints = N_VARS; // n-1 equalities + the tripwire

        // Two rngs in lockstep: commands are not Clone, so each side
        // draws its own identical copy of every batch.
        let mut rng_c = SplitMix64::new(0xC0DE ^ seed);
        let mut rng_t = SplitMix64::new(0xC0DE ^ seed);

        // Phase 1: pipeline without waiting, ship part of the log so
        // failover exercises both delivery paths, then kill the leader
        // with the tail still queued.
        let mut tickets = Vec::new();
        let mut twin_results = Vec::new();
        for i in 0..PIPELINED {
            let which = rng_c.range_usize(0, SESSIONS);
            let batch = gen_batch(&mut rng_c, N_VARS, n_constraints);
            tickets.push(cluster.submit(pairs[which].0, 0, batch));

            let which_t = rng_t.range_usize(0, SESSIONS);
            assert_eq!(which, which_t);
            let batch_t = gen_batch(&mut rng_t, N_VARS, n_constraints);
            twin_results.push(twin.apply(pairs[which_t].1, batch_t));

            if i == PIPELINED / 2 {
                cluster.ship_now().unwrap();
            }
        }
        let victim = cluster.shard_of(pairs[0].0);
        cluster.fail_over(victim).unwrap();
        for (i, ticket) in tickets.into_iter().enumerate() {
            assert_eq!(
                render(&ticket.wait()),
                render(&twin_results[i]),
                "seed {seed}: in-flight batch {i} diverged across failover"
            );
        }

        // Phase 2: the promoted leader serves the rest of the workload.
        for i in 0..AFTER {
            let which = rng_c.range_usize(0, SESSIONS);
            let batch = gen_batch(&mut rng_c, N_VARS, n_constraints);
            let got = c_apply(&cluster, pairs[which].0, batch);

            let _ = rng_t.range_usize(0, SESSIONS);
            let batch_t = gen_batch(&mut rng_t, N_VARS, n_constraints);
            let want = twin.apply(pairs[which].1, batch_t);
            assert_eq!(
                render(&got),
                render(&want),
                "seed {seed}: post-failover batch {i} diverged"
            );
        }

        // Convergence: byte-identical dumps and violation reports, and
        // matching structure counts, on every session.
        for (i, &(cs, ts)) in pairs.iter().enumerate() {
            assert_eq!(
                state_of(|cmds| c_apply(&cluster, cs, cmds)),
                state_of(|cmds| twin.apply(ts, cmds)),
                "seed {seed}: session {i} state diverged"
            );
            let (c_ss, t_ss) = match cluster.serve(Request::SessionStats { session: cs.0 }) {
                Reply::SessionStats(ss) => (ss, twin.session_stats(ts)),
                other => panic!("{other:?}"),
            };
            assert_eq!(c_ss.n_variables, t_ss.n_variables, "seed {seed}");
            assert_eq!(c_ss.n_constraints, t_ss.n_constraints, "seed {seed}");
        }
        cluster.shutdown();
        let _ = fs::remove_dir_all(&dir);
    }
}

/// Cold joiner: a fresh replica bootstraps from one `CatchUp` answer
/// (checkpoint snapshot + sealed tail) over TCP, then serves the same
/// state as the leader.
#[test]
fn catch_up_bootstraps_a_cold_follower_over_tcp() {
    use stem_server::{Client, Server};
    let dir = temp_dir("catchup");
    let opts = stem_engine::DurabilityOptions {
        segment_bytes: 256,
        checkpoint_bytes: 0,
        ..stem_engine::DurabilityOptions::default()
    };
    let leader = Engine::open_with_config(
        &dir,
        EngineConfig {
            workers: 1,
            ..EngineConfig::default()
        },
        opts,
    )
    .unwrap();
    let leader_srv = Server::spawn(leader, "127.0.0.1:0").unwrap();
    let mut lc = Client::connect(leader_srv.local_addr()).unwrap();

    let s = lc.open().unwrap();
    lc.apply(s, &chain_cmds(5)).unwrap().unwrap();
    lc.apply(s, &[set(0, 17)]).unwrap().unwrap();
    // Snapshot part of the history, then keep writing a tail.
    leader_srv.engine().checkpoint().unwrap();
    lc.apply(s, &[set(2, 44)]).unwrap().unwrap();

    let (snapshot, segments) = lc.catch_up().unwrap();
    assert!(snapshot.is_some(), "checkpoint must surface in catch-up");
    assert!(!segments.is_empty(), "the tail rides as sealed segments");

    let joiner_srv = Server::spawn(Engine::replica(1), "127.0.0.1:0").unwrap();
    let mut jc = Client::connect(joiner_srv.local_addr()).unwrap();
    if let Some(bytes) = &snapshot {
        jc.ingest_snapshot(bytes).unwrap();
    }
    for seg in &segments {
        jc.ingest_segment(seg).unwrap();
    }
    assert!(jc.promote().unwrap(), "joiner was a replica");
    assert_eq!(
        lc.dump(s).unwrap(),
        jc.dump(s).unwrap(),
        "cold joiner must converge to the leader's exact state"
    );
    // A promoted joiner accepts writes.
    jc.apply(s, &[set(1, 50)]).unwrap().unwrap();
    let _ = fs::remove_dir_all(&dir);
}

/// A cluster behind a single socket: `Cluster` implements `Backend`,
/// so the TCP frontend routes for the whole fleet.
#[test]
fn a_server_fronts_a_whole_cluster() {
    use stem_server::{Client, Server};
    let server = Server::spawn(Cluster::volatile(options(2)), "127.0.0.1:0").unwrap();
    let mut c = Client::connect(server.local_addr()).unwrap();
    c.ping().unwrap();
    let a = c.open().unwrap();
    let b = c.open().unwrap();
    assert_ne!(a.0, b.0);
    for (s, v) in [(a, 5i64), (b, 9)] {
        c.apply(s, &[Command::AddVariable { name: "n".into() }, set(0, v)])
            .unwrap()
            .unwrap();
        assert_eq!(
            c.value(s, VarId::from_index(0)).unwrap().unwrap(),
            Value::Int(v)
        );
    }
    // Two applies plus two value queries — every batch routed and acked.
    assert_eq!(c.stats().unwrap().batches_ok, 4);
    // Hand-driven replication verbs are refused with a structured error.
    assert!(matches!(
        c.call(&Request::Promote).unwrap(),
        Reply::Err { .. }
    ));
}
