//! A blocking client for the wire protocol, with explicit pipelining.
//!
//! Replies arrive in request order, so the client is a FIFO discipline
//! over one socket: [`Client::submit`] queues a batch without waiting
//! (pipelining), [`Client::drain`] collects the outstanding batch
//! results, and [`Client::apply`] is the submit-and-wait convenience.
//! Requests that expect an immediate reply ([`Client::stats`],
//! [`Client::open`], …) require the pipeline to be drained first — the
//! client enforces it rather than silently discarding batch results.

use std::io::{self, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

use stem_core::codec::Reader;
use stem_core::{Justification, Value, VarId, Violation};
use stem_engine::{
    BatchError, BatchOutcome, Command, EngineStats, Output, SessionId, SessionStats,
};

use crate::proto::{decode_error, read_frame, write_frame, Reply, Request};

/// A connection to a [`crate::Server`].
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    /// Batch replies queued behind [`Client::submit`] and not yet read.
    in_flight: usize,
}

fn unexpected(reply: &Reply) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("unexpected reply: {reply:?}"),
    )
}

/// A server-side [`Reply::Err`] surfaces as `io::ErrorKind::Other`.
fn server_err(message: String) -> io::Error {
    io::Error::other(format!("server error: {message}"))
}

impl Client {
    /// Connects (with `TCP_NODELAY`, pipelining makes its own batches).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let write_half = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer: BufWriter::new(write_half),
            in_flight: 0,
        })
    }

    fn send(&mut self, request: &Request) -> io::Result<()> {
        let mut buf = Vec::new();
        request.encode(&mut buf)?;
        write_frame(&mut self.writer, &buf)
    }

    fn recv(&mut self) -> io::Result<Reply> {
        self.writer.flush()?;
        let Some(payload) = read_frame(&mut self.reader)? else {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        };
        let mut r = Reader::new(&payload);
        let reply = Reply::decode(&mut r).map_err(decode_error)?;
        if !r.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "trailing bytes after reply",
            ));
        }
        Ok(reply)
    }

    /// One request, one reply. Refuses to run past queued batch replies.
    pub fn call(&mut self, request: &Request) -> io::Result<Reply> {
        if self.in_flight > 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "{} pipelined replies pending; drain() first",
                    self.in_flight
                ),
            ));
        }
        self.send(request)?;
        self.recv()
    }

    /// Round-trip liveness check.
    pub fn ping(&mut self) -> io::Result<()> {
        match self.call(&Request::Ping)? {
            Reply::Pong => Ok(()),
            reply => Err(unexpected(&reply)),
        }
    }

    /// Creates a session on the server.
    pub fn open(&mut self) -> io::Result<SessionId> {
        match self.call(&Request::Open)? {
            Reply::Session { id } => Ok(SessionId(id)),
            reply => Err(unexpected(&reply)),
        }
    }

    /// Closes a session; `Ok(true)` if it existed.
    pub fn close_session(&mut self, session: SessionId) -> io::Result<bool> {
        match self.call(&Request::Close { session: session.0 })? {
            Reply::Closed { existed } => Ok(existed),
            reply => Err(unexpected(&reply)),
        }
    }

    /// Queues a batch without waiting for its result. The reply is owed
    /// in order; collect it with [`Client::drain`] (or [`Client::apply`]
    /// for the last batch of a burst).
    pub fn submit(&mut self, session: SessionId, commands: &[Command]) -> io::Result<()> {
        let mut buf = Vec::new();
        crate::proto::put_submit(&mut buf, session.0, commands)?;
        write_frame(&mut self.writer, &buf)?;
        self.in_flight += 1;
        Ok(())
    }

    /// Collects every outstanding pipelined batch result, in submission
    /// order.
    pub fn drain(&mut self) -> io::Result<Vec<Result<BatchOutcome, BatchError>>> {
        let mut out = Vec::with_capacity(self.in_flight);
        while self.in_flight > 0 {
            let reply = self.recv()?;
            self.in_flight -= 1;
            match reply {
                Reply::Batch(result) => out.push(result),
                Reply::Err { message } => return Err(server_err(message)),
                reply => return Err(unexpected(&reply)),
            }
        }
        Ok(out)
    }

    /// Submits one batch and waits for its result (drains any earlier
    /// pipelined batches first, discarding nothing: their results are
    /// folded into the returned error if one failed the transport).
    pub fn apply(
        &mut self,
        session: SessionId,
        commands: &[Command],
    ) -> io::Result<Result<BatchOutcome, BatchError>> {
        self.submit(session, commands)?;
        let mut results = self.drain()?;
        Ok(results.pop().expect("submit queued exactly one reply"))
    }

    /// Reads one variable's value.
    pub fn value(
        &mut self,
        session: SessionId,
        var: VarId,
    ) -> io::Result<Result<Value, BatchError>> {
        Ok(self
            .apply(session, &[Command::Get { var }])?
            .map(|mut out| match out.outputs.remove(0) {
                Output::Value(v) => v,
                other => unreachable!("Get replies Value, got {other:?}"),
            }))
    }

    /// Dumps `(name, value, justification)` for every variable in the
    /// session — the full queryable state, including provenance.
    pub fn dump(&mut self, session: SessionId) -> io::Result<Vec<(String, Value, Justification)>> {
        match self.apply(session, &[Command::DumpValues])? {
            Ok(mut out) => match out.outputs.remove(0) {
                Output::Dump(entries) => Ok(entries),
                other => unreachable!("DumpValues replies Dump, got {other:?}"),
            },
            Err(err) => Err(io::Error::other(format!("dump refused: {err}"))),
        }
    }

    /// Sweeps the session's constraints and returns current violations.
    pub fn violations(&mut self, session: SessionId) -> io::Result<Vec<Violation>> {
        match self.apply(session, &[Command::CheckAll])? {
            Ok(mut out) => match out.outputs.remove(0) {
                Output::Violations(vs) => Ok(vs),
                other => unreachable!("CheckAll replies Violations, got {other:?}"),
            },
            Err(err) => Err(io::Error::other(format!("check refused: {err}"))),
        }
    }

    /// Engine-wide counters.
    pub fn stats(&mut self) -> io::Result<EngineStats> {
        match self.call(&Request::Stats)? {
            Reply::Stats(stats) => Ok(stats),
            reply => Err(unexpected(&reply)),
        }
    }

    /// One session's counters.
    pub fn session_stats(&mut self, session: SessionId) -> io::Result<SessionStats> {
        match self.call(&Request::SessionStats { session: session.0 })? {
            Reply::SessionStats(stats) => Ok(stats),
            reply => Err(unexpected(&reply)),
        }
    }

    /// Seals the leader's active WAL segment; returns every shippable
    /// segment index, ascending.
    pub fn seal_wal(&mut self) -> io::Result<Vec<u64>> {
        match self.call(&Request::SealWal)? {
            Reply::Sealed { segments } => Ok(segments),
            Reply::Err { message } => Err(server_err(message)),
            reply => Err(unexpected(&reply)),
        }
    }

    /// Fetches one sealed segment's bytes.
    pub fn fetch_segment(&mut self, index: u64) -> io::Result<Vec<u8>> {
        match self.call(&Request::FetchSegment { index })? {
            Reply::Segment { bytes } => Ok(bytes),
            Reply::Err { message } => Err(server_err(message)),
            reply => Err(unexpected(&reply)),
        }
    }

    /// Fetches the newest checkpoint snapshot, if any.
    pub fn fetch_snapshot(&mut self) -> io::Result<Option<Vec<u8>>> {
        match self.call(&Request::FetchSnapshot)? {
            Reply::Snapshot { bytes } => Ok(bytes),
            Reply::Err { message } => Err(server_err(message)),
            reply => Err(unexpected(&reply)),
        }
    }

    /// Ships a snapshot into a replica server; returns sessions installed.
    pub fn ingest_snapshot(&mut self, bytes: &[u8]) -> io::Result<u64> {
        match self.call(&Request::IngestSnapshot {
            bytes: bytes.to_vec(),
        })? {
            Reply::Ingested { applied, .. } => Ok(applied),
            Reply::Err { message } => Err(server_err(message)),
            reply => Err(unexpected(&reply)),
        }
    }

    /// Ships one sealed segment into a replica server; returns
    /// `(applied, skipped, anomalies)`.
    pub fn ingest_segment(&mut self, bytes: &[u8]) -> io::Result<(u64, u64, u64)> {
        match self.call(&Request::IngestSegment {
            bytes: bytes.to_vec(),
        })? {
            Reply::Ingested {
                applied,
                skipped,
                anomalies,
            } => Ok((applied, skipped, anomalies)),
            Reply::Err { message } => Err(server_err(message)),
            reply => Err(unexpected(&reply)),
        }
    }

    /// Promotes the replica server to a writable leader; `Ok(true)` if
    /// it was a replica.
    pub fn promote(&mut self) -> io::Result<bool> {
        match self.call(&Request::Promote)? {
            Reply::Promoted { was_replica } => Ok(was_replica),
            reply => Err(unexpected(&reply)),
        }
    }

    /// Asks the server to shut down; resolves once acknowledged.
    pub fn shutdown_server(&mut self) -> io::Result<()> {
        match self.call(&Request::Shutdown)? {
            Reply::ShuttingDown => Ok(()),
            reply => Err(unexpected(&reply)),
        }
    }
}
