//! A blocking client for the wire protocol, with explicit pipelining
//! and optional reconnect-with-resubmit.
//!
//! Replies arrive in request order, so the client is a FIFO discipline
//! over one socket: [`Client::submit`] queues a batch without waiting
//! (pipelining), [`Client::drain`] collects the outstanding batch
//! results, and [`Client::apply`] is the submit-and-wait convenience.
//! Requests that expect an immediate reply ([`Client::stats`],
//! [`Client::open`], …) require the pipeline to be drained first — the
//! client enforces it rather than silently discarding batch results.
//!
//! ## Reconnect and idempotent resubmission
//!
//! [`Client::connect_failover`] builds a client that survives the
//! connection dying: on a transport fault (or a [`Reply::Busy`]
//! refusal) it reconnects — cycling through its address list under
//! capped exponential backoff — and resends every sent-but-unanswered
//! frame, in order. Exactly-once for mutating batches comes from the
//! idempotence key, not the transport: a retrying client stamps each
//! mutating batch with a dense per-session key ([`Request::SubmitSeq`]),
//! and the engine skips any key at or below the session's applied
//! watermark. A batch whose first acknowledgement was lost in transit is
//! therefore acknowledged again *without re-applying* — the resent copy
//! returns an empty [`BatchOutcome`] — and a batch the server never saw
//! applies normally. What the client cannot retry silently is a batch
//! the transport swallowed both ways *and* whose retries all failed;
//! that surfaces as the reconnect error after the policy's budget.
//!
//! One caveat: session-creating [`Client::open`] is not idempotent — a
//! lost `Open` ack resent across a reconnect can leak a session. Open
//! sessions before the failure window, or tolerate stray empty sessions.

use std::collections::{HashMap, VecDeque};
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::thread;
use std::time::Duration;

use stem_core::codec::Reader;
use stem_core::{Justification, Value, VarId, Violation};
use stem_engine::{
    BatchError, BatchOutcome, Command, EngineStats, Output, SessionId, SessionStats,
};

use crate::proto::{decode_error, read_frame, write_frame, Reply, Request};

/// How a failover client paces its reconnect attempts.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Consecutive reconnects (without one successful reply in between)
    /// before giving up and surfacing the transport error.
    pub max_retries: u32,
    /// Delay before the first reconnect attempt; doubles per attempt.
    pub base_delay: Duration,
    /// Cap on the doubled delay.
    pub max_delay: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 5,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_secs(1),
        }
    }
}

/// A connection to a [`crate::Server`].
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    /// Batch replies queued behind [`Client::submit`] and not yet read.
    in_flight: usize,
    /// Failover state; `None` for a plain single-connection client.
    retry: Option<Retrying>,
}

/// The failover half of a client: where to reconnect, how patiently,
/// and what to resend when we do.
struct Retrying {
    policy: RetryPolicy,
    /// Addresses to cycle through; `next` rotates on each reconnect so a
    /// dead primary doesn't eat the whole backoff budget every episode.
    addrs: Vec<SocketAddr>,
    next: usize,
    /// Encoded request frames sent but not yet answered, oldest first —
    /// exactly what a fresh connection must replay.
    outstanding: VecDeque<Vec<u8>>,
    /// Reconnects since the last successful reply (the give-up counter).
    reconnects: u32,
    /// Dense per-session idempotence keys for mutating batches.
    keys: HashMap<u64, u64>,
}

fn unexpected(reply: &Reply) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("unexpected reply: {reply:?}"),
    )
}

/// A server-side [`Reply::Err`] surfaces as `io::ErrorKind::Other`.
fn server_err(message: String) -> io::Error {
    io::Error::other(format!("server error: {message}"))
}

/// Transport faults worth a reconnect; anything else (protocol errors,
/// bad requests) is the caller's bug and must surface.
fn retryable(err: &io::Error) -> bool {
    matches!(
        err.kind(),
        io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::ConnectionRefused
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::NotConnected
            | io::ErrorKind::UnexpectedEof
            | io::ErrorKind::TimedOut
            | io::ErrorKind::WouldBlock
    )
}

fn halves(stream: TcpStream) -> io::Result<(BufReader<TcpStream>, BufWriter<TcpStream>)> {
    stream.set_nodelay(true)?;
    let write_half = stream.try_clone()?;
    Ok((BufReader::new(stream), BufWriter::new(write_half)))
}

impl Client {
    /// Connects (with `TCP_NODELAY`, pipelining makes its own batches).
    /// No retry: a transport fault surfaces to the caller.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let (reader, writer) = halves(TcpStream::connect(addr)?)?;
        Ok(Client {
            reader,
            writer,
            in_flight: 0,
            retry: None,
        })
    }

    /// Connects to the first reachable of `addrs` and arms failover:
    /// transport faults and [`Reply::Busy`] refusals reconnect (cycling
    /// the list under `policy`'s backoff) and resend every unanswered
    /// frame; mutating batches go out under idempotence keys so the
    /// resend cannot double-apply. See the module docs for the contract.
    pub fn connect_failover(addrs: impl ToSocketAddrs, policy: RetryPolicy) -> io::Result<Client> {
        let addrs: Vec<SocketAddr> = addrs.to_socket_addrs()?.collect();
        if addrs.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "connect_failover needs at least one address",
            ));
        }
        let mut retry = Retrying {
            policy,
            addrs,
            next: 0,
            outstanding: VecDeque::new(),
            reconnects: 0,
            keys: HashMap::new(),
        };
        let mut last = io::Error::new(io::ErrorKind::NotConnected, "no attempt made");
        let mut delay = retry.policy.base_delay;
        for _ in 0..retry.policy.max_retries.max(1) {
            let addr = retry.addrs[retry.next % retry.addrs.len()];
            retry.next += 1;
            match TcpStream::connect(addr).and_then(halves) {
                Ok((reader, writer)) => {
                    return Ok(Client {
                        reader,
                        writer,
                        in_flight: 0,
                        retry: Some(retry),
                    })
                }
                Err(e) => last = e,
            }
            thread::sleep(delay);
            delay = (delay * 2).min(retry.policy.max_delay);
        }
        Err(last)
    }

    /// Reconnects (cycling addresses under the backoff policy) and
    /// replays every unanswered frame on the fresh connection. Errors
    /// with the latest transport fault once the budget is spent — or
    /// immediately with `cause` on a retry-less client.
    fn recover(&mut self, cause: io::Error) -> io::Result<()> {
        let Some(retry) = &mut self.retry else {
            return Err(cause);
        };
        let mut last = cause;
        let mut delay = retry.policy.base_delay;
        while retry.reconnects < retry.policy.max_retries {
            retry.reconnects += 1;
            thread::sleep(delay);
            delay = (delay * 2).min(retry.policy.max_delay);
            let addr = retry.addrs[retry.next % retry.addrs.len()];
            retry.next += 1;
            match TcpStream::connect(addr).and_then(halves) {
                Ok((reader, writer)) => {
                    self.reader = reader;
                    self.writer = writer;
                    match resend_all(&mut self.writer, &retry.outstanding) {
                        Ok(()) => return Ok(()),
                        Err(e) => last = e,
                    }
                }
                Err(e) => last = e,
            }
        }
        Err(io::Error::new(
            last.kind(),
            format!(
                "gave up after {} reconnect attempts: {last}",
                retry.policy.max_retries
            ),
        ))
    }

    /// Sends one encoded frame, recording it for resend first so a
    /// mid-write fault replays it on the recovered connection.
    fn send_frame(&mut self, frame: Vec<u8>) -> io::Result<()> {
        if self.retry.is_none() {
            return write_frame(&mut self.writer, &frame);
        }
        let result = write_frame(&mut self.writer, &frame);
        self.retry.as_mut().unwrap().outstanding.push_back(frame);
        match result {
            Ok(()) => Ok(()),
            Err(e) if retryable(&e) => self.recover(e),
            Err(e) => Err(e),
        }
    }

    fn send(&mut self, request: &Request) -> io::Result<()> {
        let mut buf = Vec::new();
        request.encode(&mut buf)?;
        self.send_frame(buf)
    }

    /// Flushes and reads one reply frame off the current connection.
    fn recv_raw(&mut self) -> io::Result<Reply> {
        self.writer.flush()?;
        let Some(payload) = read_frame(&mut self.reader)? else {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        };
        let mut r = Reader::new(&payload);
        let reply = Reply::decode(&mut r).map_err(decode_error)?;
        if !r.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "trailing bytes after reply",
            ));
        }
        Ok(reply)
    }

    /// Reads the reply owed to the oldest unanswered request, riding out
    /// transport faults and [`Reply::Busy`] refusals via reconnection.
    /// Every reply the server sends answers exactly one request —
    /// except `Busy`, which a capped server sends unsolicited before
    /// closing, so it marks the *connection* failed, not the request.
    fn recv(&mut self) -> io::Result<Reply> {
        loop {
            match self.recv_raw() {
                Ok(Reply::Busy { active, max }) => {
                    let refusal = io::Error::new(
                        io::ErrorKind::ConnectionRefused,
                        format!("server at connection cap ({active}/{max})"),
                    );
                    if self.retry.is_some() {
                        self.recover(refusal)?;
                    } else {
                        return Err(refusal);
                    }
                }
                Ok(reply) => {
                    if let Some(retry) = &mut self.retry {
                        retry.outstanding.pop_front();
                        retry.reconnects = 0;
                    }
                    return Ok(reply);
                }
                Err(e) if self.retry.is_some() && retryable(&e) => self.recover(e)?,
                Err(e) => return Err(e),
            }
        }
    }

    /// One request, one reply. Refuses to run past queued batch replies.
    pub fn call(&mut self, request: &Request) -> io::Result<Reply> {
        if self.in_flight > 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "{} pipelined replies pending; drain() first",
                    self.in_flight
                ),
            ));
        }
        self.send(request)?;
        self.recv()
    }

    /// Round-trip liveness check.
    pub fn ping(&mut self) -> io::Result<()> {
        match self.call(&Request::Ping)? {
            Reply::Pong => Ok(()),
            reply => Err(unexpected(&reply)),
        }
    }

    /// Creates a session on the server.
    pub fn open(&mut self) -> io::Result<SessionId> {
        match self.call(&Request::Open)? {
            Reply::Session { id } => Ok(SessionId(id)),
            reply => Err(unexpected(&reply)),
        }
    }

    /// Closes a session; `Ok(true)` if it existed.
    pub fn close_session(&mut self, session: SessionId) -> io::Result<bool> {
        match self.call(&Request::Close { session: session.0 })? {
            Reply::Closed { existed } => Ok(existed),
            reply => Err(unexpected(&reply)),
        }
    }

    /// Queues a batch without waiting for its result. The reply is owed
    /// in order; collect it with [`Client::drain`] (or [`Client::apply`]
    /// for the last batch of a burst). On a failover client a mutating
    /// batch is stamped with the session's next idempotence key, making
    /// its resend across a reconnect apply-at-most-once.
    pub fn submit(&mut self, session: SessionId, commands: &[Command]) -> io::Result<()> {
        let mut buf = Vec::new();
        let key = match &mut self.retry {
            Some(retry) if commands.iter().any(is_mutating) => {
                let key = retry.keys.entry(session.0).or_insert(0);
                *key += 1;
                *key
            }
            _ => 0,
        };
        if key == 0 {
            crate::proto::put_submit(&mut buf, session.0, commands)?;
        } else {
            crate::proto::put_submit_keyed(&mut buf, session.0, key, commands)?;
        }
        self.send_frame(buf)?;
        self.in_flight += 1;
        Ok(())
    }

    /// Collects every outstanding pipelined batch result, in submission
    /// order. On a failover client an `Ok` outcome with no outputs may
    /// be the dedup acknowledgement of a resent, already-applied batch.
    pub fn drain(&mut self) -> io::Result<Vec<Result<BatchOutcome, BatchError>>> {
        let mut out = Vec::with_capacity(self.in_flight);
        while self.in_flight > 0 {
            let reply = self.recv()?;
            self.in_flight -= 1;
            match reply {
                Reply::Batch(result) => out.push(result),
                Reply::Err { message } => return Err(server_err(message)),
                reply => return Err(unexpected(&reply)),
            }
        }
        Ok(out)
    }

    /// Submits one batch and waits for its result (drains any earlier
    /// pipelined batches first, discarding nothing: their results are
    /// folded into the returned error if one failed the transport).
    pub fn apply(
        &mut self,
        session: SessionId,
        commands: &[Command],
    ) -> io::Result<Result<BatchOutcome, BatchError>> {
        self.submit(session, commands)?;
        let mut results = self.drain()?;
        Ok(results.pop().expect("submit queued exactly one reply"))
    }

    /// Reads one variable's value.
    pub fn value(
        &mut self,
        session: SessionId,
        var: VarId,
    ) -> io::Result<Result<Value, BatchError>> {
        Ok(self
            .apply(session, &[Command::Get { var }])?
            .map(|mut out| match out.outputs.remove(0) {
                Output::Value(v) => v,
                other => unreachable!("Get replies Value, got {other:?}"),
            }))
    }

    /// Dumps `(name, value, justification)` for every variable in the
    /// session — the full queryable state, including provenance.
    pub fn dump(&mut self, session: SessionId) -> io::Result<Vec<(String, Value, Justification)>> {
        match self.apply(session, &[Command::DumpValues])? {
            Ok(mut out) => match out.outputs.remove(0) {
                Output::Dump(entries) => Ok(entries),
                other => unreachable!("DumpValues replies Dump, got {other:?}"),
            },
            Err(err) => Err(io::Error::other(format!("dump refused: {err}"))),
        }
    }

    /// Sweeps the session's constraints and returns current violations.
    pub fn violations(&mut self, session: SessionId) -> io::Result<Vec<Violation>> {
        match self.apply(session, &[Command::CheckAll])? {
            Ok(mut out) => match out.outputs.remove(0) {
                Output::Violations(vs) => Ok(vs),
                other => unreachable!("CheckAll replies Violations, got {other:?}"),
            },
            Err(err) => Err(io::Error::other(format!("check refused: {err}"))),
        }
    }

    /// Engine-wide counters.
    pub fn stats(&mut self) -> io::Result<EngineStats> {
        match self.call(&Request::Stats)? {
            Reply::Stats(stats) => Ok(stats),
            reply => Err(unexpected(&reply)),
        }
    }

    /// One session's counters.
    pub fn session_stats(&mut self, session: SessionId) -> io::Result<SessionStats> {
        match self.call(&Request::SessionStats { session: session.0 })? {
            Reply::SessionStats(stats) => Ok(stats),
            reply => Err(unexpected(&reply)),
        }
    }

    /// Asks who holds the write lease for the shard owning `session`;
    /// `(0, 0)` means no lease (a standalone, unfenced server).
    pub fn lease(&mut self, session: SessionId) -> io::Result<(u64, u64)> {
        match self.call(&Request::Lease { session: session.0 })? {
            Reply::Lease { epoch, holder } => Ok((epoch, holder)),
            Reply::Err { message } => Err(server_err(message)),
            reply => Err(unexpected(&reply)),
        }
    }

    /// Fetches a cold joiner's bootstrap in one conversation: the newest
    /// snapshot (if any) and every sealed WAL segment, ascending.
    #[allow(clippy::type_complexity)]
    pub fn catch_up(&mut self) -> io::Result<(Option<Vec<u8>>, Vec<Vec<u8>>)> {
        match self.call(&Request::CatchUp)? {
            Reply::CatchUp { snapshot, segments } => Ok((snapshot, segments)),
            Reply::Err { message } => Err(server_err(message)),
            reply => Err(unexpected(&reply)),
        }
    }

    /// Seals the leader's active WAL segment; returns every shippable
    /// segment index, ascending.
    pub fn seal_wal(&mut self) -> io::Result<Vec<u64>> {
        match self.call(&Request::SealWal)? {
            Reply::Sealed { segments } => Ok(segments),
            Reply::Err { message } => Err(server_err(message)),
            reply => Err(unexpected(&reply)),
        }
    }

    /// Fetches one sealed segment's bytes.
    pub fn fetch_segment(&mut self, index: u64) -> io::Result<Vec<u8>> {
        match self.call(&Request::FetchSegment { index })? {
            Reply::Segment { bytes } => Ok(bytes),
            Reply::Err { message } => Err(server_err(message)),
            reply => Err(unexpected(&reply)),
        }
    }

    /// Fetches the newest checkpoint snapshot, if any.
    pub fn fetch_snapshot(&mut self) -> io::Result<Option<Vec<u8>>> {
        match self.call(&Request::FetchSnapshot)? {
            Reply::Snapshot { bytes } => Ok(bytes),
            Reply::Err { message } => Err(server_err(message)),
            reply => Err(unexpected(&reply)),
        }
    }

    /// Ships a snapshot into a replica server; returns sessions installed.
    pub fn ingest_snapshot(&mut self, bytes: &[u8]) -> io::Result<u64> {
        match self.call(&Request::IngestSnapshot {
            bytes: bytes.to_vec(),
        })? {
            Reply::Ingested { applied, .. } => Ok(applied),
            Reply::Err { message } => Err(server_err(message)),
            reply => Err(unexpected(&reply)),
        }
    }

    /// Ships one sealed segment into a replica server; returns
    /// `(applied, skipped, anomalies)`.
    pub fn ingest_segment(&mut self, bytes: &[u8]) -> io::Result<(u64, u64, u64)> {
        match self.call(&Request::IngestSegment {
            bytes: bytes.to_vec(),
        })? {
            Reply::Ingested {
                applied,
                skipped,
                anomalies,
            } => Ok((applied, skipped, anomalies)),
            Reply::Err { message } => Err(server_err(message)),
            reply => Err(unexpected(&reply)),
        }
    }

    /// Promotes the replica server to a writable leader; `Ok(true)` if
    /// it was a replica.
    pub fn promote(&mut self) -> io::Result<bool> {
        match self.call(&Request::Promote)? {
            Reply::Promoted { was_replica } => Ok(was_replica),
            reply => Err(unexpected(&reply)),
        }
    }

    /// Asks the server to shut down; resolves once acknowledged.
    pub fn shutdown_server(&mut self) -> io::Result<()> {
        match self.call(&Request::Shutdown)? {
            Reply::ShuttingDown => Ok(()),
            reply => Err(unexpected(&reply)),
        }
    }
}

/// Whether a command mutates session state (and thus needs an
/// idempotence key when resent across reconnects).
fn is_mutating(cmd: &Command) -> bool {
    !matches!(
        cmd,
        Command::Get { .. } | Command::Probe { .. } | Command::DumpValues | Command::CheckAll
    )
}

/// Replays every unanswered frame, oldest first, on a fresh connection.
fn resend_all(
    writer: &mut BufWriter<TcpStream>,
    outstanding: &VecDeque<Vec<u8>>,
) -> io::Result<()> {
    for frame in outstanding {
        write_frame(writer, frame)?;
    }
    writer.flush()
}
