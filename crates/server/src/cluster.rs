//! stem-cluster: a session-sharded router with lease-based failover.
//!
//! One [`Cluster`] fronts N *shards*. Each shard is a leader
//! [`Engine`] on its own durable directory plus a warm in-memory
//! follower replica; sessions are pinned to shards (rendezvous choice at
//! open, arithmetic thereafter), so a batch routes with one modulo and
//! no cross-shard coordination — sessions share nothing, which is what
//! made sharding free. The router is itself a [`Backend`], so a
//! [`crate::Server`] puts the whole cluster behind one socket.
//!
//! ## Id translation
//!
//! Global session id = `local * shards + shard`. The shard index rides
//! in the low bits (`global % shards`), so routing needs no table; each
//! engine hands out dense local ids independently and they interleave
//! into dense global ids.
//!
//! ## Replication and failover
//!
//! A background thread (or [`Cluster::ship_now`]) seals each leader's
//! active WAL segment and replays unshipped sealed segments into the
//! shard's follower. [`Cluster::fail_over`] kills a leader mid-flight:
//! it gates new submissions (write lock), drains the leader's queued
//! batches (dropping the engine runs its graceful shutdown, so every
//! acknowledged batch is on disk), durably advances the shard's
//! [`Lease`] and bumps the live epoch — fencing any straggler append the
//! corpse could attempt — then reopens the dead leader's store
//! *post-mortem*, ships every sealed segment the follower has not seen,
//! and promotes the follower in place. No acknowledged batch is lost or
//! duplicated: acked means durably logged, the post-mortem ship moves
//! the whole log, and replay dedups by sequence number.
//!
//! The promoted leader runs without a disk of its own (a replica engine
//! is volatile), so a shard fails over once; a second [`Cluster::fail_over`]
//! on the same shard is refused rather than silently lossy.

use std::collections::HashSet;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use stem_engine::{
    BatchTicket, Command, Durability, DurabilityOptions, Engine, EngineConfig, EngineStats,
    SessionId,
};
use stem_persist::{Lease, Store, StoreOptions};

use crate::proto::{Reply, Request};
use crate::server::Backend;

/// Construction knobs for [`Cluster::open`].
#[derive(Debug, Clone)]
pub struct ClusterOptions {
    /// Number of shards (leader + follower pairs). Default 2.
    pub shards: usize,
    /// Worker threads per engine (leaders and followers). Default 1.
    pub workers_per_shard: usize,
    /// WAL segment rotation threshold per leader; small values ship
    /// sooner. Default 1 MiB.
    pub segment_bytes: u64,
    /// Background shipping cadence; `None` ships only on
    /// [`Cluster::ship_now`] (tests drive the schedule themselves).
    /// Default 50ms.
    pub ship_interval: Option<Duration>,
}

impl Default for ClusterOptions {
    fn default() -> Self {
        ClusterOptions {
            shards: 2,
            workers_per_shard: 1,
            segment_bytes: 1 << 20,
            ship_interval: Some(Duration::from_millis(50)),
        }
    }
}

/// A shard's current serving pair. Readers (submission, queries) hold
/// the lock shared; failover holds it exclusively — the write gate that
/// stops new batches while the leadership changes hands.
struct Roster {
    leader: Arc<Engine>,
    /// Warm replica receiving shipped segments. `None` on a volatile
    /// cluster (benchmarks) — nothing durable to replicate.
    follower: Option<Arc<Engine>>,
    /// 0 = the original disk-backed leader; bumped per failover. A
    /// promoted leader is volatile, so generation > 0 refuses another
    /// failover and stops the shipping schedule for the shard.
    generation: u64,
}

struct Shard {
    /// Durable home of the original leader (and the shard's lease file);
    /// `None` on a volatile cluster.
    dir: Option<PathBuf>,
    /// The live lease epoch — the fence cell every leader of this shard
    /// checks its granted epoch against on append.
    epoch: Arc<AtomicU64>,
    /// Last lease granted: `(epoch, holder)`.
    lease: Mutex<(u64, u64)>,
    active: RwLock<Roster>,
    /// Sealed segment indexes already replayed into the follower.
    shipped: Mutex<HashSet<u64>>,
}

struct Inner {
    shards: Vec<Shard>,
    /// Rendezvous ticket counter for shard choice at session open.
    opens: AtomicU64,
    stop: AtomicBool,
}

/// A session-sharded router over N leader engines with lease-based
/// failover. See the module docs for the design.
pub struct Cluster {
    inner: Arc<Inner>,
    shipper: Option<JoinHandle<()>>,
}

/// 64-bit avalanche (murmur3 finaliser) for rendezvous shard choice.
fn fmix64(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    x ^= x >> 33;
    x
}

impl Cluster {
    /// Opens a durable cluster under `dir`: per shard, a leader engine
    /// in `dir/shard-N` (fenced under a freshly advanced [`Lease`]) and
    /// a warm in-memory follower. Leaders run with automatic checkpoints
    /// off — segment shipping is the replication unit, and a checkpoint
    /// that retired unshipped segments would starve the followers.
    pub fn open(dir: impl Into<PathBuf>, options: ClusterOptions) -> io::Result<Cluster> {
        let dir = dir.into();
        let n = options.shards.max(1);
        let mut shards = Vec::with_capacity(n);
        for ix in 0..n {
            let shard_dir = dir.join(format!("shard-{ix}"));
            std::fs::create_dir_all(&shard_dir)?;
            let lease = Lease::advance(&shard_dir, 1)?;
            let epoch = Arc::new(AtomicU64::new(lease.epoch));
            let leader = Engine::open_with_config(
                &shard_dir,
                EngineConfig {
                    workers: options.workers_per_shard,
                    ..EngineConfig::default()
                },
                DurabilityOptions {
                    mode: Durability::CommitSync,
                    segment_bytes: options.segment_bytes,
                    checkpoint_bytes: 0,
                    ..DurabilityOptions::default()
                },
            )?;
            leader.install_lease(lease.epoch, lease.holder, Arc::clone(&epoch))?;
            shards.push(Shard {
                dir: Some(shard_dir),
                epoch,
                lease: Mutex::new((lease.epoch, lease.holder)),
                active: RwLock::new(Roster {
                    leader: Arc::new(leader),
                    follower: Some(Arc::new(Engine::replica(options.workers_per_shard))),
                    generation: 0,
                }),
                shipped: Mutex::new(HashSet::new()),
            });
        }
        Ok(Self::finish(shards, options))
    }

    /// A disk-free cluster: volatile leaders, no followers, no leases.
    /// The routing and sharding layer alone — what the routed-vs-direct
    /// benchmark measures, and a harness for router-only tests.
    pub fn volatile(options: ClusterOptions) -> Cluster {
        let n = options.shards.max(1);
        let shards = (0..n)
            .map(|_| Shard {
                dir: None,
                epoch: Arc::new(AtomicU64::new(0)),
                lease: Mutex::new((0, 0)),
                active: RwLock::new(Roster {
                    leader: Arc::new(Engine::new(options.workers_per_shard)),
                    follower: None,
                    generation: 0,
                }),
                shipped: Mutex::new(HashSet::new()),
            })
            .collect();
        Self::finish(shards, options)
    }

    fn finish(shards: Vec<Shard>, options: ClusterOptions) -> Cluster {
        let inner = Arc::new(Inner {
            shards,
            opens: AtomicU64::new(0),
            stop: AtomicBool::new(false),
        });
        let shipper = options.ship_interval.map(|interval| {
            let inner = Arc::clone(&inner);
            thread::spawn(move || {
                while !inner.stop.load(Ordering::SeqCst) {
                    thread::sleep(interval);
                    let _ = ship_all(&inner);
                }
            })
        });
        Cluster { inner, shipper }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.inner.shards.len()
    }

    /// The shard a (global) session id lives on.
    pub fn shard_of(&self, session: SessionId) -> usize {
        (session.0 % self.inner.shards.len() as u64) as usize
    }

    fn split(&self, global: u64) -> (usize, u64) {
        let n = self.inner.shards.len() as u64;
        ((global % n) as usize, global / n)
    }

    fn fuse(&self, shard: usize, local: u64) -> u64 {
        local * self.inner.shards.len() as u64 + shard as u64
    }

    /// Creates a session, choosing its shard by rendezvous hash: every
    /// shard scores the open ticket through an avalanche mix and the
    /// argmax wins — uniform spread without a routing table, stable
    /// under any future shard-count bump for already-placed ids.
    pub fn open_session(&self) -> SessionId {
        let ticket = self.inner.opens.fetch_add(1, Ordering::Relaxed);
        let shard = (0..self.inner.shards.len())
            .max_by_key(|&ix| fmix64(ticket ^ fmix64(ix as u64 + 1)))
            .unwrap_or(0);
        let local = self.inner.shards[shard]
            .active
            .read()
            .unwrap()
            .leader
            .create_session()
            .0;
        SessionId(self.fuse(shard, local))
    }

    /// Closes a (global) session; `true` if it existed.
    pub fn close_session(&self, session: SessionId) -> bool {
        let (shard, local) = self.split(session.0);
        let roster = self.inner.shards[shard].active.read().unwrap();
        roster.leader.close_session(SessionId(local))
    }

    /// Engine-wide counters rolled up across every shard leader.
    pub fn stats(&self) -> EngineStats {
        let mut total = EngineStats::default();
        for shard in &self.inner.shards {
            total.absorb(&shard.active.read().unwrap().leader.stats());
        }
        total
    }

    /// `(epoch, holder)` of the shard's last granted lease.
    pub fn lease_of(&self, shard: usize) -> (u64, u64) {
        *self.inner.shards[shard].lease.lock().unwrap()
    }

    /// Ships every leader's unshipped sealed segments to its follower
    /// now; returns segments shipped. The background thread runs the
    /// same pass on its interval.
    pub fn ship_now(&self) -> io::Result<u64> {
        ship_all(&self.inner)
    }

    /// Kills shard `ix`'s leader and promotes its follower, losing no
    /// acknowledged batch (see the module docs for the sequence). Errors
    /// on a volatile cluster and on a shard already failed over — the
    /// promoted leader has no disk, so a second failover would be lossy,
    /// and refusing is the honest answer.
    pub fn fail_over(&self, ix: usize) -> io::Result<()> {
        let shard = &self.inner.shards[ix];
        let Some(dir) = &shard.dir else {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "volatile cluster has no followers to fail over to",
            ));
        };
        let mut roster = shard.active.write().unwrap();
        if roster.generation > 0 {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                format!("shard {ix} already failed over; its leader is volatile"),
            ));
        }
        let follower = roster
            .follower
            .take()
            .expect("durable generation-0 shard keeps a follower");

        // 1. Gate + drain. The write lock stops new submissions; swapping
        //    the roster's leader for the follower drops the last Arc to
        //    the old leader, and Engine's drop path processes every
        //    queued batch and syncs the store before returning. After
        //    this line, "acked" and "on the dead leader's disk" coincide.
        drop(std::mem::replace(&mut roster.leader, Arc::clone(&follower)));

        // 2. Fence. Durably advance the lease, then publish the new
        //    epoch: any straggler append against the old grant now fails
        //    before acknowledgement. (In-process the drop above already
        //    killed the leader; the fence is what makes the same
        //    sequence safe when death is not so certain.)
        let lease = Lease::advance(dir, roster.generation + 2)?;
        *shard.lease.lock().unwrap() = (lease.epoch, lease.holder);
        shard.epoch.store(lease.epoch, Ordering::SeqCst);

        // 3. Post-mortem catch-up. Reopen the dead leader's store,
        //    seal its final segment, and replay everything the shipping
        //    schedule had not delivered yet.
        {
            let (mut store, _) = Store::open(
                dir,
                StoreOptions {
                    sync: stem_persist::SyncPolicy::Deferred,
                    ..StoreOptions::default()
                },
            )?;
            let shipped = shard.shipped.lock().unwrap();
            for seg in store.seal_for_checkpoint()? {
                if shipped.contains(&seg) {
                    continue;
                }
                let bytes = store.read_segment(seg)?;
                follower.ingest_segment(&bytes)?;
            }
        }

        // 4. Promote. The follower now owns every acknowledged batch;
        //    flip it writable and give the shard a fresh (empty, unused
        //    until a future bootstrap story) follower slot.
        follower.promote();
        roster.follower = None;
        roster.generation += 1;
        Ok(())
    }

    /// Stops the shipping thread and shuts the engines down cleanly.
    pub fn shutdown(mut self) {
        self.stop_shipper();
    }

    fn stop_shipper(&mut self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.shipper.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        self.stop_shipper();
    }
}

/// One shipping pass: per durable generation-0 shard, seal the leader's
/// active segment and replay unshipped sealed segments into the
/// follower, in index order.
fn ship_all(inner: &Inner) -> io::Result<u64> {
    let mut moved = 0;
    for shard in &inner.shards {
        if shard.dir.is_none() {
            continue;
        }
        let roster = shard.active.read().unwrap();
        if roster.generation > 0 {
            continue; // promoted leader is volatile: nothing to ship
        }
        let Some(follower) = &roster.follower else {
            continue;
        };
        let mut segments = roster.leader.seal_wal()?;
        segments.sort_unstable();
        let mut shipped = shard.shipped.lock().unwrap();
        for seg in segments {
            if shipped.contains(&seg) {
                continue;
            }
            let bytes = roster.leader.read_wal_segment(seg)?;
            follower.ingest_segment(&bytes)?;
            shipped.insert(seg);
            moved += 1;
        }
    }
    Ok(moved)
}

impl Backend for Cluster {
    fn submit(&self, session: SessionId, key: u64, commands: Vec<Command>) -> BatchTicket {
        let (shard, local) = self.split(session.0);
        let roster = self.inner.shards[shard].active.read().unwrap();
        roster.leader.submit_keyed(SessionId(local), commands, key)
    }

    fn serve(&self, request: Request) -> Reply {
        match request {
            Request::Ping => Reply::Pong,
            Request::Open => Reply::Session {
                id: self.open_session().0,
            },
            Request::Close { session } => Reply::Closed {
                existed: self.close_session(SessionId(session)),
            },
            Request::Stats => Reply::Stats(self.stats()),
            Request::SessionStats { session } => {
                let (shard, local) = self.split(session);
                let roster = self.inner.shards[shard].active.read().unwrap();
                Reply::SessionStats(roster.leader.session_stats(SessionId(local)))
            }
            Request::Lease { session } => {
                let (shard, _) = self.split(session);
                let (epoch, holder) = self.lease_of(shard);
                Reply::Lease { epoch, holder }
            }
            // Replication is the cluster's own schedule; hand-driving it
            // from outside would race the shipping thread and failover.
            Request::SealWal
            | Request::FetchSegment { .. }
            | Request::FetchSnapshot
            | Request::IngestSnapshot { .. }
            | Request::IngestSegment { .. }
            | Request::Promote
            | Request::CatchUp => Reply::Err {
                message: "replication is managed by the cluster".into(),
            },
            Request::Submit { .. } | Request::SubmitSeq { .. } | Request::Shutdown => {
                unreachable!("handled by the reader loop")
            }
        }
    }
}
