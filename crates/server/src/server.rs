//! The TCP frontend: accept loop, per-connection reader/writer pair,
//! pipelined batch submission.
//!
//! Each connection gets two threads. The *reader* decodes frames and
//! dispatches: a [`Request::Submit`] is handed to the engine immediately
//! (returning a [`stem_engine::BatchTicket`]) and its pending reply is
//! queued; every other request is served inline. The *writer* drains the
//! pending queue in order, waiting on tickets as it reaches them — so a
//! client can keep many batches in flight while replies still come back
//! in request order, and the engine sees the submission order the client
//! sent (which is what preserves per-session ordering, on one connection
//! or across several: the engine serialises each session's batches in
//! arrival order, and a connection's reader thread submits in wire
//! order).
//!
//! Replies are written through a buffer that is flushed only when no
//! further reply is immediately ready — the transmit mirror of group
//! commit: consecutive pipelined replies share one syscall.

use std::io::{self, BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, TryRecvError};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};

use stem_core::codec::Reader;
use stem_engine::{BatchTicket, Engine, SessionId};

use crate::proto::{read_frame, write_frame, Reply, Request};

/// A reply slot in a connection's in-order queue: either already
/// computed, or a ticket the writer redeems when its turn comes.
/// (Boxed reply: tickets are small and replies can carry whole dumps.)
enum Pending {
    Ready(Box<Reply>),
    Ticket(BatchTicket),
}

impl Pending {
    fn ready(reply: Reply) -> Pending {
        Pending::Ready(Box::new(reply))
    }
}

struct State {
    /// The listener's bound address (to self-connect and unblock accept).
    addr: SocketAddr,
    stop: AtomicBool,
    /// Set when a client sends [`Request::Shutdown`]; [`Server::wait`]
    /// watches it.
    shutdown_requested: Mutex<bool>,
    cv: Condvar,
    conns: Mutex<Vec<TcpStream>>,
}

impl State {
    fn request_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        let mut requested = self.shutdown_requested.lock().unwrap();
        *requested = true;
        self.cv.notify_all();
    }
}

/// A running TCP frontend over one [`Engine`].
///
/// The server owns the engine (shared with its connection threads) and a
/// listening socket; it accepts until [`Server::stop`] or a client's
/// [`Request::Shutdown`]. Dropping the server stops it.
pub struct Server {
    engine: Arc<Engine>,
    addr: SocketAddr,
    state: Arc<State>,
    accept: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// accepting connections against `engine`.
    pub fn spawn(engine: Engine, addr: impl ToSocketAddrs) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let engine = Arc::new(engine);
        let state = Arc::new(State {
            addr,
            stop: AtomicBool::new(false),
            shutdown_requested: Mutex::new(false),
            cv: Condvar::new(),
            conns: Mutex::new(Vec::new()),
        });
        let accept = {
            let engine = Arc::clone(&engine);
            let state = Arc::clone(&state);
            thread::spawn(move || accept_loop(listener, engine, state))
        };
        Ok(Server {
            engine,
            addr,
            state,
            accept: Some(accept),
        })
    }

    /// The bound address — what clients connect to.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The served engine (for in-process inspection and segment shipping
    /// between co-hosted leader/follower servers).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Blocks until a client requests shutdown (or [`Server::stop`] is
    /// called from another thread via a clone-free handle — in practice:
    /// until shutdown).
    pub fn wait(&self) {
        let mut requested = self.state.shutdown_requested.lock().unwrap();
        while !*requested {
            requested = self.state.cv.wait(requested).unwrap();
        }
    }

    /// Stops accepting, tears down live connections, and joins the
    /// accept thread. Idempotent. In-flight batches finish (the engine
    /// is not shut down — it is dropped with the server).
    pub fn stop(&mut self) {
        self.state.request_stop();
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        for conn in self.state.conns.lock().unwrap().drain(..) {
            let _ = conn.shutdown(Shutdown::Both);
        }
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: TcpListener, engine: Arc<Engine>, state: Arc<State>) {
    for stream in listener.incoming() {
        if state.stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        if let Ok(clone) = stream.try_clone() {
            state.conns.lock().unwrap().push(clone);
        }
        let engine = Arc::clone(&engine);
        let state = Arc::clone(&state);
        thread::spawn(move || handle_conn(stream, engine, state));
    }
}

fn handle_conn(stream: TcpStream, engine: Arc<Engine>, state: Arc<State>) {
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let (tx, rx) = mpsc::channel::<Pending>();
    let writer = thread::spawn(move || write_loop(write_half, rx));
    let mut reader = BufReader::new(stream);
    // Clean EOF, torn frame, or reset all end the loop: either way this
    // connection is done; pending replies still drain.
    while let Ok(Some(payload)) = read_frame(&mut reader) {
        let mut r = Reader::new(&payload);
        let request = match Request::decode(&mut r) {
            Ok(req) if r.is_empty() => req,
            Ok(_) => {
                let _ = tx.send(Pending::ready(Reply::Err {
                    message: "trailing bytes after request".into(),
                }));
                break;
            }
            Err(err) => {
                let _ = tx.send(Pending::ready(Reply::Err {
                    message: format!("bad request: {err:?}"),
                }));
                break;
            }
        };
        match request {
            Request::Submit { session, commands } => {
                // Hand the batch to the engine *now* (ordering is fixed
                // at submission) and let the writer redeem the ticket in
                // its turn.
                let ticket = engine.submit(SessionId(session), commands);
                if tx.send(Pending::Ticket(ticket)).is_err() {
                    break;
                }
            }
            Request::Shutdown => {
                let _ = tx.send(Pending::ready(Reply::ShuttingDown));
                state.request_stop();
                // Wake the accept loop so it observes the stop flag.
                let _ = TcpStream::connect(state.addr);
                break;
            }
            other => {
                if tx.send(Pending::ready(serve(&engine, other))).is_err() {
                    break;
                }
            }
        }
    }
    drop(tx);
    let _ = writer.join();
    // The accept loop keeps a clone of this socket (for teardown), so
    // dropping our halves alone would not FIN the peer — shut it down
    // explicitly now that every owed reply is flushed.
    let _ = reader.get_ref().shutdown(Shutdown::Both);
}

/// Serves every non-submit, non-shutdown request inline.
fn serve(engine: &Engine, request: Request) -> Reply {
    let err = |e: io::Error| Reply::Err {
        message: e.to_string(),
    };
    match request {
        Request::Ping => Reply::Pong,
        Request::Open => Reply::Session {
            id: engine.create_session().0,
        },
        Request::Close { session } => Reply::Closed {
            existed: engine.close_session(SessionId(session)),
        },
        Request::Stats => Reply::Stats(engine.stats()),
        Request::SessionStats { session } => {
            Reply::SessionStats(engine.session_stats(SessionId(session)))
        }
        Request::SealWal => match engine.seal_wal() {
            Ok(mut segments) => {
                segments.sort_unstable();
                Reply::Sealed { segments }
            }
            Err(e) => err(e),
        },
        Request::FetchSegment { index } => match engine.read_wal_segment(index) {
            Ok(bytes) => Reply::Segment { bytes },
            Err(e) => err(e),
        },
        Request::FetchSnapshot => match engine.wal_snapshot_bytes() {
            Ok(bytes) => Reply::Snapshot { bytes },
            Err(e) => err(e),
        },
        Request::IngestSnapshot { bytes } => match engine.ingest_snapshot(&bytes) {
            Ok(installed) => Reply::Ingested {
                applied: installed,
                skipped: 0,
                anomalies: 0,
            },
            Err(e) => err(e),
        },
        Request::IngestSegment { bytes } => match engine.ingest_segment(&bytes) {
            Ok(report) => Reply::Ingested {
                applied: report.applied,
                skipped: report.skipped,
                anomalies: report.anomalies,
            },
            Err(e) => err(e),
        },
        Request::Promote => Reply::Promoted {
            was_replica: engine.promote(),
        },
        Request::Submit { .. } | Request::Shutdown => unreachable!("handled by the reader loop"),
    }
}

/// Writes replies in request order, redeeming batch tickets as it
/// reaches them, flushing only when the queue runs dry.
fn write_loop(stream: TcpStream, rx: Receiver<Pending>) {
    let mut w = BufWriter::new(stream);
    let mut buf = Vec::new();
    let mut next: Option<Pending> = None;
    loop {
        let pending = match next.take() {
            Some(p) => p,
            None => match rx.recv() {
                Ok(p) => p,
                Err(_) => break,
            },
        };
        let reply = match pending {
            Pending::Ready(reply) => *reply,
            Pending::Ticket(ticket) => Reply::Batch(ticket.wait()),
        };
        buf.clear();
        reply.encode(&mut buf);
        if write_frame(&mut w, &buf).is_err() {
            break;
        }
        match rx.try_recv() {
            Ok(p) => next = Some(p),
            Err(TryRecvError::Empty) => {
                if w.flush().is_err() {
                    break;
                }
            }
            Err(TryRecvError::Disconnected) => break,
        }
    }
    let _ = w.flush();
}
