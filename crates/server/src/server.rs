//! The TCP frontend: accept loop, per-connection reader/writer pair,
//! pipelined batch submission.
//!
//! Each connection gets two threads. The *reader* decodes frames and
//! dispatches: a [`Request::Submit`] / [`Request::SubmitSeq`] is handed
//! to the backend immediately (returning a [`stem_engine::BatchTicket`])
//! and its pending reply is queued; every other request is served inline.
//! The *writer* drains the pending queue in order, waiting on tickets as
//! it reaches them — so a client can keep many batches in flight while
//! replies still come back in request order, and the backend sees the
//! submission order the client sent (which is what preserves per-session
//! ordering, on one connection or across several: the engine serialises
//! each session's batches in arrival order, and a connection's reader
//! thread submits in wire order).
//!
//! Replies are written through a buffer that is flushed only when no
//! further reply is immediately ready — the transmit mirror of group
//! commit: consecutive pipelined replies share one syscall.
//!
//! ## Robustness
//!
//! The frontend defends itself against misbehaving peers without hurting
//! healthy ones ([`ServerOptions`]):
//!
//! - **Stall timeouts.** Socket reads run on a short `SO_RCVTIMEO` tick;
//!   a peer that goes silent *mid-frame* past `read_timeout` (a half-open
//!   connection, or a slow-loris dribbling header bytes) is evicted.
//!   Writes carry `SO_SNDTIMEO`, so a peer that stops draining replies
//!   cannot pin a writer thread forever — the write fails and the
//!   connection is torn down both ways.
//! - **Idle reaping.** With `idle_timeout` set, a connection holding no
//!   partial frame and sending nothing for that long is closed. Off by
//!   default: idling between frames is a legitimate client state.
//! - **Connection cap.** With `max_connections` set, an over-cap
//!   connection is answered with one structured [`Reply::Busy`] frame and
//!   closed — a refusal the client can back off on, never a silent drop.
//! - **Accept backoff.** Transient `accept()` failures (fd exhaustion,
//!   aborted handshakes) retry under exponential backoff instead of
//!   spinning the accept loop hot.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, TryRecvError};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use stem_core::codec::Reader;
use stem_engine::{BatchTicket, Command, Engine, SessionId};

use crate::proto::{write_frame, Reply, Request, MAX_FRAME_LEN};

/// What a [`Server`] serves: anything that can take a batch and answer
/// the non-batch verbs. [`Engine`] is the standalone backend; the
/// cluster router ([`crate::Cluster`]) is the sharded one.
pub trait Backend: Send + Sync + 'static {
    /// Accepts one batch for `session` under idempotence key `key`
    /// (0 = unkeyed) and returns its ticket. Ordering contract: batches
    /// are applied to a session in the order they were submitted.
    fn submit(&self, session: SessionId, key: u64, commands: Vec<Command>) -> BatchTicket;

    /// Serves every request that is not a submit or a server shutdown.
    fn serve(&self, request: Request) -> Reply;
}

impl Backend for Engine {
    fn submit(&self, session: SessionId, key: u64, commands: Vec<Command>) -> BatchTicket {
        self.submit_keyed(session, commands, key)
    }

    fn serve(&self, request: Request) -> Reply {
        serve_engine(self, request)
    }
}

/// A shared backend is a backend — two servers can front one engine
/// (distinct addresses, one state), the harness failover clients
/// exercise against.
impl<B: Backend> Backend for Arc<B> {
    fn submit(&self, session: SessionId, key: u64, commands: Vec<Command>) -> BatchTicket {
        (**self).submit(session, key, commands)
    }

    fn serve(&self, request: Request) -> Reply {
        (**self).serve(request)
    }
}

/// Tunable robustness knobs for [`Server::spawn_with`].
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Eviction deadline for a peer that stalls *mid-frame* (header or
    /// payload partially received). Default 30s.
    pub read_timeout: Duration,
    /// `SO_SNDTIMEO` on reply writes: a peer that stops draining replies
    /// for this long is torn down. Default 30s.
    pub write_timeout: Duration,
    /// Eviction deadline for a connection sitting between frames with
    /// nothing to say. `None` (default) never reaps idle connections.
    pub idle_timeout: Option<Duration>,
    /// Serve at most this many connections at once; excess connections
    /// receive one [`Reply::Busy`] frame and are closed. `None`
    /// (default) is unbounded.
    pub max_connections: Option<usize>,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(30),
            idle_timeout: None,
            max_connections: None,
        }
    }
}

impl ServerOptions {
    /// The `SO_RCVTIMEO` granularity: reads wake at least this often to
    /// test deadlines and the stop flag. A quarter of the tightest
    /// deadline, clamped so tests with millisecond timeouts stay sharp
    /// and production configs don't busy-poll.
    fn tick(&self) -> Duration {
        let tightest = self
            .idle_timeout
            .map_or(self.read_timeout, |idle| self.read_timeout.min(idle));
        (tightest / 4).clamp(Duration::from_millis(2), Duration::from_millis(250))
    }
}

/// A reply slot in a connection's in-order queue: either already
/// computed, or a ticket the writer redeems when its turn comes.
/// (Boxed reply: tickets are small and replies can carry whole dumps.)
enum Pending {
    Ready(Box<Reply>),
    Ticket(BatchTicket),
}

impl Pending {
    fn ready(reply: Reply) -> Pending {
        Pending::Ready(Box::new(reply))
    }
}

struct State {
    /// The listener's bound address (to self-connect and unblock accept).
    addr: SocketAddr,
    stop: AtomicBool,
    /// Set when a client sends [`Request::Shutdown`]; [`Server::wait`]
    /// watches it.
    shutdown_requested: Mutex<bool>,
    cv: Condvar,
    /// Live connections by id — for teardown and the test-facing
    /// [`Server::disconnect_all`]. Entries remove themselves on exit.
    conns: Mutex<HashMap<u64, TcpStream>>,
    next_conn: AtomicU64,
    /// Connections currently being served (the cap's denominator).
    active: AtomicUsize,
    options: ServerOptions,
}

impl State {
    fn request_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        let mut requested = self.shutdown_requested.lock().unwrap();
        *requested = true;
        self.cv.notify_all();
    }
}

/// A running TCP frontend over one [`Backend`] (an [`Engine`] by
/// default, a [`crate::Cluster`] for the sharded service).
///
/// The server owns the backend (shared with its connection threads) and
/// a listening socket; it accepts until [`Server::stop`] or a client's
/// [`Request::Shutdown`]. Dropping the server stops it.
pub struct Server<B: Backend = Engine> {
    backend: Arc<B>,
    addr: SocketAddr,
    state: Arc<State>,
    accept: Option<JoinHandle<()>>,
}

impl<B: Backend> Server<B> {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// accepting connections against `backend` with default options.
    pub fn spawn(backend: B, addr: impl ToSocketAddrs) -> io::Result<Server<B>> {
        Self::spawn_with(backend, addr, ServerOptions::default())
    }

    /// [`Server::spawn`] with explicit robustness options.
    pub fn spawn_with(
        backend: B,
        addr: impl ToSocketAddrs,
        options: ServerOptions,
    ) -> io::Result<Server<B>> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let backend = Arc::new(backend);
        let state = Arc::new(State {
            addr,
            stop: AtomicBool::new(false),
            shutdown_requested: Mutex::new(false),
            cv: Condvar::new(),
            conns: Mutex::new(HashMap::new()),
            next_conn: AtomicU64::new(0),
            active: AtomicUsize::new(0),
            options,
        });
        let accept = {
            let backend = Arc::clone(&backend);
            let state = Arc::clone(&state);
            thread::spawn(move || accept_loop(listener, backend, state))
        };
        Ok(Server {
            backend,
            addr,
            state,
            accept: Some(accept),
        })
    }

    /// The bound address — what clients connect to.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The served backend.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Blocks until a client requests shutdown (or [`Server::stop`] is
    /// called from another thread via a clone-free handle — in practice:
    /// until shutdown).
    pub fn wait(&self) {
        let mut requested = self.state.shutdown_requested.lock().unwrap();
        while !*requested {
            requested = self.state.cv.wait(requested).unwrap();
        }
    }

    /// Severs every live connection without stopping the listener — a
    /// fault injector for client-reconnect tests, and the bluntest of
    /// admin tools otherwise. Clients may reconnect immediately.
    pub fn disconnect_all(&self) {
        for conn in self.state.conns.lock().unwrap().values() {
            let _ = conn.shutdown(Shutdown::Both);
        }
    }

    /// Stops accepting, tears down live connections, and joins the
    /// accept thread. Idempotent. In-flight batches finish (the backend
    /// is not shut down — it is dropped with the server).
    pub fn stop(&mut self) {
        self.state.request_stop();
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        self.disconnect_all();
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Server<Engine> {
    /// The served engine (for in-process inspection and segment shipping
    /// between co-hosted leader/follower servers).
    pub fn engine(&self) -> &Engine {
        self.backend()
    }
}

impl<B: Backend> Drop for Server<B> {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop<B: Backend>(listener: TcpListener, backend: Arc<B>, state: Arc<State>) {
    let mut backoff = Duration::from_millis(1);
    loop {
        if state.stop.load(Ordering::SeqCst) {
            break;
        }
        let stream = match listener.accept() {
            Ok((stream, _)) => {
                backoff = Duration::from_millis(1);
                stream
            }
            Err(_) => {
                // Transient accept failures (fd exhaustion, handshakes
                // aborted under load) would otherwise spin this loop hot
                // and starve the very connections that could recover it.
                thread::sleep(backoff);
                backoff = (backoff * 2).min(Duration::from_secs(1));
                continue;
            }
        };
        if state.stop.load(Ordering::SeqCst) {
            break;
        }
        if let Some(max) = state.options.max_connections {
            let active = state.active.load(Ordering::SeqCst);
            if active >= max {
                refuse_busy(stream, active as u64, max as u64, &state.options);
                continue;
            }
        }
        state.active.fetch_add(1, Ordering::SeqCst);
        let id = state.next_conn.fetch_add(1, Ordering::SeqCst);
        if let Ok(clone) = stream.try_clone() {
            state.conns.lock().unwrap().insert(id, clone);
        }
        let backend = Arc::clone(&backend);
        let state = Arc::clone(&state);
        thread::spawn(move || {
            handle_conn(stream, backend.as_ref(), &state);
            state.conns.lock().unwrap().remove(&id);
            state.active.fetch_sub(1, Ordering::SeqCst);
        });
    }
}

/// Tells an over-cap connection why it is being refused: one
/// [`Reply::Busy`] frame, then close. Best-effort — the peer may already
/// be gone — but bounded by the write timeout either way.
fn refuse_busy(stream: TcpStream, active: u64, max: u64, options: &ServerOptions) {
    let _ = stream.set_write_timeout(Some(options.write_timeout));
    let mut buf = Vec::new();
    Reply::Busy { active, max }.encode(&mut buf);
    let mut w = &stream;
    let _ = write_frame(&mut w, &buf).and_then(|()| w.flush());
    let _ = stream.shutdown(Shutdown::Both);
}

/// Why a timed frame read ended without a frame.
enum ReadEnd {
    /// Peer closed cleanly between frames.
    Eof,
    /// Evicted: idle past the deadline, stalled mid-frame, stopping, or
    /// a protocol/transport error. The connection is done either way.
    Dead,
}

fn is_timeout(err: &io::Error) -> bool {
    matches!(
        err.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Reads exactly `buf.len()` bytes on the ticking socket. `deadline` is
/// the whole-phase budget, counted from entry — progress does not renew
/// it, so a peer dribbling one byte per tick still runs out. `started`
/// says whether a frame is already underway (an empty read is then a
/// torn frame, not a clean EOF).
fn read_exact_ticked(
    stream: &mut TcpStream,
    buf: &mut [u8],
    deadline: Duration,
    started: bool,
    state: &State,
) -> Result<(), ReadEnd> {
    let mut got = 0;
    let start = Instant::now();
    while got < buf.len() {
        if state.stop.load(Ordering::SeqCst) {
            return Err(ReadEnd::Dead);
        }
        match stream.read(&mut buf[got..]) {
            Ok(0) => {
                return Err(if got == 0 && !started {
                    ReadEnd::Eof
                } else {
                    ReadEnd::Dead // torn mid-frame, like a torn WAL record
                });
            }
            Ok(n) => got += n,
            Err(e) if is_timeout(&e) => {
                if start.elapsed() >= deadline {
                    return Err(ReadEnd::Dead);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return Err(ReadEnd::Dead),
        }
    }
    Ok(())
}

/// Reads one frame under the eviction rules: between frames the (looser,
/// optional) idle deadline applies; once the first header byte lands the
/// (tight) mid-frame stall deadline takes over — and because each
/// phase's budget runs from its start rather than renewing on progress,
/// a slow-loris dribbling bytes cannot hold a slot past
/// `read_timeout` per header/payload phase.
fn read_frame_ticked(stream: &mut TcpStream, state: &State) -> Result<Vec<u8>, ReadEnd> {
    let options = &state.options;
    // Phase 1: first header byte — the only wait "idle" applies to.
    let idle = options.idle_timeout.unwrap_or(Duration::MAX);
    let mut first = [0u8; 1];
    read_exact_ticked(stream, &mut first, idle, false, state)?;
    // Phase 2: rest of the header, then payload — mid-frame budget.
    let mut header = [0u8; 7];
    read_exact_ticked(stream, &mut header, options.read_timeout, true, state)?;
    let len = u32::from_le_bytes([first[0], header[0], header[1], header[2]]);
    let crc = u32::from_le_bytes([header[3], header[4], header[5], header[6]]);
    if len > MAX_FRAME_LEN {
        return Err(ReadEnd::Dead);
    }
    let mut payload = vec![0u8; len as usize];
    read_exact_ticked(stream, &mut payload, options.read_timeout, true, state)?;
    if stem_persist::crc::crc32(&payload) != crc {
        return Err(ReadEnd::Dead);
    }
    Ok(payload)
}

fn handle_conn<B: Backend>(mut stream: TcpStream, backend: &B, state: &State) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(state.options.tick()));
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let _ = write_half.set_write_timeout(Some(state.options.write_timeout));
    let (tx, rx) = mpsc::channel::<Pending>();
    let writer = thread::spawn(move || write_loop(write_half, rx));
    // Clean EOF, torn frame, reset, or eviction all end the loop: either
    // way this connection is done; pending replies still drain.
    while let Ok(payload) = read_frame_ticked(&mut stream, state) {
        let mut r = Reader::new(&payload);
        let request = match Request::decode(&mut r) {
            Ok(req) if r.is_empty() => req,
            Ok(_) => {
                let _ = tx.send(Pending::ready(Reply::Err {
                    message: "trailing bytes after request".into(),
                }));
                break;
            }
            Err(err) => {
                let _ = tx.send(Pending::ready(Reply::Err {
                    message: format!("bad request: {err:?}"),
                }));
                break;
            }
        };
        match request {
            Request::Submit { session, commands } => {
                // Hand the batch to the backend *now* (ordering is fixed
                // at submission) and let the writer redeem the ticket in
                // its turn.
                let ticket = backend.submit(SessionId(session), 0, commands);
                if tx.send(Pending::Ticket(ticket)).is_err() {
                    break;
                }
            }
            Request::SubmitSeq {
                session,
                key,
                commands,
            } => {
                let ticket = backend.submit(SessionId(session), key, commands);
                if tx.send(Pending::Ticket(ticket)).is_err() {
                    break;
                }
            }
            Request::Shutdown => {
                let _ = tx.send(Pending::ready(Reply::ShuttingDown));
                state.request_stop();
                // Wake the accept loop so it observes the stop flag.
                let _ = TcpStream::connect(state.addr);
                break;
            }
            other => {
                if tx.send(Pending::ready(backend.serve(other))).is_err() {
                    break;
                }
            }
        }
    }
    drop(tx);
    let _ = writer.join();
    // The accept loop keeps a clone of this socket (for teardown), so
    // dropping our halves alone would not FIN the peer — shut it down
    // explicitly now that every owed reply is flushed.
    let _ = stream.shutdown(Shutdown::Both);
}

/// Serves every non-submit, non-shutdown request against a standalone
/// [`Engine`] (the [`Backend`] impl; the cluster router has its own).
fn serve_engine(engine: &Engine, request: Request) -> Reply {
    let err = |e: io::Error| Reply::Err {
        message: e.to_string(),
    };
    match request {
        Request::Ping => Reply::Pong,
        Request::Open => Reply::Session {
            id: engine.create_session().0,
        },
        Request::Close { session } => Reply::Closed {
            existed: engine.close_session(SessionId(session)),
        },
        Request::Stats => Reply::Stats(engine.stats()),
        Request::SessionStats { session } => {
            Reply::SessionStats(engine.session_stats(SessionId(session)))
        }
        Request::SealWal => match engine.seal_wal() {
            Ok(mut segments) => {
                segments.sort_unstable();
                Reply::Sealed { segments }
            }
            Err(e) => err(e),
        },
        Request::FetchSegment { index } => match engine.read_wal_segment(index) {
            Ok(bytes) => Reply::Segment { bytes },
            Err(e) => err(e),
        },
        Request::FetchSnapshot => match engine.wal_snapshot_bytes() {
            Ok(bytes) => Reply::Snapshot { bytes },
            Err(e) => err(e),
        },
        Request::IngestSnapshot { bytes } => match engine.ingest_snapshot(&bytes) {
            Ok(installed) => Reply::Ingested {
                applied: installed,
                skipped: 0,
                anomalies: 0,
            },
            Err(e) => err(e),
        },
        Request::IngestSegment { bytes } => match engine.ingest_segment(&bytes) {
            Ok(report) => Reply::Ingested {
                applied: report.applied,
                skipped: report.skipped,
                anomalies: report.anomalies,
            },
            Err(e) => err(e),
        },
        Request::Promote => Reply::Promoted {
            was_replica: engine.promote(),
        },
        Request::Lease { .. } => {
            let (epoch, holder) = engine.lease();
            Reply::Lease { epoch, holder }
        }
        Request::CatchUp => match catch_up(engine) {
            Ok(reply) => reply,
            Err(e) => err(e),
        },
        Request::Submit { .. } | Request::SubmitSeq { .. } | Request::Shutdown => {
            unreachable!("handled by the reader loop")
        }
    }
}

/// One-conversation bootstrap for a cold joiner: seal the active
/// segment so the tail is complete, then hand back the newest snapshot
/// (if any) plus every sealed segment; replay-side dedup makes shipping
/// pre-snapshot segments harmless.
fn catch_up(engine: &Engine) -> io::Result<Reply> {
    let mut indexes = engine.seal_wal()?;
    indexes.sort_unstable();
    let snapshot = engine.wal_snapshot_bytes()?;
    let mut segments = Vec::with_capacity(indexes.len());
    for ix in indexes {
        segments.push(engine.read_wal_segment(ix)?);
    }
    Ok(Reply::CatchUp { snapshot, segments })
}

/// Writes replies in request order, redeeming batch tickets as it
/// reaches them, flushing only when the queue runs dry. A write failure
/// (including a `write_timeout` stall — the peer stopped draining)
/// shuts the socket down both ways so the reader unblocks too.
fn write_loop(stream: TcpStream, rx: Receiver<Pending>) {
    let mut w = io::BufWriter::new(&stream);
    let mut buf = Vec::new();
    let mut next: Option<Pending> = None;
    loop {
        let pending = match next.take() {
            Some(p) => p,
            None => match rx.recv() {
                Ok(p) => p,
                Err(_) => break,
            },
        };
        let reply = match pending {
            Pending::Ready(reply) => *reply,
            Pending::Ticket(ticket) => Reply::Batch(ticket.wait()),
        };
        buf.clear();
        reply.encode(&mut buf);
        if write_frame(&mut w, &buf).is_err() {
            let _ = stream.shutdown(Shutdown::Both);
            break;
        }
        match rx.try_recv() {
            Ok(p) => next = Some(p),
            Err(TryRecvError::Empty) => {
                if w.flush().is_err() {
                    let _ = stream.shutdown(Shutdown::Both);
                    break;
                }
            }
            Err(TryRecvError::Disconnected) => break,
        }
    }
    let _ = w.flush();
}
