//! The wire protocol: `[len][crc32][payload]` frames over TCP, payloads
//! encoded with the same `stem_core::codec` vocabulary the WAL uses.
//!
//! Framing mirrors a WAL record on purpose — a 4-byte little-endian
//! payload length, a CRC-32 of the payload, then the payload — so the
//! transport inherits the log's corruption story: a frame either arrives
//! intact or is rejected as a whole, and a half-written frame at
//! connection teardown reads as a clean EOF, never a garbled message.
//! Mutating commands ride as their [`PersistCommand`] encoding (the exact
//! bytes the leader logs), which is what makes segment shipping and
//! submission share one vocabulary; the four read-only commands get wire
//! tags of their own.
//!
//! Every request is answered by exactly one reply, in request order —
//! pipelining is therefore a client-side choice (send many, then read
//! many), not a protocol mode.

use std::io::{self, Read, Write};

use stem_core::codec::{
    put_bytes, put_justification, put_str, put_u32, put_u64, put_u8, put_value, put_var,
    put_violation, DecodeError, Reader,
};
use stem_engine::{
    BatchError, BatchOutcome, Command, EngineStats, Output, SessionStats, N_LATENCY_BUCKETS,
};
use stem_persist::crc::crc32;
use stem_persist::{PersistCommand, PersistSpec};

/// Hard ceiling on one frame's payload (matches the WAL's record bound):
/// anything longer is a protocol violation, not a large message.
pub const MAX_FRAME_LEN: u32 = 64 << 20;

// ---------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------

/// Writes one `[len][crc32][payload]` frame. The caller flushes.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME_LEN as usize {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame payload of {} bytes exceeds the cap", payload.len()),
        ));
    }
    let mut header = [0u8; 8];
    header[..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    header[4..].copy_from_slice(&crc32(payload).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(payload)
}

/// Reads one frame. `Ok(None)` is a clean EOF — the peer closed between
/// frames; EOF *inside* a frame is an error, exactly like a torn WAL
/// record mid-file.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut header = [0u8; 8];
    let mut got = 0;
    while got < header.len() {
        let n = r.read(&mut header[got..])?;
        if n == 0 {
            if got == 0 {
                return Ok(None);
            }
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-frame-header",
            ));
        }
        got += n;
    }
    let len = u32::from_le_bytes(header[..4].try_into().unwrap());
    let crc = u32::from_le_bytes(header[4..].try_into().unwrap());
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame claims {len} bytes, cap is {MAX_FRAME_LEN}"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    if crc32(&payload) != crc {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame checksum mismatch",
        ));
    }
    Ok(Some(payload))
}

/// Maps a payload decode failure onto the I/O error the transport layer
/// reports (the checksum passed, so this is a peer speaking the wrong
/// protocol, not line noise).
pub fn decode_error(err: DecodeError) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("bad payload: {err:?}"))
}

// ---------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------

/// One client → server message. Every request earns exactly one [`Reply`].
#[derive(Debug)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Create a session; replies [`Reply::Session`].
    Open,
    /// Close a session; replies [`Reply::Closed`].
    Close {
        /// Target session.
        session: u64,
    },
    /// Submit one command batch; replies [`Reply::Batch`]. Submissions on
    /// one connection apply to their session in submission order.
    Submit {
        /// Target session.
        session: u64,
        /// The batch.
        commands: Vec<Command>,
    },
    /// Engine-wide counters; replies [`Reply::Stats`].
    Stats,
    /// One session's counters; replies [`Reply::SessionStats`].
    SessionStats {
        /// Target session.
        session: u64,
    },
    /// Seal the active WAL segment; replies [`Reply::Sealed`] with every
    /// shippable segment index.
    SealWal,
    /// Fetch a sealed segment's bytes; replies [`Reply::Segment`].
    FetchSegment {
        /// Segment index from [`Reply::Sealed`].
        index: u64,
    },
    /// Fetch the newest checkpoint snapshot; replies [`Reply::Snapshot`].
    FetchSnapshot,
    /// Bootstrap this (replica) server from a leader snapshot; replies
    /// [`Reply::Ingested`] with the installed-session count in `applied`.
    IngestSnapshot {
        /// Bytes from a leader's [`Reply::Snapshot`].
        bytes: Vec<u8>,
    },
    /// Replay one shipped segment into this (replica) server; replies
    /// [`Reply::Ingested`].
    IngestSegment {
        /// Bytes from a leader's [`Reply::Segment`].
        bytes: Vec<u8>,
    },
    /// Promote this replica to a writable leader; replies
    /// [`Reply::Promoted`].
    Promote,
    /// Ask the server process to shut down; replies
    /// [`Reply::ShuttingDown`], then the listener stops accepting.
    Shutdown,
    /// Submit one command batch under an idempotence key; replies
    /// [`Reply::Batch`]. Keys are a dense per-session counter of the
    /// client's mutating batches: a resend of an already-applied key is
    /// acknowledged with an empty outcome instead of applying twice,
    /// which is what makes reconnect-and-resubmit safe across failover.
    SubmitSeq {
        /// Target session.
        session: u64,
        /// Idempotence key (1-based; 0 would mean "unkeyed").
        key: u64,
        /// The batch.
        commands: Vec<Command>,
    },
    /// Ask who holds the write lease for the shard owning `session`;
    /// replies [`Reply::Lease`]. Epoch 0 means no lease is installed
    /// (a standalone, unfenced server).
    Lease {
        /// Any session id on the shard of interest (0 for shard 0).
        session: u64,
    },
    /// Fetch everything a cold joiner needs in one conversation: the
    /// newest snapshot (if any) plus every sealed WAL segment after it;
    /// replies [`Reply::CatchUp`]. Seals the active segment first so the
    /// tail is complete as of the request.
    CatchUp,
}

impl Request {
    /// Appends the request to `buf`.
    pub fn encode(&self, buf: &mut Vec<u8>) -> io::Result<()> {
        match self {
            Request::Ping => put_u8(buf, 0),
            Request::Open => put_u8(buf, 1),
            Request::Close { session } => {
                put_u8(buf, 2);
                put_u64(buf, *session);
            }
            Request::Submit { session, commands } => put_submit(buf, *session, commands)?,
            Request::Stats => put_u8(buf, 4),
            Request::SessionStats { session } => {
                put_u8(buf, 5);
                put_u64(buf, *session);
            }
            Request::SealWal => put_u8(buf, 6),
            Request::FetchSegment { index } => {
                put_u8(buf, 7);
                put_u64(buf, *index);
            }
            Request::FetchSnapshot => put_u8(buf, 8),
            Request::IngestSnapshot { bytes } => {
                put_u8(buf, 9);
                put_bytes(buf, bytes);
            }
            Request::IngestSegment { bytes } => {
                put_u8(buf, 10);
                put_bytes(buf, bytes);
            }
            Request::Promote => put_u8(buf, 11),
            Request::Shutdown => put_u8(buf, 12),
            Request::SubmitSeq {
                session,
                key,
                commands,
            } => put_submit_keyed(buf, *session, *key, commands)?,
            Request::Lease { session } => {
                put_u8(buf, 14);
                put_u64(buf, *session);
            }
            Request::CatchUp => put_u8(buf, 15),
        }
        Ok(())
    }

    /// Decodes one request.
    pub fn decode(r: &mut Reader<'_>) -> Result<Request, DecodeError> {
        let at = r.position();
        Ok(match r.u8()? {
            0 => Request::Ping,
            1 => Request::Open,
            2 => Request::Close { session: r.u64()? },
            3 => {
                let session = r.u64()?;
                let n = r.len()?;
                let mut commands = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    commands.push(read_command(r)?);
                }
                Request::Submit { session, commands }
            }
            4 => Request::Stats,
            5 => Request::SessionStats { session: r.u64()? },
            6 => Request::SealWal,
            7 => Request::FetchSegment { index: r.u64()? },
            8 => Request::FetchSnapshot,
            9 => Request::IngestSnapshot {
                bytes: r.bytes()?.to_vec(),
            },
            10 => Request::IngestSegment {
                bytes: r.bytes()?.to_vec(),
            },
            11 => Request::Promote,
            12 => Request::Shutdown,
            13 => {
                let session = r.u64()?;
                let key = r.u64()?;
                let n = r.len()?;
                let mut commands = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    commands.push(read_command(r)?);
                }
                Request::SubmitSeq {
                    session,
                    key,
                    commands,
                }
            }
            14 => Request::Lease { session: r.u64()? },
            15 => Request::CatchUp,
            tag => {
                return Err(DecodeError::Tag {
                    tag,
                    what: "Request",
                    at,
                })
            }
        })
    }
}

/// Encodes a [`Request::Submit`] from borrowed commands ([`Command`] is
/// not `Clone`, so pipelining clients encode straight from a slice).
pub fn put_submit(buf: &mut Vec<u8>, session: u64, commands: &[Command]) -> io::Result<()> {
    put_u8(buf, 3);
    put_u64(buf, session);
    put_u32(buf, commands.len() as u32);
    for cmd in commands {
        put_command(buf, cmd)?;
    }
    Ok(())
}

/// Encodes a [`Request::SubmitSeq`] from borrowed commands, for the
/// retrying client's resend buffer.
pub fn put_submit_keyed(
    buf: &mut Vec<u8>,
    session: u64,
    key: u64,
    commands: &[Command],
) -> io::Result<()> {
    put_u8(buf, 13);
    put_u64(buf, session);
    put_u64(buf, key);
    put_u32(buf, commands.len() as u32);
    for cmd in commands {
        put_command(buf, cmd)?;
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Commands on the wire
// ---------------------------------------------------------------------

/// Rebuilds a [`PersistCommand`] image of a mutating engine command.
/// `None` for read-only commands (they have their own wire tags) —
/// `Err`-like `None` also for a custom kind factory, which cannot cross a
/// process boundary.
fn to_persist(cmd: &Command) -> Option<PersistCommand> {
    Some(match cmd {
        Command::AddVariable { name } => PersistCommand::AddVariable { name: name.clone() },
        Command::Set { var, value, source } => PersistCommand::Set {
            var: *var,
            value: value.clone(),
            source: (*source).into(),
        },
        Command::Unset { var } => PersistCommand::Unset { var: *var },
        Command::AddConstraint { spec, args } => PersistCommand::AddConstraint {
            spec: PersistSpec::try_from(spec).ok()?,
            args: args.clone(),
        },
        Command::RemoveConstraint { constraint } => PersistCommand::RemoveConstraint {
            constraint: *constraint,
        },
        Command::EnableConstraint {
            constraint,
            enabled,
        } => PersistCommand::EnableConstraint {
            constraint: *constraint,
            enabled: *enabled,
        },
        Command::SetKindEnabled { kind_name, enabled } => PersistCommand::SetKindEnabled {
            kind_name: kind_name.clone(),
            enabled: *enabled,
        },
        Command::SetValueChangeLimit { limit } => {
            PersistCommand::SetValueChangeLimit { limit: *limit }
        }
        Command::Get { .. } | Command::Probe { .. } | Command::DumpValues | Command::CheckAll => {
            return None
        }
    })
}

/// Appends one command: mutating commands as tag 0 + their WAL encoding,
/// read-only commands with wire tags of their own.
pub fn put_command(buf: &mut Vec<u8>, cmd: &Command) -> io::Result<()> {
    match cmd {
        Command::Get { var } => {
            put_u8(buf, 1);
            put_var(buf, *var);
        }
        Command::Probe { var, value } => {
            put_u8(buf, 2);
            put_var(buf, *var);
            put_value(buf, value);
        }
        Command::DumpValues => put_u8(buf, 3),
        Command::CheckAll => put_u8(buf, 4),
        mutating => {
            let Some(p) = to_persist(mutating) else {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "custom constraint kinds cannot be submitted over the wire",
                ));
            };
            put_u8(buf, 0);
            p.encode(buf);
        }
    }
    Ok(())
}

/// Decodes one command.
pub fn read_command(r: &mut Reader<'_>) -> Result<Command, DecodeError> {
    let at = r.position();
    Ok(match r.u8()? {
        0 => PersistCommand::decode(r)?.into(),
        1 => Command::Get { var: r.var()? },
        2 => Command::Probe {
            var: r.var()?,
            value: r.value()?,
        },
        3 => Command::DumpValues,
        4 => Command::CheckAll,
        tag => {
            return Err(DecodeError::Tag {
                tag,
                what: "Command",
                at,
            })
        }
    })
}

// ---------------------------------------------------------------------
// Replies
// ---------------------------------------------------------------------

/// One server → client message.
#[derive(Debug)]
pub enum Reply {
    /// [`Request::Ping`] answer.
    Pong,
    /// A session was created.
    Session {
        /// Its engine-unique id.
        id: u64,
    },
    /// [`Request::Close`] answer.
    Closed {
        /// Whether the session existed and was closed by this request.
        existed: bool,
    },
    /// A batch's outcome, exactly as the engine reported it.
    Batch(Result<BatchOutcome, BatchError>),
    /// Engine-wide counters.
    Stats(EngineStats),
    /// One session's counters.
    SessionStats(SessionStats),
    /// Shippable (sealed) WAL segment indexes, ascending.
    Sealed {
        /// Segment indexes for [`Request::FetchSegment`].
        segments: Vec<u64>,
    },
    /// One sealed segment's raw bytes.
    Segment {
        /// The `STEMWAL1` segment image.
        bytes: Vec<u8>,
    },
    /// The newest checkpoint snapshot, if one exists.
    Snapshot {
        /// The snapshot file image, or `None` before any checkpoint.
        bytes: Option<Vec<u8>>,
    },
    /// What an ingestion request did.
    Ingested {
        /// Records applied (sessions installed, for a snapshot).
        applied: u64,
        /// Records skipped as already-covered duplicates.
        skipped: u64,
        /// Sequence gaps / replay failures (each quarantined a session).
        anomalies: u64,
    },
    /// [`Request::Promote`] answer.
    Promoted {
        /// Whether the engine was a replica before this request.
        was_replica: bool,
    },
    /// The server acknowledged [`Request::Shutdown`] and is stopping.
    ShuttingDown,
    /// The request itself failed server-side (I/O error on a WAL
    /// operation, ingestion on a non-replica, …).
    Err {
        /// Human-readable reason.
        message: String,
    },
    /// The server refused the connection at its connection cap. Sent as
    /// the only frame on an over-cap connection, before it is closed —
    /// a structured refusal the client can back off on, never a silent
    /// drop it would misread as a network fault.
    Busy {
        /// Connections the server is currently serving.
        active: u64,
        /// The configured cap those connections have filled.
        max: u64,
    },
    /// [`Request::Lease`] answer.
    Lease {
        /// Monotonic lease epoch; 0 if no lease is installed.
        epoch: u64,
        /// Opaque holder id the coordinator assigned (0 if none).
        holder: u64,
    },
    /// [`Request::CatchUp`] answer: a cold joiner ingests the snapshot
    /// (when present), then the segments in order.
    CatchUp {
        /// Newest checkpoint snapshot image, if one exists.
        snapshot: Option<Vec<u8>>,
        /// Every sealed segment after that snapshot, ascending.
        segments: Vec<Vec<u8>>,
    },
}

impl Reply {
    /// Appends the reply to `buf`.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Reply::Pong => put_u8(buf, 0),
            Reply::Session { id } => {
                put_u8(buf, 1);
                put_u64(buf, *id);
            }
            Reply::Closed { existed } => {
                put_u8(buf, 2);
                put_u8(buf, u8::from(*existed));
            }
            Reply::Batch(result) => {
                put_u8(buf, 3);
                match result {
                    Ok(out) => {
                        put_u8(buf, 1);
                        put_u32(buf, out.outputs.len() as u32);
                        for o in &out.outputs {
                            put_output(buf, o);
                        }
                        put_u64(buf, out.waves);
                        put_u64(buf, out.assignments);
                    }
                    Err(err) => {
                        put_u8(buf, 0);
                        put_batch_error(buf, err);
                    }
                }
            }
            Reply::Stats(stats) => {
                put_u8(buf, 4);
                put_engine_stats(buf, stats);
            }
            Reply::SessionStats(stats) => {
                put_u8(buf, 5);
                put_session_stats(buf, stats);
            }
            Reply::Sealed { segments } => {
                put_u8(buf, 6);
                put_u32(buf, segments.len() as u32);
                for s in segments {
                    put_u64(buf, *s);
                }
            }
            Reply::Segment { bytes } => {
                put_u8(buf, 7);
                put_bytes(buf, bytes);
            }
            Reply::Snapshot { bytes } => {
                put_u8(buf, 8);
                match bytes {
                    Some(b) => {
                        put_u8(buf, 1);
                        put_bytes(buf, b);
                    }
                    None => put_u8(buf, 0),
                }
            }
            Reply::Ingested {
                applied,
                skipped,
                anomalies,
            } => {
                put_u8(buf, 9);
                put_u64(buf, *applied);
                put_u64(buf, *skipped);
                put_u64(buf, *anomalies);
            }
            Reply::Promoted { was_replica } => {
                put_u8(buf, 10);
                put_u8(buf, u8::from(*was_replica));
            }
            Reply::ShuttingDown => put_u8(buf, 11),
            Reply::Err { message } => {
                put_u8(buf, 12);
                put_str(buf, message);
            }
            Reply::Busy { active, max } => {
                put_u8(buf, 13);
                put_u64(buf, *active);
                put_u64(buf, *max);
            }
            Reply::Lease { epoch, holder } => {
                put_u8(buf, 14);
                put_u64(buf, *epoch);
                put_u64(buf, *holder);
            }
            Reply::CatchUp { snapshot, segments } => {
                put_u8(buf, 15);
                match snapshot {
                    Some(b) => {
                        put_u8(buf, 1);
                        put_bytes(buf, b);
                    }
                    None => put_u8(buf, 0),
                }
                put_u32(buf, segments.len() as u32);
                for seg in segments {
                    put_bytes(buf, seg);
                }
            }
        }
    }

    /// Decodes one reply.
    pub fn decode(r: &mut Reader<'_>) -> Result<Reply, DecodeError> {
        let at = r.position();
        Ok(match r.u8()? {
            0 => Reply::Pong,
            1 => Reply::Session { id: r.u64()? },
            2 => Reply::Closed { existed: r.bool()? },
            3 => {
                if r.bool()? {
                    let n = r.len()?;
                    let mut outputs = Vec::with_capacity(n.min(1024));
                    for _ in 0..n {
                        outputs.push(read_output(r)?);
                    }
                    let waves = r.u64()?;
                    let assignments = r.u64()?;
                    Reply::Batch(Ok(BatchOutcome {
                        outputs,
                        waves,
                        assignments,
                    }))
                } else {
                    Reply::Batch(Err(read_batch_error(r)?))
                }
            }
            4 => Reply::Stats(read_engine_stats(r)?),
            5 => Reply::SessionStats(read_session_stats(r)?),
            6 => {
                let n = r.len()?;
                let mut segments = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    segments.push(r.u64()?);
                }
                Reply::Sealed { segments }
            }
            7 => Reply::Segment {
                bytes: r.bytes()?.to_vec(),
            },
            8 => Reply::Snapshot {
                bytes: if r.bool()? {
                    Some(r.bytes()?.to_vec())
                } else {
                    None
                },
            },
            9 => Reply::Ingested {
                applied: r.u64()?,
                skipped: r.u64()?,
                anomalies: r.u64()?,
            },
            10 => Reply::Promoted {
                was_replica: r.bool()?,
            },
            11 => Reply::ShuttingDown,
            12 => Reply::Err {
                message: r.str()?.to_string(),
            },
            13 => Reply::Busy {
                active: r.u64()?,
                max: r.u64()?,
            },
            14 => Reply::Lease {
                epoch: r.u64()?,
                holder: r.u64()?,
            },
            15 => {
                let snapshot = if r.bool()? {
                    Some(r.bytes()?.to_vec())
                } else {
                    None
                };
                let n = r.len()?;
                let mut segments = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    segments.push(r.bytes()?.to_vec());
                }
                Reply::CatchUp { snapshot, segments }
            }
            tag => {
                return Err(DecodeError::Tag {
                    tag,
                    what: "Reply",
                    at,
                })
            }
        })
    }
}

fn put_output(buf: &mut Vec<u8>, out: &Output) {
    match out {
        Output::Unit => put_u8(buf, 0),
        Output::Var(v) => {
            put_u8(buf, 1);
            put_var(buf, *v);
        }
        Output::Constraint(c) => {
            put_u8(buf, 2);
            put_u32(buf, c.index() as u32);
        }
        Output::Value(v) => {
            put_u8(buf, 3);
            put_value(buf, v);
        }
        Output::Feasible(ok) => {
            put_u8(buf, 4);
            put_u8(buf, u8::from(*ok));
        }
        Output::Count(n) => {
            put_u8(buf, 5);
            put_u64(buf, *n as u64);
        }
        Output::Dump(entries) => {
            put_u8(buf, 6);
            put_u32(buf, entries.len() as u32);
            for (name, value, just) in entries {
                put_str(buf, name);
                put_value(buf, value);
                put_justification(buf, just);
            }
        }
        Output::Violations(vs) => {
            put_u8(buf, 7);
            put_u32(buf, vs.len() as u32);
            for v in vs {
                put_violation(buf, v);
            }
        }
    }
}

fn read_output(r: &mut Reader<'_>) -> Result<Output, DecodeError> {
    let at = r.position();
    Ok(match r.u8()? {
        0 => Output::Unit,
        1 => Output::Var(r.var()?),
        2 => Output::Constraint(r.cid()?),
        3 => Output::Value(r.value()?),
        4 => Output::Feasible(r.bool()?),
        5 => Output::Count(r.u64()? as usize),
        6 => {
            let n = r.len()?;
            let mut entries = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                let name = r.str()?.to_string();
                let value = r.value()?;
                let just = r.justification()?;
                entries.push((name, value, just));
            }
            Output::Dump(entries)
        }
        7 => {
            let n = r.len()?;
            let mut vs = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                vs.push(r.violation()?);
            }
            Output::Violations(vs)
        }
        tag => {
            return Err(DecodeError::Tag {
                tag,
                what: "Output",
                at,
            })
        }
    })
}

fn put_batch_error(buf: &mut Vec<u8>, err: &BatchError) {
    match err {
        BatchError::Violation { index, violation } => {
            put_u8(buf, 0);
            put_u64(buf, *index as u64);
            put_violation(buf, violation);
        }
        BatchError::InvalidCommand { index, reason } => {
            put_u8(buf, 1);
            put_u64(buf, *index as u64);
            put_str(buf, reason);
        }
        BatchError::Panicked { index, message } => {
            put_u8(buf, 2);
            put_u64(buf, *index as u64);
            put_str(buf, message);
        }
        BatchError::Persist { message } => {
            put_u8(buf, 3);
            put_str(buf, message);
        }
        BatchError::Quarantined => put_u8(buf, 4),
        BatchError::Backpressure => put_u8(buf, 5),
        BatchError::Shutdown => put_u8(buf, 6),
        BatchError::ReadOnlyReplica => put_u8(buf, 7),
    }
}

fn read_batch_error(r: &mut Reader<'_>) -> Result<BatchError, DecodeError> {
    let at = r.position();
    Ok(match r.u8()? {
        0 => BatchError::Violation {
            index: r.u64()? as usize,
            violation: r.violation()?,
        },
        1 => BatchError::InvalidCommand {
            index: r.u64()? as usize,
            reason: r.str()?.to_string(),
        },
        2 => BatchError::Panicked {
            index: r.u64()? as usize,
            message: r.str()?.to_string(),
        },
        3 => BatchError::Persist {
            message: r.str()?.to_string(),
        },
        4 => BatchError::Quarantined,
        5 => BatchError::Backpressure,
        6 => BatchError::Shutdown,
        7 => BatchError::ReadOnlyReplica,
        tag => {
            return Err(DecodeError::Tag {
                tag,
                what: "BatchError",
                at,
            })
        }
    })
}

fn put_engine_stats(buf: &mut Vec<u8>, s: &EngineStats) {
    for field in [
        s.batches,
        s.batches_ok,
        s.violations,
        s.rollbacks,
        s.panics,
        s.waves,
        s.assignments,
        s.sessions_created,
        s.sessions_quarantined,
        s.backpressure_rejections,
        s.queue_depth_hwm,
        s.plan_compiles,
        s.plan_cache_hits,
        s.plan_cache_invalidations,
        s.plan_replays_parallel,
        s.plan_replays_wavefront,
        s.cones_executed,
        s.cones_stolen,
        s.parallel_fallbacks,
        s.recoveries,
        s.segments_ingested,
        s.records_replayed,
        s.dedup_skips,
        s.domain_tightenings,
        s.subsumed_pruned,
        s.wipeouts,
        s.wal_appends,
        s.wal_bytes,
        s.wal_group_syncs,
        s.snapshots_written,
    ] {
        put_u64(buf, field);
    }
    for bucket in s.latency_buckets {
        put_u64(buf, bucket);
    }
}

fn read_engine_stats(r: &mut Reader<'_>) -> Result<EngineStats, DecodeError> {
    let mut s = EngineStats {
        batches: r.u64()?,
        batches_ok: r.u64()?,
        violations: r.u64()?,
        rollbacks: r.u64()?,
        panics: r.u64()?,
        waves: r.u64()?,
        assignments: r.u64()?,
        sessions_created: r.u64()?,
        sessions_quarantined: r.u64()?,
        backpressure_rejections: r.u64()?,
        queue_depth_hwm: r.u64()?,
        plan_compiles: r.u64()?,
        plan_cache_hits: r.u64()?,
        plan_cache_invalidations: r.u64()?,
        plan_replays_parallel: r.u64()?,
        plan_replays_wavefront: r.u64()?,
        cones_executed: r.u64()?,
        cones_stolen: r.u64()?,
        parallel_fallbacks: r.u64()?,
        recoveries: r.u64()?,
        segments_ingested: r.u64()?,
        records_replayed: r.u64()?,
        dedup_skips: r.u64()?,
        domain_tightenings: r.u64()?,
        subsumed_pruned: r.u64()?,
        wipeouts: r.u64()?,
        wal_appends: r.u64()?,
        wal_bytes: r.u64()?,
        wal_group_syncs: r.u64()?,
        snapshots_written: r.u64()?,
        latency_buckets: [0; N_LATENCY_BUCKETS],
    };
    for bucket in &mut s.latency_buckets {
        *bucket = r.u64()?;
    }
    Ok(s)
}

fn put_session_stats(buf: &mut Vec<u8>, s: &SessionStats) {
    for field in [
        s.batches,
        s.batches_ok,
        s.violations,
        s.panics,
        s.waves,
        s.assignments,
        s.n_variables,
        s.n_constraints,
        s.net_snapshots,
        s.net_clones,
        s.plan_compiles,
        s.plan_cache_hits,
        s.plan_cache_invalidations,
        s.plan_replays_parallel,
        s.plan_replays_wavefront,
        s.cones_executed,
        s.cones_stolen,
        s.parallel_fallbacks,
        s.domain_tightenings,
        s.subsumed_pruned,
        s.wipeouts,
        s.wal_appends,
        s.wal_bytes,
    ] {
        put_u64(buf, field);
    }
    put_u8(buf, u8::from(s.quarantined));
}

fn read_session_stats(r: &mut Reader<'_>) -> Result<SessionStats, DecodeError> {
    Ok(SessionStats {
        batches: r.u64()?,
        batches_ok: r.u64()?,
        violations: r.u64()?,
        panics: r.u64()?,
        waves: r.u64()?,
        assignments: r.u64()?,
        n_variables: r.u64()?,
        n_constraints: r.u64()?,
        net_snapshots: r.u64()?,
        net_clones: r.u64()?,
        plan_compiles: r.u64()?,
        plan_cache_hits: r.u64()?,
        plan_cache_invalidations: r.u64()?,
        plan_replays_parallel: r.u64()?,
        plan_replays_wavefront: r.u64()?,
        cones_executed: r.u64()?,
        cones_stolen: r.u64()?,
        parallel_fallbacks: r.u64()?,
        domain_tightenings: r.u64()?,
        subsumed_pruned: r.u64()?,
        wipeouts: r.u64()?,
        wal_appends: r.u64()?,
        wal_bytes: r.u64()?,
        quarantined: r.bool()?,
    })
}
