//! # stem-server — networked session service for the STEM engine
//!
//! The thesis runs one designer against one constraint network in one
//! image; `stem-engine` made that a concurrent multi-session service;
//! this crate puts the service on a socket. A [`Server`] wraps an
//! [`stem_engine::Engine`] — volatile, durable, or a read-only replica —
//! behind a TCP frontend speaking an in-tree binary protocol
//! ([`proto`]): `[len][crc32][payload]` frames (the WAL's framing,
//! reused) carrying requests for the full engine command set — session
//! open/close, transactional batch submission, value / justification /
//! violation queries, stats — plus the replication verbs (seal, fetch
//! segment/snapshot, ingest, promote).
//!
//! ## Pipelining
//!
//! Every request earns exactly one reply, in request order. A client may
//! therefore keep many batches in flight ([`Client::submit`] …
//! [`Client::drain`]); the server submits them to the engine in wire
//! order — which is exactly what preserves per-session batch ordering,
//! whether a session is driven from one connection or several — and a
//! per-connection writer thread streams replies back, redeeming each
//! batch ticket in turn and flushing only when the reply queue runs dry.
//!
//! ## Replication
//!
//! A leader server on a durable engine ships its sealed WAL segments
//! (and optionally a checkpoint snapshot for bootstrap) to follower
//! servers running replica engines, which replay them through the crash
//! recovery machinery and serve read-only queries; on leader loss a
//! follower is promoted in place ([`Client::promote`]) and starts
//! accepting mutating batches. See `DESIGN.md` §5g for the consistency
//! argument.
//!
//! ## Clustering
//!
//! [`Cluster`] is the built-in coordinator over those pieces: a
//! session-sharded router fronting N leader engines, with
//! background-scheduled segment shipping to warm followers and
//! lease-based failover (monotonic epochs persisted through
//! `stem-persist`, fencing a deposed leader's late appends). It
//! implements [`Backend`], so a [`Server`] serves a whole cluster on
//! one socket. See `DESIGN.md` §5i.
//!
//! ## Robustness
//!
//! The frontend carries socket read/write timeouts, optional
//! idle-connection reaping, and a max-connections cap answered with a
//! structured [`proto::Reply::Busy`] ([`ServerOptions`]); the client
//! side offers reconnect-with-resubmit under idempotence keys
//! ([`Client::connect_failover`], [`RetryPolicy`]) so a batch acked
//! just before a connection died is neither lost nor applied twice.

#![warn(missing_docs)]

mod client;
mod cluster;
pub mod proto;
mod server;

pub use client::{Client, RetryPolicy};
pub use cluster::{Cluster, ClusterOptions};
pub use server::{Backend, Server, ServerOptions};
