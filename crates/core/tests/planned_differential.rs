//! Randomized differential check of the plan-cached propagation path:
//! 1 000 SplitMix64-derived networks, each mirrored into an agenda twin
//! with plan caching disabled and into planned twins sweeping the
//! parallel-replay budget over `threads ∈ {1, 2, 4, 8}`, all fed the
//! identical op stream — value sets interleaved with structural edits
//! (constraint adds, enable toggles, removals, change-limit tweaks)
//! that force plan invalidation mid-run. After every op all networks
//! must agree byte-for-byte on values, justifications and outcomes; the
//! planned twins must additionally agree with *each other* on the core
//! statistics block (the parallel path may not even perturb counters),
//! and collectively exercise the cache (hits), the invalidation path,
//! the uncompilable fallback, and real parallel replays.

use stem_core::kinds::{Equality, Functional, Predicate};
use stem_core::prng::SplitMix64;
use stem_core::{ConstraintId, Justification, Network, PlanStatus, Value, VarId};

/// Replay thread budgets swept by every round. Index 0 must stay `1`:
/// it is the sequential reference the others are compared against.
const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// Canonical rendering of the full observable state.
fn dump(net: &Network) -> String {
    net.variables()
        .map(|v| {
            format!(
                "{}={:?}/{:?};",
                net.var_name(v),
                net.value(v),
                net.justification(v)
            )
        })
        .collect()
}

/// A constraint recipe, drawn once and instantiated on every twin so the
/// set stays structurally identical.
enum Spec {
    Equality(Vec<VarId>),
    Sum(Vec<VarId>),
    Max(Vec<VarId>),
    LeConst(VarId, i64),
}

impl Spec {
    fn draw(rng: &mut SplitMix64, n_vars: usize) -> Spec {
        let var = |rng: &mut SplitMix64| VarId::from_index(rng.range_usize(0, n_vars));
        match rng.range_usize(0, 10) {
            // Equality chains dominate: they are the plannable fabric.
            0..=4 => {
                let n = rng.range_usize(2, 4);
                Spec::Equality((0..n).map(|_| var(rng)).collect())
            }
            5..=6 => {
                let n = rng.range_usize(2, 4);
                Spec::Sum((0..n).map(|_| var(rng)).collect())
            }
            7 => {
                let n = rng.range_usize(2, 4);
                Spec::Max((0..n).map(|_| var(rng)).collect())
            }
            // Tripwires: bounds low enough that random sets violate often.
            _ => Spec::LeConst(var(rng), rng.range_i64(5, 30)),
        }
    }

    fn apply(&self, net: &mut Network) -> String {
        let r = match self {
            Spec::Equality(args) => net.add_constraint(Equality::new(), args.clone()),
            Spec::Sum(args) => net.add_constraint(Functional::uni_addition(), args.clone()),
            Spec::Max(args) => net.add_constraint(Functional::uni_maximum(), args.clone()),
            Spec::LeConst(v, k) => net.add_constraint(Predicate::le_const(Value::Int(*k)), [*v]),
        };
        format!("{r:?}")
    }
}

/// Ids of constraints that are still active (removable/toggleable).
fn active_cids(net: &Network) -> Vec<ConstraintId> {
    (0..net.n_constraints())
        .map(ConstraintId::from_index)
        .filter(|&c| net.is_active(c))
        .collect()
}

#[test]
fn planned_path_is_byte_identical_to_agenda_on_random_networks() {
    let mut total_hits = 0u64;
    let mut total_invalidations = 0u64;
    let mut total_compiles = 0u64;
    let mut total_violations = 0u64;
    let mut total_parallel_replays = 0u64;
    let mut total_parallel_wavefronts = 0u64;
    let mut total_parallel_steals = 0u64;
    let mut total_parallel_fallbacks = 0u64;
    let mut saw_uncompilable = false;

    for round in 0u64..1_000 {
        let mut rng = SplitMix64::new(0x9E1D_F00D ^ (round.wrapping_mul(0x2545_F491)));
        let mut agenda = Network::new();
        agenda.set_plan_caching(false);
        let mut planned: Vec<Network> = THREAD_SWEEP
            .iter()
            .map(|&threads| {
                let mut net = Network::new();
                assert!(net.is_plan_caching());
                net.set_parallel_threads(threads);
                // Tiny random cones would never clear the production
                // thresholds; floor both so partitioning actually runs
                // and replays really cross the work-stealing pool
                // (instead of the inline below-cost path).
                net.set_parallel_min_steps(1);
                net.set_parallel_cone_min_steps(1);
                net
            })
            .collect();
        let each = |planned: &mut Vec<Network>, agenda: &mut Network, f: &dyn Fn(&mut Network)| {
            for net in planned.iter_mut() {
                f(net);
            }
            f(agenda);
        };

        let n_vars = rng.range_usize(3, 10);
        for i in 0..n_vars {
            each(&mut planned, &mut agenda, &|net| {
                net.add_variable(format!("v{i}"));
            });
        }
        for _ in 0..rng.range_usize(1, n_vars) {
            let spec = Spec::draw(&mut rng, n_vars);
            let ra = spec.apply(&mut agenda);
            for net in planned.iter_mut() {
                assert_eq!(spec.apply(net), ra, "constraint add diverged in {round}");
            }
        }
        let da = dump(&agenda);
        for net in &planned {
            assert_eq!(dump(net), da, "setup diverged in {round}");
        }

        for op in 0..rng.range_usize(8, 20) {
            match rng.range_usize(0, 100) {
                0..=64 => {
                    let v = VarId::from_index(rng.range_usize(0, n_vars));
                    let val = Value::Int(rng.range_i64(0, 40));
                    let ra = format!("{:?}", agenda.set(v, val.clone(), Justification::User));
                    if ra.starts_with("Err") {
                        total_violations += 1;
                    }
                    for (t, net) in THREAD_SWEEP.iter().zip(planned.iter_mut()) {
                        let rp = format!("{:?}", net.set(v, val.clone(), Justification::User));
                        assert_eq!(
                            rp, ra,
                            "set outcome diverged at round {round} op {op} threads {t}"
                        );
                    }
                }
                65..=74 => {
                    let spec = Spec::draw(&mut rng, n_vars);
                    let ra = spec.apply(&mut agenda);
                    for net in planned.iter_mut() {
                        assert_eq!(spec.apply(net), ra, "add diverged at {round} op {op}");
                    }
                }
                75..=84 => {
                    let cids = active_cids(&agenda);
                    if !cids.is_empty() {
                        let c = cids[rng.range_usize(0, cids.len())];
                        let on = rng.next_bool();
                        each(&mut planned, &mut agenda, &|net| {
                            net.set_constraint_enabled(c, on);
                        });
                    }
                }
                85..=91 => {
                    let cids = active_cids(&agenda);
                    if !cids.is_empty() {
                        let c = cids[rng.range_usize(0, cids.len())];
                        each(&mut planned, &mut agenda, &|net| {
                            net.remove_constraint(c);
                        });
                    }
                }
                _ => {
                    let limit = rng.range_i64(1, 4) as u32;
                    each(&mut planned, &mut agenda, &|net| {
                        net.set_value_change_limit(limit);
                    });
                }
            }
            let da = dump(&agenda);
            for (t, net) in THREAD_SWEEP.iter().zip(planned.iter()) {
                assert_eq!(
                    dump(net),
                    da,
                    "state diverged at round {round} op {op} threads {t}"
                );
            }
        }

        // The planned twins took thread-count-dependent execution paths
        // but must land on the identical core statistics block.
        let s = planned[0].stats();
        for (t, net) in THREAD_SWEEP.iter().zip(planned.iter()).skip(1) {
            assert_eq!(
                format!("{:?}", net.stats()),
                format!("{s:?}"),
                "stats diverged at round {round} threads {t}"
            );
        }
        total_hits += s.plan_cache_hits;
        total_invalidations += s.plan_cache_invalidations;
        total_compiles += s.plan_compiles;
        let ps = planned.last().unwrap().par_stats();
        total_parallel_replays += ps.plan_replays_parallel;
        total_parallel_wavefronts += ps.plan_replays_wavefront;
        total_parallel_steals += ps.cones_stolen;
        total_parallel_fallbacks += ps.parallel_fallbacks;
        // The deterministic parallel counters must agree across the
        // pooled twins; only `cones_stolen` is schedule-dependent.
        for (t, net) in THREAD_SWEEP.iter().zip(planned.iter()).skip(1) {
            let mut other = net.par_stats();
            let mut want = ps;
            other.cones_stolen = 0;
            want.cones_stolen = 0;
            assert_eq!(
                other, want,
                "par stats diverged at round {round} threads {t}"
            );
        }
        assert_eq!(planned[0].par_stats(), stem_core::ParStats::default());
        saw_uncompilable |= planned[0]
            .variables()
            .any(|v| planned[0].plan_status(v) == PlanStatus::Uncompilable);
        let sa = agenda.stats();
        assert_eq!(sa.plan_compiles, 0, "agenda twin must never plan");
        assert_eq!(sa.plan_cache_hits, 0);
    }

    // The workload must actually exercise every interesting regime.
    assert!(total_compiles > 0, "no plan was ever compiled");
    assert!(total_hits > 0, "no set was ever served from the cache");
    assert!(
        total_invalidations > 0,
        "structural edits never invalidated a cached plan"
    );
    assert!(total_violations > 0, "tripwires never fired — too loose");
    assert!(
        saw_uncompilable,
        "no multi-writer cone was ever refused — topology mix too tame"
    );
    assert!(
        total_parallel_replays > 0,
        "the 8-thread twin never replayed a partition — topology mix too tame"
    );
    assert!(
        total_parallel_fallbacks > 0,
        "the 8-thread twin never fell back — admission rules untested"
    );
    assert!(
        total_parallel_wavefronts > 0,
        "no single-cone plan ever ran as a wavefront — levelizer untested"
    );
    // Not asserted > 0: steal counts are schedule-dependent and may
    // legitimately be 0 on a quiet machine. Folded in so the sweep
    // exercises the accounting without constraining it.
    let _ = total_parallel_steals;
}
