//! Randomized differential check of the plan-cached propagation path:
//! 1 000 SplitMix64-derived networks, each mirrored into a twin with plan
//! caching disabled, fed the identical op stream — value sets interleaved
//! with structural edits (constraint adds, enable toggles, removals,
//! change-limit tweaks) that force plan invalidation mid-run. After every
//! op the two networks must agree byte-for-byte on values, justifications
//! and outcomes; the planned side must additionally have exercised the
//! cache (hits), the invalidation path, and the uncompilable fallback.

use stem_core::kinds::{Equality, Functional, Predicate};
use stem_core::prng::SplitMix64;
use stem_core::{ConstraintId, Justification, Network, PlanStatus, Value, VarId};

/// Canonical rendering of the full observable state.
fn dump(net: &Network) -> String {
    net.variables()
        .map(|v| {
            format!(
                "{}={:?}/{:?};",
                net.var_name(v),
                net.value(v),
                net.justification(v)
            )
        })
        .collect()
}

/// A constraint recipe, drawn once and instantiated on both twins so the
/// pair stays structurally identical.
enum Spec {
    Equality(Vec<VarId>),
    Sum(Vec<VarId>),
    Max(Vec<VarId>),
    LeConst(VarId, i64),
}

impl Spec {
    fn draw(rng: &mut SplitMix64, n_vars: usize) -> Spec {
        let var = |rng: &mut SplitMix64| VarId::from_index(rng.range_usize(0, n_vars));
        match rng.range_usize(0, 10) {
            // Equality chains dominate: they are the plannable fabric.
            0..=4 => {
                let n = rng.range_usize(2, 4);
                Spec::Equality((0..n).map(|_| var(rng)).collect())
            }
            5..=6 => {
                let n = rng.range_usize(2, 4);
                Spec::Sum((0..n).map(|_| var(rng)).collect())
            }
            7 => {
                let n = rng.range_usize(2, 4);
                Spec::Max((0..n).map(|_| var(rng)).collect())
            }
            // Tripwires: bounds low enough that random sets violate often.
            _ => Spec::LeConst(var(rng), rng.range_i64(5, 30)),
        }
    }

    fn apply(&self, net: &mut Network) -> String {
        let r = match self {
            Spec::Equality(args) => net.add_constraint(Equality::new(), args.clone()),
            Spec::Sum(args) => net.add_constraint(Functional::uni_addition(), args.clone()),
            Spec::Max(args) => net.add_constraint(Functional::uni_maximum(), args.clone()),
            Spec::LeConst(v, k) => net.add_constraint(Predicate::le_const(Value::Int(*k)), [*v]),
        };
        format!("{r:?}")
    }
}

/// Ids of constraints that are still active (removable/toggleable).
fn active_cids(net: &Network) -> Vec<ConstraintId> {
    (0..net.n_constraints())
        .map(ConstraintId::from_index)
        .filter(|&c| net.is_active(c))
        .collect()
}

#[test]
fn planned_path_is_byte_identical_to_agenda_on_random_networks() {
    let mut total_hits = 0u64;
    let mut total_invalidations = 0u64;
    let mut total_compiles = 0u64;
    let mut total_violations = 0u64;
    let mut saw_uncompilable = false;

    for round in 0u64..1_000 {
        let mut rng = SplitMix64::new(0x9E1D_F00D ^ (round.wrapping_mul(0x2545_F491)));
        let mut planned = Network::new();
        let mut agenda = Network::new();
        agenda.set_plan_caching(false);
        assert!(planned.is_plan_caching());

        let n_vars = rng.range_usize(3, 10);
        for i in 0..n_vars {
            planned.add_variable(format!("v{i}"));
            agenda.add_variable(format!("v{i}"));
        }
        for _ in 0..rng.range_usize(1, n_vars) {
            let spec = Spec::draw(&mut rng, n_vars);
            let (rp, ra) = (spec.apply(&mut planned), spec.apply(&mut agenda));
            assert_eq!(rp, ra, "constraint add diverged in round {round}");
        }
        assert_eq!(dump(&planned), dump(&agenda), "setup diverged in {round}");

        for op in 0..rng.range_usize(8, 20) {
            match rng.range_usize(0, 100) {
                0..=64 => {
                    let v = VarId::from_index(rng.range_usize(0, n_vars));
                    let val = Value::Int(rng.range_i64(0, 40));
                    let rp = planned.set(v, val.clone(), Justification::User);
                    let ra = agenda.set(v, val, Justification::User);
                    if rp.is_err() {
                        total_violations += 1;
                    }
                    assert_eq!(
                        format!("{rp:?}"),
                        format!("{ra:?}"),
                        "set outcome diverged at round {round} op {op}"
                    );
                }
                65..=74 => {
                    let spec = Spec::draw(&mut rng, n_vars);
                    let (rp, ra) = (spec.apply(&mut planned), spec.apply(&mut agenda));
                    assert_eq!(rp, ra, "mid-run add diverged at round {round} op {op}");
                }
                75..=84 => {
                    let cids = active_cids(&planned);
                    if !cids.is_empty() {
                        let c = cids[rng.range_usize(0, cids.len())];
                        let on = rng.next_bool();
                        planned.set_constraint_enabled(c, on);
                        agenda.set_constraint_enabled(c, on);
                    }
                }
                85..=91 => {
                    let cids = active_cids(&planned);
                    if !cids.is_empty() {
                        let c = cids[rng.range_usize(0, cids.len())];
                        planned.remove_constraint(c);
                        agenda.remove_constraint(c);
                    }
                }
                _ => {
                    let limit = rng.range_i64(1, 4) as u32;
                    planned.set_value_change_limit(limit);
                    agenda.set_value_change_limit(limit);
                }
            }
            assert_eq!(
                dump(&planned),
                dump(&agenda),
                "state diverged at round {round} op {op}"
            );
        }

        let s = planned.stats();
        total_hits += s.plan_cache_hits;
        total_invalidations += s.plan_cache_invalidations;
        total_compiles += s.plan_compiles;
        saw_uncompilable |= planned
            .variables()
            .any(|v| planned.plan_status(v) == PlanStatus::Uncompilable);
        let sa = agenda.stats();
        assert_eq!(sa.plan_compiles, 0, "agenda twin must never plan");
        assert_eq!(sa.plan_cache_hits, 0);
    }

    // The workload must actually exercise every interesting regime.
    assert!(total_compiles > 0, "no plan was ever compiled");
    assert!(total_hits > 0, "no set was ever served from the cache");
    assert!(
        total_invalidations > 0,
        "structural edits never invalidated a cached plan"
    );
    assert!(total_violations > 0, "tripwires never fired — too loose");
    assert!(
        saw_uncompilable,
        "no multi-writer cone was ever refused — topology mix too tame"
    );
}
