//! Steady-state propagation must not allocate: the propagation state is
//! pooled (`spare_state`), activation pushes borrow the arena in place,
//! and constraint `infer` paths read argument lists without `to_vec`.
//!
//! This file holds exactly ONE `#[test]`. The counting allocator is
//! process-global, and the default test runner is multi-threaded — a
//! second test in this binary would race its allocations into our window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use stem_core::kinds::{Equality, Functional, Predicate};
use stem_core::{Justification, Network, Value};

struct CountingAlloc;

static COUNTING: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn count_allocs(f: impl FnOnce()) -> u64 {
    ALLOCS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    f();
    COUNTING.store(false, Ordering::SeqCst);
    ALLOCS.load(Ordering::SeqCst)
}

#[test]
fn steady_state_propagation_is_allocation_free() {
    let mut net = Network::new();
    let vars: Vec<_> = (0..64).map(|i| net.add_variable(format!("v{i}"))).collect();
    for w in vars.windows(2) {
        net.add_constraint(Equality::new(), [w[0], w[1]]).unwrap();
    }
    // Mix in the other hot kinds so their infer paths are exercised too.
    let s = net.add_variable("sum");
    net.add_constraint(Functional::uni_addition(), [vars[0], s])
        .unwrap();
    net.add_constraint(Predicate::le_const(Value::Int(1_000_000)), [vars[63]])
        .unwrap();

    // Warm up: first cycles size the pooled PropState, the agenda ring,
    // and the per-variable bookkeeping maps to this network's footprint.
    for i in 0..16 {
        net.set(vars[0], Value::Int(i), Justification::User)
            .unwrap();
    }

    // Steady state: the same wave shape must recycle that capacity.
    let allocs = count_allocs(|| {
        for i in 16..48 {
            net.set(vars[0], Value::Int(i), Justification::User)
                .unwrap();
        }
    });
    assert_eq!(
        allocs, 0,
        "steady-state propagation cycles allocated {allocs} times"
    );

    // The journal is pooled too (`spare_journal`): once a transaction of
    // this shape has run, later same-shape transactions are alloc-free.
    net.begin_journal();
    net.set(vars[0], Value::Int(100), Justification::User)
        .unwrap();
    net.rollback_journal();
    let allocs = count_allocs(|| {
        for i in 0..8 {
            net.begin_journal();
            net.set(vars[0], Value::Int(200 + i), Justification::User)
                .unwrap();
            net.rollback_journal();
        }
    });
    assert_eq!(
        allocs, 0,
        "steady-state journaled transactions allocated {allocs} times"
    );
}
