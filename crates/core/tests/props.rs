//! Randomised (seeded, fully deterministic) tests of the propagation
//! engine's invariants: convergence of equality networks, exact
//! restoration on violation, purity of tentative probes, and correctness
//! of functional DAG evaluation.

use stem_core::kinds::{Equality, Functional, Predicate};
use stem_core::prng::SplitMix64;
use stem_core::{Justification, Network, Value, VarId};

const ITERS: usize = 64;

/// Snapshot of all variable values for restoration checks.
fn snapshot(net: &Network) -> Vec<Value> {
    net.variables().map(|v| net.value(v).clone()).collect()
}

/// A random spanning tree of equality constraints over N variables:
/// setting any variable floods the value everywhere, with exactly N
/// assignments (each variable changes once — the one-value-change rule
/// doubles as an efficiency property).
#[test]
fn equality_tree_floods() {
    let mut rng = SplitMix64::new(0xE0_01);
    for _ in 0..ITERS {
        let n = rng.range_usize(2, 40);
        let value = rng.range_i64(-1000, 1000);
        let mut net = Network::new();
        let vars: Vec<VarId> = (0..n).map(|i| net.add_variable(format!("v{i}"))).collect();
        // Random tree: node i connects to a random previous node.
        for i in 1..n {
            let j = rng.range_usize(0, i);
            net.add_constraint(Equality::new(), [vars[j], vars[i]])
                .unwrap();
        }
        let start = vars[rng.range_usize(0, n)];
        net.reset_stats();
        net.set(start, Value::Int(value), Justification::User)
            .unwrap();
        for &v in &vars {
            assert_eq!(net.value(v), &Value::Int(value));
        }
        assert_eq!(net.stats().assignments, n as u64);
    }
}

/// Violations restore the network to exactly its prior state.
#[test]
fn violation_restores_exactly() {
    let mut rng = SplitMix64::new(0xE0_02);
    for _ in 0..ITERS {
        let n = rng.range_usize(2, 20);
        let bound = rng.range_i64(0, 50);
        let initial = rng.range_i64(0, 50);
        let attempt = rng.range_i64(51, 200);
        let mut net = Network::new();
        let vars: Vec<VarId> = (0..n).map(|i| net.add_variable(format!("v{i}"))).collect();
        for w in vars.windows(2) {
            net.add_constraint(Equality::new(), [w[0], w[1]]).unwrap();
        }
        // Bound the far end of the chain.
        net.add_constraint(
            Predicate::le_const(Value::Int(bound.max(initial))),
            [*vars.last().unwrap()],
        )
        .unwrap();
        net.set(
            vars[0],
            Value::Int(initial.min(bound)),
            Justification::Application,
        )
        .unwrap();
        let before = snapshot(&net);
        let result = net.set(vars[0], Value::Int(attempt), Justification::Application);
        assert!(result.is_err());
        assert_eq!(snapshot(&net), before);
    }
}

/// `can_be_set_to` never mutates, whatever the outcome.
#[test]
fn tentative_probe_is_pure() {
    let mut rng = SplitMix64::new(0xE0_03);
    for _ in 0..ITERS {
        let n = rng.range_usize(2, 15);
        let bound = rng.range_i64(0, 100);
        let probe = rng.range_i64(-50, 200);
        let mut net = Network::new();
        let vars: Vec<VarId> = (0..n).map(|i| net.add_variable(format!("v{i}"))).collect();
        for w in vars.windows(2) {
            net.add_constraint(Equality::new(), [w[0], w[1]]).unwrap();
        }
        net.add_constraint(
            Predicate::le_const(Value::Int(bound)),
            [*vars.last().unwrap()],
        )
        .unwrap();
        net.set(
            vars[0],
            Value::Int(bound.min(0)),
            Justification::Application,
        )
        .unwrap();
        let before = snapshot(&net);
        let ok = net.can_be_set_to(vars[0], Value::Int(probe));
        assert_eq!(ok, probe <= bound);
        assert_eq!(snapshot(&net), before);
    }
}

/// A layered adder DAG (binary tree of UniAddition constraints) computes
/// the exact sum of its leaves, regardless of assignment order.
#[test]
fn functional_tree_sums_leaves() {
    let mut rng = SplitMix64::new(0xE0_04);
    for _ in 0..ITERS {
        let leaves: Vec<i64> = (0..rng.range_usize(2, 17))
            .map(|_| rng.range_i64(-100, 100))
            .collect();
        let mut net = Network::new();
        let leaf_vars: Vec<VarId> = (0..leaves.len())
            .map(|i| net.add_variable(format!("leaf{i}")))
            .collect();
        // Reduce pairwise until a single root.
        let mut layer = leaf_vars.clone();
        let mut next = Vec::new();
        while layer.len() > 1 {
            for pair in layer.chunks(2) {
                if pair.len() == 2 {
                    let out = net.add_variable("sum");
                    net.add_constraint(Functional::uni_addition(), [pair[0], pair[1], out])
                        .unwrap();
                    next.push(out);
                } else {
                    next.push(pair[0]);
                }
            }
            layer = std::mem::take(&mut next);
        }
        let root = layer[0];
        // Assign leaves in a pseudo-random order.
        let mut idx: Vec<usize> = (0..leaves.len()).collect();
        rng.shuffle(&mut idx);
        for &i in &idx {
            net.set(leaf_vars[i], Value::Int(leaves[i]), Justification::User)
                .unwrap();
        }
        let expected: i64 = leaves.iter().sum();
        assert_eq!(net.value(root), &Value::Int(expected));
    }
}

/// Inconsistent cycles always violate and always restore (Fig. 4.9
/// generalised): a +k1, +k2, ..., +kn cycle with Σk ≠ 0.
#[test]
fn inconsistent_cycles_violate() {
    let mut rng = SplitMix64::new(0xE0_05);
    for _ in 0..ITERS {
        let ks: Vec<i64> = (0..rng.range_usize(2, 6))
            .map(|_| rng.range_i64(1, 10))
            .collect();
        let init = rng.range_i64(-100, 100);
        let mut net = Network::new();
        let n = ks.len();
        let vars: Vec<VarId> = (0..n).map(|i| net.add_variable(format!("v{i}"))).collect();
        for i in 0..n {
            let k = ks[i];
            let from = vars[i];
            let to = vars[(i + 1) % n];
            let f = Functional::custom("plusConst", move |vals| {
                vals[0].as_i64().map(|x| Value::Int(x + k))
            });
            net.add_constraint(f, [from, to]).unwrap();
        }
        let before = snapshot(&net);
        let result = net.set(vars[0], Value::Int(init), Justification::User);
        assert!(result.is_err(), "Σk > 0 cycle can never be satisfied");
        assert_eq!(snapshot(&net), before);
    }
}

/// Adding then removing an equality constraint erases exactly the values
/// it justified; pre-existing independent values survive.
#[test]
fn add_remove_roundtrip() {
    let mut rng = SplitMix64::new(0xE0_06);
    for _ in 0..ITERS {
        let a_val = rng.range_i64(-100, 100);
        let n = rng.range_usize(2, 10);
        let mut net = Network::new();
        let vars: Vec<VarId> = (0..n).map(|i| net.add_variable(format!("v{i}"))).collect();
        net.set(vars[0], Value::Int(a_val), Justification::User)
            .unwrap();
        let cid = net.add_constraint(Equality::new(), vars.clone()).unwrap();
        for &v in &vars {
            assert_eq!(net.value(v), &Value::Int(a_val));
        }
        net.remove_constraint(cid);
        assert_eq!(net.value(vars[0]), &Value::Int(a_val));
        for &v in &vars[1..] {
            assert!(net.value(v).is_nil());
        }
        assert_eq!(net.n_constraints(), 0);
    }
}

/// Consequences and antecedents are mutually consistent: if b is a
/// consequence of a, then a is an antecedent of b.
#[test]
fn dependency_duality() {
    let mut rng = SplitMix64::new(0xE0_07);
    for _ in 0..ITERS {
        let n = rng.range_usize(2, 20);
        let mut net = Network::new();
        let vars: Vec<VarId> = (0..n).map(|i| net.add_variable(format!("v{i}"))).collect();
        for i in 1..n {
            let j = rng.range_usize(0, i);
            net.add_constraint(Equality::new(), [vars[j], vars[i]])
                .unwrap();
        }
        net.set(vars[0], Value::Int(1), Justification::User)
            .unwrap();
        for &a in &vars {
            for &b in net.consequences(a).iter() {
                let (ante, _) = net.antecedents(b);
                assert!(ante.contains(&a), "{a} -> {b} but no back-edge");
            }
        }
    }
}
