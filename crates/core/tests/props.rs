//! Property-based tests of the propagation engine's invariants:
//! convergence of equality networks, exact restoration on violation, purity
//! of tentative probes, and correctness of functional DAG evaluation.

use proptest::prelude::*;
use stem_core::kinds::{Equality, Functional, Predicate};
use stem_core::{Justification, Network, Value, VarId};

/// Snapshot of all variable values for restoration checks.
fn snapshot(net: &Network) -> Vec<Value> {
    net.variables().map(|v| net.value(v).clone()).collect()
}

proptest! {
    /// A random spanning tree of equality constraints over N variables:
    /// setting any variable floods the value everywhere, with exactly N
    /// assignments (each variable changes once — the one-value-change rule
    /// doubles as an efficiency property).
    #[test]
    fn equality_tree_floods(
        n in 2usize..40,
        edges_seed in any::<u64>(),
        start_index in any::<usize>(),
        value in -1000i64..1000,
    ) {
        let mut net = Network::new();
        let vars: Vec<VarId> = (0..n).map(|i| net.add_variable(format!("v{i}"))).collect();
        // Random tree: node i connects to a previous node chosen by seed.
        let mut s = edges_seed;
        for i in 1..n {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (s >> 33) as usize % i;
            net.add_constraint(Equality::new(), [vars[j], vars[i]]).unwrap();
        }
        let start = vars[start_index % n];
        net.reset_stats();
        net.set(start, Value::Int(value), Justification::User).unwrap();
        for &v in &vars {
            prop_assert_eq!(net.value(v), &Value::Int(value));
        }
        prop_assert_eq!(net.stats().assignments, n as u64);
    }

    /// Violations restore the network to exactly its prior state.
    #[test]
    fn violation_restores_exactly(
        n in 2usize..20,
        bound in 0i64..50,
        initial in 0i64..50,
        attempt in 51i64..200,
    ) {
        let mut net = Network::new();
        let vars: Vec<VarId> = (0..n).map(|i| net.add_variable(format!("v{i}"))).collect();
        for w in vars.windows(2) {
            net.add_constraint(Equality::new(), [w[0], w[1]]).unwrap();
        }
        // Bound the far end of the chain.
        net.add_constraint(Predicate::le_const(Value::Int(bound.max(initial))), [*vars.last().unwrap()]).unwrap();
        net.set(vars[0], Value::Int(initial.min(bound)), Justification::Application).unwrap();
        let before = snapshot(&net);
        let result = net.set(vars[0], Value::Int(attempt), Justification::Application);
        prop_assert!(result.is_err());
        prop_assert_eq!(snapshot(&net), before);
    }

    /// `can_be_set_to` never mutates, whatever the outcome.
    #[test]
    fn tentative_probe_is_pure(
        n in 2usize..15,
        bound in 0i64..100,
        probe in -50i64..200,
    ) {
        let mut net = Network::new();
        let vars: Vec<VarId> = (0..n).map(|i| net.add_variable(format!("v{i}"))).collect();
        for w in vars.windows(2) {
            net.add_constraint(Equality::new(), [w[0], w[1]]).unwrap();
        }
        net.add_constraint(Predicate::le_const(Value::Int(bound)), [*vars.last().unwrap()]).unwrap();
        net.set(vars[0], Value::Int(bound.min(0)), Justification::Application).unwrap();
        let before = snapshot(&net);
        let ok = net.can_be_set_to(vars[0], Value::Int(probe));
        prop_assert_eq!(ok, probe <= bound);
        prop_assert_eq!(snapshot(&net), before);
    }

    /// A layered adder DAG (binary tree of UniAddition constraints)
    /// computes the exact sum of its leaves, regardless of assignment
    /// order.
    #[test]
    fn functional_tree_sums_leaves(
        leaves in proptest::collection::vec(-100i64..100, 2..17),
        order_seed in any::<u64>(),
    ) {
        let mut net = Network::new();
        let leaf_vars: Vec<VarId> = (0..leaves.len())
            .map(|i| net.add_variable(format!("leaf{i}")))
            .collect();
        // Reduce pairwise until a single root.
        let mut layer = leaf_vars.clone();
        let mut next = Vec::new();
        while layer.len() > 1 {
            for pair in layer.chunks(2) {
                if pair.len() == 2 {
                    let out = net.add_variable("sum");
                    net.add_constraint(Functional::uni_addition(), [pair[0], pair[1], out]).unwrap();
                    next.push(out);
                } else {
                    next.push(pair[0]);
                }
            }
            layer = std::mem::take(&mut next);
        }
        let root = layer[0];
        // Assign leaves in a pseudo-random order.
        let mut idx: Vec<usize> = (0..leaves.len()).collect();
        let mut s = order_seed;
        for i in (1..idx.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            idx.swap(i, (s >> 33) as usize % (i + 1));
        }
        for &i in &idx {
            net.set(leaf_vars[i], Value::Int(leaves[i]), Justification::User).unwrap();
        }
        let expected: i64 = leaves.iter().sum();
        prop_assert_eq!(net.value(root), &Value::Int(expected));
    }

    /// Inconsistent cycles always violate and always restore (Fig. 4.9
    /// generalised): a +k1, +k2, ..., +kn cycle with Σk ≠ 0.
    #[test]
    fn inconsistent_cycles_violate(
        ks in proptest::collection::vec(1i64..10, 2..6),
        init in -100i64..100,
    ) {
        let mut net = Network::new();
        let n = ks.len();
        let vars: Vec<VarId> = (0..n).map(|i| net.add_variable(format!("v{i}"))).collect();
        for i in 0..n {
            let k = ks[i];
            let from = vars[i];
            let to = vars[(i + 1) % n];
            let f = Functional::custom("plusConst", move |vals| {
                vals[0].as_i64().map(|x| Value::Int(x + k))
            });
            net.add_constraint(f, [from, to]).unwrap();
        }
        let before = snapshot(&net);
        let result = net.set(vars[0], Value::Int(init), Justification::User);
        prop_assert!(result.is_err(), "Σk > 0 cycle can never be satisfied");
        prop_assert_eq!(snapshot(&net), before);
    }

    /// Adding then removing an equality constraint erases exactly the
    /// values it justified; pre-existing independent values survive.
    #[test]
    fn add_remove_roundtrip(
        a_val in -100i64..100,
        n in 2usize..10,
    ) {
        let mut net = Network::new();
        let vars: Vec<VarId> = (0..n).map(|i| net.add_variable(format!("v{i}"))).collect();
        net.set(vars[0], Value::Int(a_val), Justification::User).unwrap();
        let cid = net.add_constraint(Equality::new(), vars.clone()).unwrap();
        for &v in &vars {
            prop_assert_eq!(net.value(v), &Value::Int(a_val));
        }
        net.remove_constraint(cid);
        prop_assert_eq!(net.value(vars[0]), &Value::Int(a_val));
        for &v in &vars[1..] {
            prop_assert!(net.value(v).is_nil());
        }
        prop_assert_eq!(net.n_constraints(), 0);
    }

    /// Consequences and antecedents are mutually consistent: if b is a
    /// consequence of a, then a is an antecedent of b.
    #[test]
    fn dependency_duality(
        n in 2usize..20,
        seed in any::<u64>(),
    ) {
        let mut net = Network::new();
        let vars: Vec<VarId> = (0..n).map(|i| net.add_variable(format!("v{i}"))).collect();
        let mut s = seed;
        for i in 1..n {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (s >> 33) as usize % i;
            net.add_constraint(Equality::new(), [vars[j], vars[i]]).unwrap();
        }
        net.set(vars[0], Value::Int(1), Justification::User).unwrap();
        for &a in &vars {
            for &b in net.consequences(a).iter() {
                let (ante, _) = net.antecedents(b);
                prop_assert!(ante.contains(&a), "{a} -> {b} but no back-edge");
            }
        }
    }
}
