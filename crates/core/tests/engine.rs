//! Engine-level integration tests reproducing the worked examples of thesis
//! chapter 4 (experiments E1, E2 of DESIGN.md) plus the editing and
//! dependency-analysis behaviours of §4.2.4–4.2.5.

use std::cell::RefCell;
use std::rc::Rc;

use stem_core::kinds::{Equality, Functional, Predicate, UpdateConstraint};
use stem_core::{DependencyRecord, Justification, Network, NetworkInspector, Value, ViolationKind};

/// E1 — thesis Fig. 4.5: V1 = V2, V4 = max(V2, V3); with V3 = 7, setting
/// V1 := 9 propagates V2 := 9 and V4 := 9.
#[test]
fn fig4_5_simple_network() {
    let mut net = Network::new();
    let v1 = net.add_variable("V1");
    let v2 = net.add_variable("V2");
    let v3 = net.add_variable("V3");
    let v4 = net.add_variable("V4");
    net.add_constraint(Equality::new(), [v1, v2]).unwrap();
    net.add_constraint(Functional::uni_maximum(), [v2, v3, v4])
        .unwrap();

    // Initial state of the figure: V1=7, V2=7, V3=7(ish), V4=7.
    net.set(v3, Value::Int(7), Justification::User).unwrap();
    net.set(v1, Value::Int(7), Justification::User).unwrap();
    assert_eq!(net.value(v2), &Value::Int(7));
    assert_eq!(net.value(v4), &Value::Int(7));

    // Fig. 4.5(b): user changes V1 to 9.
    net.set(v1, Value::Int(9), Justification::User).unwrap();
    assert_eq!(net.value(v2), &Value::Int(9));
    assert_eq!(net.value(v4), &Value::Int(9), "max(9, 7) = 9");
}

/// E2 — thesis Fig. 4.9: the cyclic network V2 = V1+1, V3 = V2+3,
/// V1 = V3+2 cannot be satisfied. Setting V1 := 10 propagates 11 and 14,
/// then the attempt to assign V1 := 16 violates the one-value-change rule
/// and the network is restored.
#[test]
fn fig4_9_cyclic_constraints() {
    let mut net = Network::new();
    let v1 = net.add_variable("V1");
    let v2 = net.add_variable("V2");
    let v3 = net.add_variable("V3");
    let plus = |k: i64| {
        Functional::custom("plusConst", move |vals| {
            vals[0].as_i64().map(|x| Value::Int(x + k))
        })
    };
    net.add_constraint(plus(1), [v1, v2]).unwrap();
    net.add_constraint(plus(3), [v2, v3]).unwrap();
    net.add_constraint(plus(2), [v3, v1]).unwrap();

    let err = net
        .set(v1, Value::Int(10), Justification::User)
        .unwrap_err();
    assert_eq!(err.kind, ViolationKind::Revisit);
    assert_eq!(err.variable, Some(v1));
    assert_eq!(err.rejected, Some(Value::Int(16)), "10+1+3+2");

    // Default violation handling (Fig. 4.10): every visited variable is
    // restored to its pre-propagation state.
    assert!(net.value(v1).is_nil());
    assert!(net.value(v2).is_nil());
    assert!(net.value(v3).is_nil());
}

/// Cyclic constraints that happen to be *consistent* propagate fine: the
/// thesis prohibits cyclic propagation, not cyclic constraints.
#[test]
fn consistent_cycle_terminates() {
    let mut net = Network::new();
    let a = net.add_variable("a");
    let b = net.add_variable("b");
    // a = b and b = a (two equality constraints forming a cycle).
    net.add_constraint(Equality::new(), [a, b]).unwrap();
    net.add_constraint(Equality::new(), [b, a]).unwrap();
    net.set(a, Value::Int(4), Justification::User).unwrap();
    assert_eq!(net.value(b), &Value::Int(4));
}

#[test]
fn user_value_blocks_propagation_with_violation() {
    let mut net = Network::new();
    let a = net.add_variable("a");
    let b = net.add_variable("b");
    net.set(b, Value::Int(1), Justification::User).unwrap();
    net.add_constraint(Equality::new(), [a, b]).unwrap();
    // b is user-specified; propagating 2 into it must fail and restore.
    let err = net.set(a, Value::Int(2), Justification::User).unwrap_err();
    assert_eq!(err.kind, ViolationKind::OverwriteDenied);
    assert_eq!(net.value(a), &Value::Int(1), "a keeps the propagated 1");
    assert_eq!(net.value(b), &Value::Int(1));
}

#[test]
fn application_value_is_overwritten_by_propagation() {
    let mut net = Network::new();
    let a = net.add_variable("a");
    let b = net.add_variable("b");
    net.set(b, Value::Int(1), Justification::Application)
        .unwrap();
    net.add_constraint(Equality::new(), [a, b]).unwrap();
    net.set(a, Value::Int(2), Justification::User).unwrap();
    assert_eq!(net.value(b), &Value::Int(2));
}

#[test]
fn violation_handlers_run_after_restore() {
    let mut net = Network::new();
    let a = net.add_variable("a");
    net.add_constraint(Predicate::le_const(Value::Int(5)), [a])
        .unwrap();
    net.set(a, Value::Int(3), Justification::Application)
        .unwrap();
    let log: Rc<RefCell<Vec<String>>> = Rc::new(RefCell::new(Vec::new()));
    let log2 = log.clone();
    net.add_violation_handler(move |net, v| {
        // At handler time the network is already restored: `a` is back to 3.
        log2.borrow_mut().push(format!("{v} a={}", net.value(a)));
    });
    let _ = net.set(a, Value::Int(9), Justification::User);
    assert_eq!(log.borrow().len(), 1);
    assert!(
        log.borrow()[0].contains("unsatisfied"),
        "{:?}",
        log.borrow()
    );
    assert!(log.borrow()[0].contains("a=3"), "{:?}", log.borrow());
}

#[test]
fn cpswitch_disables_propagation_and_checking() {
    let mut net = Network::new();
    let a = net.add_variable("a");
    let b = net.add_variable("b");
    let cid = net.add_constraint(Equality::new(), [a, b]).unwrap();
    net.set_propagation_enabled(false);
    net.set(a, Value::Int(1), Justification::User).unwrap();
    net.set(b, Value::Int(2), Justification::User).unwrap();
    assert!(
        net.value(a) != net.value(b),
        "no propagation while disabled"
    );
    assert!(!net.is_satisfied(cid));
    // check_all is the recovery sweep after re-enabling (§5.3 notes STEM
    // itself offered none).
    net.set_propagation_enabled(true);
    let violations = net.check_all();
    assert_eq!(violations.len(), 1);
    assert_eq!(violations[0].constraint, Some(cid));
}

#[test]
fn tentative_probe_always_restores() {
    let mut net = Network::new();
    let a = net.add_variable("a");
    let b = net.add_variable("b");
    net.add_constraint(Equality::new(), [a, b]).unwrap();
    net.add_constraint(Predicate::le_const(Value::Int(10)), [b])
        .unwrap();
    net.set(a, Value::Int(3), Justification::Application)
        .unwrap();

    assert!(net.can_be_set_to(a, Value::Int(7)));
    assert_eq!(net.value(a), &Value::Int(3), "probe restored");
    assert_eq!(net.value(b), &Value::Int(3));

    assert!(
        !net.can_be_set_to(a, Value::Int(11)),
        "would violate b <= 10"
    );
    assert_eq!(net.value(a), &Value::Int(3));
    assert_eq!(net.value(b), &Value::Int(3));
}

#[test]
fn tentative_probe_does_not_call_handlers() {
    let mut net = Network::new();
    let a = net.add_variable("a");
    net.add_constraint(Predicate::le_const(Value::Int(5)), [a])
        .unwrap();
    let count = Rc::new(RefCell::new(0));
    let c2 = count.clone();
    net.add_violation_handler(move |_, _| *c2.borrow_mut() += 1);
    assert!(!net.can_be_set_to(a, Value::Int(9)));
    assert_eq!(*count.borrow(), 0);
    let _ = net.set(a, Value::Int(9), Justification::User);
    assert_eq!(*count.borrow(), 1);
}

/// Fig. 4.13: adding a constraint re-propagates existing values in
/// precedence order — user-specified values win over calculated ones.
#[test]
fn add_constraint_precedence_user_over_application() {
    let mut net = Network::new();
    let a = net.add_variable("a");
    let b = net.add_variable("b");
    net.set(a, Value::Int(1), Justification::Application)
        .unwrap();
    net.set(b, Value::Int(2), Justification::User).unwrap();
    net.add_constraint(Equality::new(), [a, b]).unwrap();
    // The user value (2) asserts first; the application value yields.
    assert_eq!(net.value(a), &Value::Int(2));
    assert_eq!(net.value(b), &Value::Int(2));
}

/// Fig. 4.14: removing a constraint erases the values it justified, plus
/// their consequences — dependency-directed erasure.
#[test]
fn remove_constraint_erases_dependents() {
    let mut net = Network::new();
    let a = net.add_variable("a");
    let b = net.add_variable("b");
    let c = net.add_variable("c");
    let eq_ab = net.add_constraint(Equality::new(), [a, b]).unwrap();
    net.add_constraint(Equality::new(), [b, c]).unwrap();
    net.set(a, Value::Int(5), Justification::User).unwrap();
    assert_eq!(net.value(c), &Value::Int(5));

    net.remove_constraint(eq_ab);
    assert_eq!(net.value(a), &Value::Int(5), "independent value survives");
    assert!(
        net.value(b).is_nil(),
        "b was justified by the removed constraint"
    );
    assert!(net.value(c).is_nil(), "c was a consequence of b");
}

#[test]
fn detach_arg_erases_and_repropagates_remaining() {
    let mut net = Network::new();
    let a = net.add_variable("a");
    let b = net.add_variable("b");
    let c = net.add_variable("c");
    let eq = net.add_constraint(Equality::new(), [a, b, c]).unwrap();
    net.set(a, Value::Int(3), Justification::User).unwrap();
    assert_eq!(net.value(c), &Value::Int(3));

    // Detach a (the source of everyone's value): b and c are erased, then
    // the constraint re-initialises over {b, c} with nothing to assert.
    net.detach_arg(eq, a).unwrap();
    assert_eq!(net.value(a), &Value::Int(3));
    assert!(net.value(b).is_nil());
    assert!(net.value(c).is_nil());
    assert_eq!(net.args(eq), &[b, c]);

    // New values flow only between the remaining arguments.
    net.set(b, Value::Int(8), Justification::User).unwrap();
    assert_eq!(net.value(c), &Value::Int(8));
    assert_eq!(net.value(a), &Value::Int(3), "a detached, unaffected");
}

#[test]
fn attach_arg_pulls_new_variable_into_the_relation() {
    let mut net = Network::new();
    let a = net.add_variable("a");
    let b = net.add_variable("b");
    let d = net.add_variable("d");
    let eq = net.add_constraint(Equality::new(), [a, b]).unwrap();
    net.set(a, Value::Int(4), Justification::User).unwrap();
    net.attach_arg(eq, d).unwrap();
    assert_eq!(net.value(d), &Value::Int(4));
}

#[test]
fn attach_arg_rolls_back_on_violation() {
    let mut net = Network::new();
    let a = net.add_variable("a");
    let b = net.add_variable("b");
    let d = net.add_variable("d");
    let eq = net.add_constraint(Equality::new(), [a, b]).unwrap();
    net.set(a, Value::Int(4), Justification::User).unwrap();
    net.set(d, Value::Int(9), Justification::User).unwrap();
    assert!(net.attach_arg(eq, d).is_err());
    assert_eq!(net.args(eq), &[a, b], "attachment rolled back");
    assert_eq!(net.value(d), &Value::Int(9));
}

/// §4.2.4: dependency analysis walks antecedents (backward) and
/// consequences (forward) through mixed constraint kinds.
#[test]
fn dependency_analysis_through_mixed_kinds() {
    let mut net = Network::new();
    let a = net.add_variable("a");
    let b = net.add_variable("b");
    let sum = net.add_variable("sum");
    let mirror = net.add_variable("mirror");
    net.add_constraint(Functional::uni_addition(), [a, b, sum])
        .unwrap();
    net.add_constraint(Equality::new(), [sum, mirror]).unwrap();
    net.set(a, Value::Int(1), Justification::User).unwrap();
    net.set(b, Value::Int(2), Justification::User).unwrap();
    assert_eq!(net.value(mirror), &Value::Int(3));

    let (ante_vars, ante_cons) = net.antecedents(mirror);
    assert!(ante_vars.contains(&a) && ante_vars.contains(&b) && ante_vars.contains(&sum));
    assert_eq!(ante_cons.len(), 2);

    let cons_a = net.consequences(a);
    assert!(cons_a.contains(&sum) && cons_a.contains(&mirror));
    // b's value does not depend on a (both are user inputs).
    assert!(!cons_a.contains(&b));
}

#[test]
fn equality_dependency_is_directional() {
    // In an equality chain a -> b -> c set from a, consequences of c must
    // be empty (nothing depends on c) even though it shares constraints.
    let mut net = Network::new();
    let a = net.add_variable("a");
    let b = net.add_variable("b");
    let c = net.add_variable("c");
    net.add_constraint(Equality::new(), [a, b]).unwrap();
    net.add_constraint(Equality::new(), [b, c]).unwrap();
    net.set(a, Value::Int(1), Justification::User).unwrap();
    assert_eq!(net.consequences(c), vec![c]);
    let (av, _) = net.antecedents(c);
    assert_eq!(av, vec![c, b, a], "backward chain in discovery order");
}

#[test]
fn update_constraint_and_recalc_roundtrip_with_inspection() {
    let mut net = Network::new();
    let src = net.add_variable("netlist");
    let view = net.add_variable_with("spiceDeck", None, Rc::new(stem_core::PropertyKind));
    net.add_constraint(UpdateConstraint::new(1), [src, view])
        .unwrap();
    net.set_recalc(view, move |net, var| {
        net.set(var, Value::str("deck-v2"), Justification::Application)
            .unwrap();
    });
    net.set(src, Value::Int(1), Justification::User).unwrap();
    assert_eq!(net.value_or_recalc(view), &Value::str("deck-v2"));

    let insp = NetworkInspector::new(&net);
    let d = insp.describe_variable(view);
    assert!(d.contains("property"), "{d}");
}

#[test]
fn stats_count_cycles_and_assignments() {
    let mut net = Network::new();
    let a = net.add_variable("a");
    let b = net.add_variable("b");
    net.add_constraint(Equality::new(), [a, b]).unwrap();
    net.reset_stats();
    net.set(a, Value::Int(1), Justification::User).unwrap();
    let s = net.stats();
    assert_eq!(s.cycles, 1);
    assert_eq!(s.assignments, 2, "a plus propagated b");
    assert!(s.activations >= 1);
    assert_eq!(s.violations, 0);
}

#[test]
fn dependency_record_shapes() {
    let mut net = Network::new();
    let a = net.add_variable("a");
    let b = net.add_variable("b");
    let r = net.add_variable("r");
    net.add_constraint(Functional::uni_addition(), [a, b, r])
        .unwrap();
    net.set(a, Value::Int(1), Justification::User).unwrap();
    net.set(b, Value::Int(1), Justification::User).unwrap();
    assert_eq!(net.justification(r).record(), Some(&DependencyRecord::All));
}
