//! Change-journal semantics: O(touched) rollback of values and journalable
//! structure, equivalence with the whole-network snapshot, and the guard
//! rails around non-journalable edits.

use stem_core::kinds::{Equality, Predicate};
use stem_core::prng::SplitMix64;
use stem_core::{Justification, Network, Value, VarId};

fn chain(net: &mut Network, n: usize) -> Vec<VarId> {
    let vars: Vec<_> = (0..n).map(|i| net.add_variable(format!("v{i}"))).collect();
    for w in vars.windows(2) {
        net.add_constraint(Equality::new(), [w[0], w[1]]).unwrap();
    }
    vars
}

fn dump(net: &Network) -> String {
    net.variables()
        .map(|v| {
            format!(
                "{}={:?}/{:?};",
                net.var_name(v),
                net.value(v),
                net.justification(v)
            )
        })
        .collect()
}

#[test]
fn commit_keeps_changes_rollback_undoes_values() {
    let mut net = Network::new();
    let vars = chain(&mut net, 4);
    net.set(vars[0], Value::Int(1), Justification::User)
        .unwrap();
    let before = dump(&net);

    net.begin_journal();
    net.set(vars[0], Value::Int(2), Justification::User)
        .unwrap();
    net.set(vars[0], Value::Int(9), Justification::Application)
        .unwrap();
    assert!(net.is_journaling());
    net.rollback_journal();
    assert!(!net.is_journaling());
    assert_eq!(
        dump(&net),
        before,
        "rollback restores values + justifications"
    );

    net.begin_journal();
    net.set(vars[0], Value::Int(2), Justification::User)
        .unwrap();
    net.set(vars[0], Value::Int(9), Justification::Application)
        .unwrap();
    net.commit_journal();
    assert_eq!(net.value(vars[0]), &Value::Int(9), "commit keeps changes");
    assert_eq!(
        net.value(vars[3]),
        &Value::Int(9),
        "propagation committed too"
    );
}

#[test]
fn rollback_pops_added_variables_and_constraints() {
    let mut net = Network::new();
    let a = net.add_variable("a");
    let b = net.add_variable("b");
    net.set(a, Value::Int(5), Justification::User).unwrap();
    let before = dump(&net);
    let n_slots = net.n_constraint_slots();

    net.begin_journal();
    let c = net.add_variable("c");
    net.add_constraint(Equality::new(), [a, b]).unwrap();
    net.add_constraint(Equality::new(), [b, c]).unwrap();
    assert_eq!(net.value(c), &Value::Int(5), "chain propagated on wiring");
    net.rollback_journal();

    assert_eq!(net.n_variables(), 2, "added variable popped");
    assert_eq!(
        net.n_constraint_slots(),
        n_slots,
        "added constraints popped"
    );
    assert_eq!(dump(&net), before, "propagated values undone");
    assert!(
        net.constraints_of(a).is_empty() && net.constraints_of(b).is_empty(),
        "constraint lists unwired"
    );
}

#[test]
fn rollback_reverts_toggles_and_limit() {
    let mut net = Network::new();
    let a = net.add_variable("a");
    let b = net.add_variable("b");
    let cid = net.add_constraint(Equality::new(), [a, b]).unwrap();

    net.begin_journal();
    net.set_constraint_enabled(cid, false);
    net.set_kind_enabled("equality", true); // re-enable via kind toggle
    net.set_value_change_limit(4);
    assert!(net.is_constraint_enabled(cid));
    assert_eq!(net.value_change_limit(), 4);
    net.rollback_journal();
    assert!(net.is_constraint_enabled(cid), "back to original enabled");
    assert_eq!(net.value_change_limit(), 1, "limit reverted");
}

#[test]
fn journal_cost_is_o_touched_not_o_network() {
    let mut net = Network::new();
    // 100_000 unconstrained variables plus one tiny equality pair.
    for i in 0..100_000 {
        net.add_variable(format!("pad{i}"));
    }
    let a = net.add_variable("a");
    let b = net.add_variable("b");
    net.add_constraint(Equality::new(), [a, b]).unwrap();

    net.begin_journal();
    net.set(a, Value::Int(3), Justification::User).unwrap();
    // Touched set: a and b. The journal must not scale with the 100k pad.
    assert!(
        net.journal_len() <= 4,
        "journal holds {} entries for a 2-variable touch",
        net.journal_len()
    );
    net.rollback_journal();
    assert!(net.value(a).is_nil() && net.value(b).is_nil());
}

#[test]
fn first_write_wins_pre_image() {
    let mut net = Network::new();
    let a = net.add_variable("a");
    net.set(a, Value::Int(1), Justification::User).unwrap();

    net.begin_journal();
    for i in 2..10 {
        net.set(a, Value::Int(i), Justification::User).unwrap();
    }
    assert_eq!(net.journal_len(), 1, "one pre-image per variable");
    net.rollback_journal();
    assert_eq!(
        net.value(a),
        &Value::Int(1),
        "rolled back to pre-journal value"
    );
}

#[test]
fn rollback_after_mid_propagation_violation_matches_snapshot() {
    // Randomised differential check at the Network level: a journaled
    // transaction and a snapshot transaction over identical operations
    // leave byte-identical dumps, including operations that violate
    // mid-propagation (the cycle restores, then the journal unwinds the
    // earlier operations of the same transaction).
    let mut rng = SplitMix64::new(0xA11CE);
    for round in 0..25 {
        let mut net = Network::new();
        let vars = chain(&mut net, 8);
        // A bound that mid-propagation values can violate.
        net.add_constraint(Predicate::le_const(Value::Int(50)), [vars[5]])
            .unwrap();

        // Seed, then capture both checkpoint flavors.
        net.set(
            vars[0],
            Value::Int((round % 40) as i64),
            Justification::User,
        )
        .unwrap();
        let snap = net.snapshot();
        let reference = dump(&net);

        net.begin_journal();
        for _ in 0..12 {
            let v = vars[rng.range_usize(0, vars.len() - 1)];
            let val = Value::Int(rng.range_i64(0, 80));
            let _ = net.set(v, val, Justification::Application);
        }
        let journaled_end = dump(&net);
        net.rollback_journal();
        let after_journal_rollback = dump(&net);

        // The whole-network snapshot must agree with the journal about
        // what "the seeded state" is.
        net.restore_snapshot(&snap);
        assert_eq!(
            dump(&net),
            reference,
            "snapshot restore returns to the seeded state"
        );
        assert_eq!(
            after_journal_rollback, reference,
            "journal rollback returns to the seeded state (round {round}, end state {journaled_end})"
        );
    }
}

#[test]
fn remove_constraint_rolls_back_to_exact_wiring() {
    let mut net = Network::new();
    let a = net.add_variable("a");
    let b = net.add_variable("b");
    let c = net.add_variable("c");
    // Two constraints on `b` so the rollback has to restore `cid`'s exact
    // position in b's constraint list (activation order depends on it).
    let cid = net.add_constraint(Equality::new(), [a, b]).unwrap();
    let other = net.add_constraint(Equality::new(), [b, c]).unwrap();
    net.set(a, Value::Int(7), Justification::User).unwrap();
    let before = dump(&net);
    let wiring_b = net.constraints_of(b).to_vec();

    net.begin_journal();
    net.remove_constraint(cid);
    // The erasure cascade reset b and c; a (User) survives.
    assert!(net.value(b).is_nil() && net.value(c).is_nil());
    assert!(!net.is_active(cid));
    net.rollback_journal();

    assert!(net.is_active(cid), "constraint re-wired");
    assert_eq!(net.constraints_of(b), wiring_b, "exact list position");
    assert_eq!(net.args(cid), [a, b]);
    assert_eq!(dump(&net), before, "erased values restored");
    let _ = other;

    // And a committed removal stays removed.
    net.begin_journal();
    net.remove_constraint(cid);
    net.commit_journal();
    assert!(!net.is_active(cid));
    assert!(net.value(b).is_nil());
}

#[test]
#[should_panic(expected = "already open")]
fn nested_journals_refused() {
    let mut net = Network::new();
    net.begin_journal();
    net.begin_journal();
}

#[test]
fn probe_under_journal_is_a_no_op_on_rollback() {
    let mut net = Network::new();
    let vars = chain(&mut net, 3);
    net.set(vars[0], Value::Int(7), Justification::User)
        .unwrap();
    let before = dump(&net);

    net.begin_journal();
    // Compatible probe: 7 matches the propagated chain, so it succeeds.
    assert!(net.can_be_set_to(vars[2], Value::Int(7)));
    // Conflicting probe: 8 would overwrite the user-pinned root — denied.
    assert!(!net.can_be_set_to(vars[2], Value::Int(8)));
    assert_eq!(dump(&net), before, "probes restored everything themselves");
    net.rollback_journal();
    assert_eq!(
        dump(&net),
        before,
        "journal replay of probe pre-images is inert"
    );
}

#[test]
fn add_constraint_violation_cleanup_is_journal_coherent() {
    let mut net = Network::new();
    let a = net.add_variable("a");
    let b = net.add_variable("b");
    net.set(a, Value::Int(1), Justification::User).unwrap();
    net.set(b, Value::Int(2), Justification::User).unwrap();
    let before = dump(&net);
    let slots = net.n_constraint_slots();

    net.begin_journal();
    // Conflicting equality: add_constraint fails and tombstones its own
    // slot; the journal entry for the add must still roll back cleanly.
    net.add_constraint(Equality::new(), [a, b]).unwrap_err();
    net.rollback_journal();
    assert_eq!(net.n_constraint_slots(), slots, "tombstoned slot popped");
    assert_eq!(dump(&net), before);
}
