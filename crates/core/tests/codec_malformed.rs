//! Malformed-input hardening for the codec (crash-matrix style).
//!
//! The codec is shared by WAL recovery and the wire protocol: both feed
//! it bytes from outside the process (a torn log tail, a hostile or buggy
//! network peer), so *every* decode path must return a `DecodeError` —
//! never panic, never over-allocate — for truncated, oversized, or
//! garbage input. The sweep mirrors the crash matrix: take a valid
//! encoding of each message type and decode every byte-truncation of it,
//! every single-byte corruption of it, and piles of raw garbage.

use stem_core::codec::{
    put_justification, put_record, put_str, put_u32, put_u8, put_value, put_violation, Reader,
    MAX_LEN, MAX_LIST_DEPTH,
};
use stem_core::{
    ConstraintId, DependencyRecord, FinSet, Interval, Justification, Value, VarId, Violation,
};

/// A deterministic SplitMix64 for garbage generation (no rand crate).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Every decoder entry point the WAL and the wire protocol use, each as
/// a closure so one sweep covers them all uniformly.
type Decoder = (&'static str, fn(&mut Reader) -> Result<(), &'static str>);

fn decoders() -> Vec<Decoder> {
    vec![
        ("value", |r| r.value().map(|_| ()).map_err(|_| "err")),
        ("record", |r| r.record().map(|_| ()).map_err(|_| "err")),
        ("justification", |r| {
            r.justification().map(|_| ()).map_err(|_| "err")
        }),
        ("violation", |r| {
            r.violation().map(|_| ()).map_err(|_| "err")
        }),
        ("str", |r| r.str().map(|_| ()).map_err(|_| "err")),
        ("u64", |r| r.u64().map(|_| ()).map_err(|_| "err")),
    ]
}

fn sample_values() -> Vec<Value> {
    vec![
        Value::Nil,
        Value::Bool(true),
        Value::Int(-7),
        Value::Float(3.25),
        Value::str("wire προτόκολλο"),
        Value::BitWidth(16),
        Value::List(vec![
            Value::Int(1),
            Value::List(vec![Value::str("nested"), Value::Nil]),
            Value::Float(0.5),
        ]),
        // Domain values ride through the same sweep: every truncation
        // of their fixed-width payloads must error, every corruption
        // must stay in-grammar.
        Value::Interval(Interval::new(-40, 4096)),
        Value::Interval(Interval::new(i64::MIN, i64::MAX)),
        Value::FinSet(FinSet::new(0x8000_0000_0000_0001)),
        Value::List(vec![
            Value::Interval(Interval::new(0, 63)),
            Value::FinSet(FinSet::new(u64::MAX)),
        ]),
    ]
}

fn sample_messages() -> Vec<(&'static str, Vec<u8>)> {
    let mut out = Vec::new();
    for (i, v) in sample_values().into_iter().enumerate() {
        let mut buf = Vec::new();
        put_value(&mut buf, &v);
        out.push(("value", buf));
        // Interleave: a dump entry is (str, value, justification) — the
        // wire protocol's bread and butter.
        let mut buf = Vec::new();
        put_str(&mut buf, &format!("var{i}"));
        put_value(&mut buf, &v);
        put_justification(
            &mut buf,
            &Justification::Propagated {
                constraint: ConstraintId::from_index(i),
                record: DependencyRecord::Vars(vec![VarId::from_index(0), VarId::from_index(i)]),
            },
        );
        out.push(("dump-entry", buf));
    }
    for j in [
        Justification::Unset,
        Justification::User,
        Justification::Propagated {
            constraint: ConstraintId::from_index(2),
            record: DependencyRecord::All,
        },
    ] {
        let mut buf = Vec::new();
        put_justification(&mut buf, &j);
        out.push(("justification", buf));
    }
    for v in [
        Violation::revisit(
            VarId::from_index(1),
            ConstraintId::from_index(0),
            Value::Int(3),
        ),
        Violation::overwrite_denied(
            VarId::from_index(2),
            Some(ConstraintId::from_index(4)),
            Value::str("rejected"),
        )
        .with_kind_name("sum"),
        Violation::budget_exceeded(1000),
        Violation::custom("custom kind says no", Some(ConstraintId::from_index(1))),
    ] {
        let mut buf = Vec::new();
        put_violation(&mut buf, &v);
        out.push(("violation", buf));
    }
    for r in [
        DependencyRecord::All,
        DependencyRecord::Single(VarId::from_index(9)),
        DependencyRecord::Vars(vec![VarId::from_index(0); 5]),
        DependencyRecord::Opaque(u64::MAX),
    ] {
        let mut buf = Vec::new();
        put_record(&mut buf, &r);
        out.push(("record", buf));
    }
    out
}

fn matching_decoder(kind: &str) -> fn(&mut Reader) -> Result<(), &'static str> {
    match kind {
        "value" => |r| r.value().map(|_| ()).map_err(|_| "err"),
        "justification" => |r| r.justification().map(|_| ()).map_err(|_| "err"),
        "violation" => |r| r.violation().map(|_| ()).map_err(|_| "err"),
        "record" => |r| r.record().map(|_| ()).map_err(|_| "err"),
        "dump-entry" => |r| {
            r.str().map_err(|_| "err")?;
            r.value().map_err(|_| "err")?;
            r.justification().map(|_| ()).map_err(|_| "err")
        },
        other => panic!("unknown message kind {other}"),
    }
}

#[test]
fn every_truncation_of_every_message_errors_cleanly() {
    for (kind, bytes) in sample_messages() {
        let decode = matching_decoder(kind);
        // The full encoding must decode and consume everything.
        let mut r = Reader::new(&bytes);
        decode(&mut r).unwrap_or_else(|_| panic!("{kind}: full encoding failed to decode"));
        assert!(r.is_empty(), "{kind}: trailing bytes after full decode");
        // Every proper prefix must be a clean error (truncation can never
        // yield a *shorter valid* message: all grammars here are
        // length-prefixed or fixed-width, so a cut always lands inside a
        // pending field).
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            assert!(
                decode(&mut r).is_err(),
                "{kind}: truncation to {cut}/{} bytes decoded",
                bytes.len()
            );
        }
    }
}

#[test]
fn every_single_byte_corruption_errors_or_stays_in_grammar() {
    for (kind, bytes) in sample_messages() {
        let decode = matching_decoder(kind);
        for i in 0..bytes.len() {
            for flip in [0x01u8, 0x80, 0xFF] {
                let mut bad = bytes.clone();
                bad[i] ^= flip;
                // Corruption may still decode (flipping a value byte just
                // changes the value) — what it must never do is panic or
                // read out of bounds. Run it and require either Ok with a
                // sane reader position or a structured error.
                let mut r = Reader::new(&bad);
                let _ = decode(&mut r);
                assert!(r.position() <= bad.len(), "{kind}: reader overran buffer");
            }
        }
    }
}

#[test]
fn random_garbage_never_panics_any_decoder() {
    let mut rng = Rng(0xC0FFEE);
    for round in 0..500 {
        let len = (rng.next() % 64) as usize;
        let garbage: Vec<u8> = (0..len).map(|_| rng.next() as u8).collect();
        for (name, decode) in decoders() {
            let mut r = Reader::new(&garbage);
            let _ = decode(&mut r);
            assert!(
                r.position() <= garbage.len(),
                "{name}: overran garbage buffer in round {round}"
            );
        }
    }
}

#[test]
fn oversized_length_prefixes_are_rejected_before_allocation() {
    // A hostile peer claims a 268M-element list / string / var set. The
    // decoder must reject the prefix, not try to reserve the memory.
    for tag in [4u8 /* Str */, 9 /* List */] {
        let mut buf = vec![tag];
        put_u32(&mut buf, MAX_LEN + 1);
        assert!(Reader::new(&buf).value().is_err(), "tag {tag} oversize");
    }
    let mut buf = vec![2u8]; // DependencyRecord::Vars
    put_u32(&mut buf, u32::MAX);
    assert!(Reader::new(&buf).record().is_err());
    // Custom violation with an oversized message string.
    let mut buf = vec![3u8];
    put_u32(&mut buf, MAX_LEN + 1);
    assert!(Reader::new(&buf).violation().is_err());
}

#[test]
fn hostile_nesting_is_depth_limited() {
    // List-of-list… deeper than MAX_LIST_DEPTH, claiming one element each:
    // 5 bytes of input per level must not recurse unboundedly.
    let mut buf = Vec::new();
    for _ in 0..(MAX_LIST_DEPTH + 8) {
        put_u8(&mut buf, 9);
        put_u32(&mut buf, 1);
    }
    put_u8(&mut buf, 0);
    assert!(Reader::new(&buf).value().is_err());
    // The same bytes inside a violation's rejected-value slot.
    let mut v = vec![
        0u8, /* Revisit */
        0,   /* var: None */
        0,   /* cid: None */
        1,
    ];
    v.extend_from_slice(&buf);
    put_u8(&mut v, 0); // kind_name: None
    assert!(Reader::new(&v).violation().is_err());
}

#[test]
fn bad_tags_in_every_grammar_are_tag_errors() {
    use stem_core::codec::DecodeError;
    // 12 is the first unassigned value tag (10/11 are Interval/FinSet).
    for bad in [12u8, 0x20, 0xFE, 0xFF] {
        assert!(matches!(
            Reader::new(&[bad]).value(),
            Err(DecodeError::Tag { .. })
        ));
        if bad > 6 {
            assert!(matches!(
                Reader::new(&[bad]).justification(),
                Err(DecodeError::Tag { .. })
            ));
        }
        if bad > 4 {
            assert!(matches!(
                Reader::new(&[bad]).violation(),
                Err(DecodeError::Tag { .. })
            ));
        }
        if bad > 3 {
            assert!(matches!(
                Reader::new(&[bad]).record(),
                Err(DecodeError::Tag { .. })
            ));
        }
    }
}
