//! Fault-injection and misuse tests: the engine's guard rails — re-entrancy
//! asserts, handler coverage across every violation kind, and recovery
//! behaviour under deliberately hostile constraint kinds.

use std::cell::RefCell;
use std::rc::Rc;

use stem_core::kinds::{Equality, Functional, Predicate};
use stem_core::{
    ConstraintId, ConstraintKind, DependencyRecord, Justification, Network, Value, VarId,
    Violation, ViolationKind,
};

/// A hostile kind that raises a custom violation on every inference.
#[derive(Debug)]
struct AlwaysViolates;

impl ConstraintKind for AlwaysViolates {
    fn kind_name(&self) -> &str {
        "alwaysViolates"
    }

    fn infer(
        &self,
        _net: &mut Network,
        cid: ConstraintId,
        _changed: Option<VarId>,
    ) -> Result<(), Violation> {
        Err(Violation::custom("deliberate failure", Some(cid)))
    }

    fn is_satisfied(&self, _net: &Network, _cid: ConstraintId) -> bool {
        true
    }
}

/// A kind that tries to re-enter `Network::set` from inside inference —
/// a programming error the engine must catch loudly, not corrupt state.
#[derive(Debug)]
struct ReentrantSet;

impl ConstraintKind for ReentrantSet {
    fn kind_name(&self) -> &str {
        "reentrantSet"
    }

    fn infer(
        &self,
        net: &mut Network,
        cid: ConstraintId,
        _changed: Option<VarId>,
    ) -> Result<(), Violation> {
        let victim = net.args(cid)[0];
        // Forbidden: external entry point from inside a cycle.
        net.set(victim, Value::Int(0), Justification::Application)?;
        Ok(())
    }

    fn is_satisfied(&self, _net: &Network, _cid: ConstraintId) -> bool {
        true
    }
}

#[test]
fn handlers_see_every_violation_kind() {
    let kinds: Rc<RefCell<Vec<ViolationKind>>> = Rc::new(RefCell::new(Vec::new()));

    // Unsatisfied (predicate).
    let mut net = Network::new();
    let k = kinds.clone();
    net.add_violation_handler(move |_, v| k.borrow_mut().push(v.kind.clone()));
    let a = net.add_variable("a");
    net.add_constraint(Predicate::le_const(Value::Int(5)), [a])
        .unwrap();
    let _ = net.set(a, Value::Int(9), Justification::User);

    // OverwriteDenied (user value).
    let mut net = Network::new();
    let k = kinds.clone();
    net.add_violation_handler(move |_, v| k.borrow_mut().push(v.kind.clone()));
    let a = net.add_variable("a");
    let b = net.add_variable("b");
    net.set(b, Value::Int(1), Justification::User).unwrap();
    net.add_constraint(Equality::new(), [a, b]).unwrap();
    let _ = net.set(a, Value::Int(2), Justification::User);

    // Revisit (cycle).
    let mut net = Network::new();
    let k = kinds.clone();
    net.add_violation_handler(move |_, v| k.borrow_mut().push(v.kind.clone()));
    let a = net.add_variable("a");
    let b = net.add_variable("b");
    let plus1 = || Functional::custom("plus1", |vals| vals[0].as_i64().map(|x| Value::Int(x + 1)));
    net.add_constraint(plus1(), [a, b]).unwrap();
    net.add_constraint(plus1(), [b, a]).unwrap();
    let _ = net.set(a, Value::Int(0), Justification::User);

    // Custom (hostile kind).
    let mut net = Network::new();
    let k = kinds.clone();
    net.add_violation_handler(move |_, v| k.borrow_mut().push(v.kind.clone()));
    let a = net.add_variable("a");
    net.add_constraint_quiet(AlwaysViolates, [a]);
    let _ = net.set(a, Value::Int(1), Justification::User);

    let seen = kinds.borrow();
    assert!(seen.contains(&ViolationKind::Unsatisfied), "{seen:?}");
    assert!(seen.contains(&ViolationKind::OverwriteDenied), "{seen:?}");
    assert!(seen.contains(&ViolationKind::Revisit), "{seen:?}");
    assert!(
        seen.iter().any(|v| matches!(v, ViolationKind::Custom(_))),
        "{seen:?}"
    );
}

#[test]
fn hostile_kind_rolls_back_cleanly() {
    let mut net = Network::new();
    let a = net.add_variable("a");
    let b = net.add_variable("b");
    net.add_constraint(Equality::new(), [a, b]).unwrap();
    net.add_constraint_quiet(AlwaysViolates, [b]);
    net.set(a, Value::Int(1), Justification::Application).ok();
    // Whatever the hostile kind did, the network is consistent.
    assert!(net.value(a).is_nil());
    assert!(net.value(b).is_nil());
    // And the network remains usable after disabling the saboteur.
    assert_eq!(net.set_kind_enabled("alwaysViolates", false), 1);
    net.set(a, Value::Int(1), Justification::Application)
        .unwrap();
    assert_eq!(net.value(b), &Value::Int(1));
}

#[test]
#[should_panic(expected = "not re-entrant")]
fn reentrant_set_is_a_loud_error() {
    let mut net = Network::new();
    let a = net.add_variable("a");
    let b = net.add_variable("b");
    net.add_constraint_quiet(ReentrantSet, [b]);
    net.add_constraint_quiet(Equality::new(), [a, b]);
    let _ = net.set(a, Value::Int(1), Justification::User);
}

#[test]
#[should_panic(expected = "mid-propagation")]
fn mid_cycle_edits_are_a_loud_error() {
    #[derive(Debug)]
    struct EditsMidCycle;
    impl ConstraintKind for EditsMidCycle {
        fn kind_name(&self) -> &str {
            "editsMidCycle"
        }
        fn infer(
            &self,
            net: &mut Network,
            _cid: ConstraintId,
            _changed: Option<VarId>,
        ) -> Result<(), Violation> {
            let v = net.add_variable("sneaky");
            net.add_constraint(Equality::new(), [v])?; // must panic
            Ok(())
        }
        fn is_satisfied(&self, _net: &Network, _cid: ConstraintId) -> bool {
            true
        }
    }
    let mut net = Network::new();
    let a = net.add_variable("a");
    net.add_constraint_quiet(EditsMidCycle, [a]);
    let _ = net.set(a, Value::Int(1), Justification::User);
}

#[test]
#[should_panic(expected = "argument")]
fn out_of_range_argument_is_a_loud_error() {
    let mut a_net = Network::new();
    let mut b_net = Network::new();
    let _a = a_net.add_variable("a");
    let foreign = b_net.add_variable("b");
    let _b2 = b_net.add_variable("b2");
    // `foreign` indexes b_net; a_net has one variable. Constructing with a
    // handle from the wrong arena must be rejected.
    let _ = a_net.add_constraint_quiet(Equality::new(), [foreign, foreign]);
    // (If the ids happen to alias, the explicit out-of-range one fails.)
    let oob = _b2;
    let _ = a_net.add_constraint_quiet(Equality::new(), [oob]);
}

#[test]
fn propagate_set_outside_cycle_panics() {
    let result = std::panic::catch_unwind(|| {
        let mut net = Network::new();
        let a = net.add_variable("a");
        let cid = net.add_constraint_quiet(Equality::new(), [a]);
        let _ = net.propagate_set(a, Value::Int(1), cid, DependencyRecord::All);
    });
    assert!(result.is_err(), "must panic outside a cycle");
}

#[test]
fn violation_during_tentative_probe_is_contained() {
    let mut net = Network::new();
    let a = net.add_variable("a");
    net.add_constraint_quiet(AlwaysViolates, [a]);
    assert!(!net.can_be_set_to(a, Value::Int(1)));
    // No state change, no handler storm, still usable.
    assert!(net.value(a).is_nil());
    assert_eq!(net.stats().violations, 1);
}

/// Review fix regression: a forged Propagated justification from outside
/// is rejected loudly instead of corrupting dependency analysis.
#[test]
#[should_panic(expected = "unknown constraint")]
fn forged_propagated_justification_is_rejected() {
    let mut other = Network::new();
    let ov = other.add_variable("o");
    let oc = other.add_constraint_quiet(Equality::new(), [ov]);
    let _ = other;

    let mut net = Network::new();
    let a = net.add_variable("a");
    // `oc` indexes the *other* network's arena (out of range here).
    let _ = net.set(
        a,
        Value::Int(1),
        Justification::Propagated {
            constraint: oc,
            record: DependencyRecord::All,
        },
    );
}
