//! Propagation-plan cache semantics: compile-once/replay-many, hit and
//! invalidation accounting, conservative refusal of cones the compiler
//! cannot prove single-writer, and violation restoration on the planned
//! path.

use stem_core::kinds::{Equality, Functional, Predicate};
use stem_core::{Justification, Network, PlanStatus, Value, VarId};

fn dump(net: &Network) -> String {
    net.variables()
        .map(|v| {
            format!(
                "{}={:?}/{:?};",
                net.var_name(v),
                net.value(v),
                net.justification(v)
            )
        })
        .collect()
}

/// Star: `hub` equality-linked to `n` spokes, each spoke feeding a
/// functional sum — a dense single-writer cone, the plannable case.
fn star(net: &mut Network, n: usize) -> (VarId, Vec<VarId>) {
    let hub = net.add_variable("hub");
    let spokes: Vec<_> = (0..n).map(|i| net.add_variable(format!("s{i}"))).collect();
    let mut eq_args = vec![hub];
    eq_args.extend(&spokes);
    net.add_constraint(Equality::new(), eq_args).unwrap();
    let total = net.add_variable("total");
    let mut sum_args = spokes.clone();
    sum_args.push(total);
    net.add_constraint(Functional::uni_addition(), sum_args)
        .unwrap();
    (hub, spokes)
}

#[test]
fn compile_once_then_hit() {
    let mut net = Network::new();
    let (hub, _) = star(&mut net, 8);

    assert_eq!(net.plan_status(hub), PlanStatus::NotCompiled);
    net.set(hub, Value::Int(1), Justification::User).unwrap();
    let s = net.stats();
    assert_eq!(s.plan_compiles, 1, "first set compiles");
    assert_eq!(s.plan_cache_hits, 0, "a fresh compile is not a hit");
    assert!(matches!(net.plan_status(hub), PlanStatus::Ready { .. }));

    for i in 2..10 {
        net.set(hub, Value::Int(i), Justification::User).unwrap();
    }
    let s = net.stats();
    assert_eq!(s.plan_compiles, 1, "no recompiles while structure holds");
    assert_eq!(s.plan_cache_hits, 8, "every later set replays the plan");
    assert_eq!(s.plan_cache_invalidations, 0);
}

#[test]
fn planned_and_agenda_agree_on_a_star() {
    let mut planned = Network::new();
    let mut agenda = Network::new();
    let (hp, _) = star(&mut planned, 6);
    let (ha, _) = star(&mut agenda, 6);
    agenda.set_plan_caching(false);

    for i in 0..5 {
        planned
            .set(hp, Value::Int(i * 3), Justification::User)
            .unwrap();
        agenda
            .set(ha, Value::Int(i * 3), Justification::User)
            .unwrap();
        assert_eq!(dump(&planned), dump(&agenda), "iteration {i}");
    }
    // Identical interpreter statistics, modulo the plan counters.
    let (sp, sa) = (planned.stats(), agenda.stats());
    assert_eq!(sp.activations, sa.activations);
    assert_eq!(sp.inferences, sa.inferences);
    assert_eq!(sp.schedules, sa.schedules);
    assert_eq!(sp.scheduled_runs, sa.scheduled_runs);
    assert_eq!(sp.assignments, sa.assignments);
    assert!(sp.plan_cache_hits > 0 && sa.plan_cache_hits == 0);
}

#[test]
fn structural_edit_invalidates() {
    let mut net = Network::new();
    let (hub, spokes) = star(&mut net, 4);
    net.set(hub, Value::Int(1), Justification::User).unwrap();
    net.set(hub, Value::Int(2), Justification::User).unwrap();
    assert_eq!(net.stats().plan_cache_hits, 1);
    let gen_before = net.structure_generation();

    // Adding a constraint reshapes the cone: the stale plan is evicted
    // eagerly via the touched-variable subscription index — the global
    // structure generation no longer moves on ordinary edits.
    let probe = net.add_variable("probe");
    net.add_constraint(Equality::new(), [spokes[0], probe])
        .unwrap();
    assert_eq!(net.structure_generation(), gen_before);
    assert_eq!(
        net.plan_status(hub),
        PlanStatus::NotCompiled,
        "stale entry reads as not compiled"
    );

    net.set(hub, Value::Int(3), Justification::User).unwrap();
    let s = net.stats();
    assert_eq!(s.plan_cache_invalidations, 1, "stale plan discarded");
    assert_eq!(s.plan_compiles, 2, "recompiled under the new generation");
    assert_eq!(net.value(probe), &Value::Int(3), "new edge is in the plan");
}

#[test]
fn toggles_and_removal_invalidate_too() {
    let mut net = Network::new();
    let a = net.add_variable("a");
    let b = net.add_variable("b");
    let c = net.add_variable("c");
    let ab = net.add_constraint(Equality::new(), [a, b]).unwrap();
    let bc = net.add_constraint(Equality::new(), [b, c]).unwrap();

    net.set(a, Value::Int(1), Justification::User).unwrap();
    assert_eq!(net.value(c), &Value::Int(1));

    net.set_constraint_enabled(bc, false);
    net.set(a, Value::Int(2), Justification::User).unwrap();
    assert_eq!(net.value(b), &Value::Int(2));
    assert_eq!(net.value(c), &Value::Int(1), "disabled edge skipped");

    net.set_constraint_enabled(bc, true);
    net.remove_constraint(ab);
    assert!(net.value(b).is_nil(), "removal erased its propagation");
    net.set(a, Value::Int(3), Justification::User).unwrap();
    assert!(net.value(b).is_nil(), "removed edge inert");
    let s = net.stats();
    assert!(
        s.plan_cache_invalidations >= 2,
        "each reshape dropped the cached plan (got {})",
        s.plan_cache_invalidations
    );
}

#[test]
fn multi_writer_cone_is_uncompilable_and_falls_back() {
    let mut net = Network::new();
    // Reconvergent diamond: a=b, a=c, then b=d and c=d — d has two
    // writers, which the compiler must refuse (runtime value pruning
    // decides who wins; the agenda is the ground truth there).
    let a = net.add_variable("a");
    let b = net.add_variable("b");
    let c = net.add_variable("c");
    let d = net.add_variable("d");
    net.add_constraint(Equality::new(), [a, b]).unwrap();
    net.add_constraint(Equality::new(), [a, c]).unwrap();
    net.add_constraint(Equality::new(), [b, d]).unwrap();
    net.add_constraint(Equality::new(), [c, d]).unwrap();
    net.set_value_change_limit(4); // let the reconvergence through

    net.set(a, Value::Int(5), Justification::User).unwrap();
    assert_eq!(net.plan_status(a), PlanStatus::Uncompilable);
    assert_eq!(net.value(d), &Value::Int(5), "agenda path still works");
    let s = net.stats();
    assert_eq!(s.plan_compiles, 1, "the refusal was cached");
    net.set(a, Value::Int(6), Justification::User).unwrap();
    assert_eq!(
        net.stats().plan_compiles,
        1,
        "no recompile attempt while the structure holds"
    );
    assert_eq!(net.stats().plan_cache_hits, 0);
}

#[test]
fn equality_cycle_is_uncompilable() {
    let mut net = Network::new();
    let a = net.add_variable("a");
    let b = net.add_variable("b");
    let c = net.add_variable("c");
    net.add_constraint(Equality::new(), [a, b]).unwrap();
    net.add_constraint(Equality::new(), [b, c]).unwrap();
    net.add_constraint(Equality::new(), [c, a]).unwrap();

    // The ring writes back into the root — statically refused; the agenda
    // terminates on the equal-value rule as always.
    net.set(a, Value::Int(9), Justification::User).unwrap();
    assert_eq!(net.plan_status(a), PlanStatus::Uncompilable);
    assert_eq!(net.value(b), &Value::Int(9));
    assert_eq!(net.value(c), &Value::Int(9));
}

#[test]
fn step_budget_forces_agenda_path() {
    let mut net = Network::new();
    let (hub, _) = star(&mut net, 4);
    net.set_step_limit(Some(1_000));
    net.set(hub, Value::Int(1), Justification::User).unwrap();
    assert_eq!(net.plan_status(hub), PlanStatus::NotCompiled);
    assert_eq!(net.stats().plan_compiles, 0, "budgeted cycles never plan");

    net.set_step_limit(None);
    net.set(hub, Value::Int(2), Justification::User).unwrap();
    assert_eq!(net.stats().plan_compiles, 1, "unbudgeted set plans again");
}

#[test]
fn disabling_plan_caching_drops_plans() {
    let mut net = Network::new();
    let (hub, _) = star(&mut net, 4);
    net.set(hub, Value::Int(1), Justification::User).unwrap();
    assert!(matches!(net.plan_status(hub), PlanStatus::Ready { .. }));

    net.set_plan_caching(false);
    assert!(!net.is_plan_caching());
    assert_eq!(net.plan_status(hub), PlanStatus::NotCompiled);
    net.set(hub, Value::Int(2), Justification::User).unwrap();
    assert_eq!(net.stats().plan_compiles, 1, "no compiles while off");

    net.set_plan_caching(true);
    net.set(hub, Value::Int(3), Justification::User).unwrap();
    assert_eq!(net.stats().plan_compiles, 2, "re-enable starts cold");
}

#[test]
fn planned_violation_restores_exactly() {
    let mut net = Network::new();
    let (hub, spokes) = star(&mut net, 4);
    net.add_constraint(Predicate::le_const(Value::Int(10)), [spokes[2]])
        .unwrap();
    let mut seen: Vec<String> = Vec::new();
    {
        // Handler sees the violation after restoration.
        net.add_violation_handler(move |_net, v| {
            let _ = v;
        });
    }
    net.set(hub, Value::Int(7), Justification::User).unwrap();
    let before = dump(&net);
    assert!(matches!(net.plan_status(hub), PlanStatus::Ready { .. }));

    // The planned replay trips the predicate in the final sweep.
    let err = net
        .set(hub, Value::Int(11), Justification::User)
        .unwrap_err();
    assert!(err.constraint.is_some());
    assert_eq!(dump(&net), before, "planned violation restored everything");
    assert!(
        matches!(net.plan_status(hub), PlanStatus::Ready { .. }),
        "plan survives a violation"
    );
    seen.clear();
}

#[test]
fn planned_sets_journal_coherently() {
    let mut net = Network::new();
    let (hub, _) = star(&mut net, 4);
    net.set(hub, Value::Int(1), Justification::User).unwrap();
    let before = dump(&net);

    net.begin_journal();
    net.set(hub, Value::Int(2), Justification::User).unwrap();
    net.set(hub, Value::Int(3), Justification::User).unwrap();
    assert!(net.stats().plan_cache_hits >= 2);
    net.rollback_journal();
    assert_eq!(dump(&net), before, "journal undoes planned writes");
}

#[test]
fn plan_survives_clone() {
    let mut net = Network::new();
    let (hub, _) = star(&mut net, 4);
    net.set(hub, Value::Int(1), Justification::User).unwrap();

    let mut fork = net.clone();
    assert!(matches!(fork.plan_status(hub), PlanStatus::Ready { .. }));
    fork.set(hub, Value::Int(2), Justification::User).unwrap();
    assert_eq!(
        fork.stats().plan_compiles,
        1,
        "the fork reuses the inherited plan"
    );
    assert_eq!(net.value(hub), &Value::Int(1), "original untouched");
}

#[test]
fn remove_then_readd_recompiles_instead_of_replaying_stale_plan() {
    let mut net = Network::new();
    let a = net.add_variable("a");
    let b = net.add_variable("b");
    let total = net.add_variable("total");
    let ab = net.add_constraint(Equality::new(), [a, b]).unwrap();
    net.add_constraint(Functional::uni_addition(), [a, b, total])
        .unwrap();

    // Compile a's plan, then replay it once: equality drives b, sum total.
    net.set(a, Value::Int(1), Justification::User).unwrap();
    net.set(a, Value::Int(2), Justification::User).unwrap();
    let s = net.stats();
    assert_eq!((s.plan_compiles, s.plan_cache_hits), (1, 1));
    assert_eq!(net.value(total), &Value::Int(4));

    // Tear the equality out and wire a fresh one over the SAME root. The
    // new constraint occupies a new slot; a plan replaying the removed
    // slot's steps would write through a dead constraint (or panic), and
    // one replaying pre-removal justifications would resurrect values the
    // removal erased.
    net.remove_constraint(ab);
    assert!(net.value(b).is_nil(), "removal erased its inference");
    let ab2 = net.add_constraint(Equality::new(), [a, b]).unwrap();
    assert_ne!(ab, ab2, "re-add lands in a fresh slot");
    assert_eq!(
        net.plan_status(a),
        PlanStatus::NotCompiled,
        "the stale plan must not be visible"
    );

    net.set(a, Value::Int(5), Justification::User).unwrap();
    let s = net.stats();
    assert!(
        s.plan_cache_invalidations >= 1,
        "remove/re-add dropped the cached plan (got {})",
        s.plan_cache_invalidations
    );
    assert_eq!(s.plan_compiles, 2, "the set after re-add compiled fresh");
    assert_eq!(net.value(b), &Value::Int(5), "the new equality propagates");
    assert_eq!(net.value(total), &Value::Int(10));

    // And the recompiled plan is itself replayable and correct.
    net.set(a, Value::Int(7), Justification::User).unwrap();
    assert_eq!(net.stats().plan_compiles, 2);
    assert_eq!(net.value(total), &Value::Int(14));
}
