//! Randomized differential check of the domain-propagation subsystem:
//! 1 000 SplitMix64-derived networks mixing interval, finite-set and
//! single-valued variables under the domain propagator library (bounds
//! `x + y = z`, offset inequalities, `all_different`, reification) plus
//! the classic kinds, each mirrored into an agenda twin with plan
//! caching disabled and into planned twins sweeping `threads ∈ {1, 2,
//! 4, 8}`, all fed the identical op stream — domain/value sets
//! interleaved with structural edits (adds, enable toggles, removals,
//! change-limit tweaks, runtime-subsumption switches). After every op
//! all twins must agree byte-for-byte on values, justifications and
//! outcomes; per round the planned twins must agree with each other on
//! the full statistics block, and the agenda twin must agree with them
//! on the domain counters (tightenings, subsumed prunes, wipeouts) and
//! on which constraints are currently marked subsumed.
//!
//! Every variable is seeded with a bounded domain before any constraint
//! arrives and every later set stays bounded, so offset-inequality
//! cycles cannot enter the unbounded one-step-at-a-time bound climb
//! that half-open domains would allow.

use stem_core::kinds::{AllDiff, DomAdd, DomLe, DomReifLe, DomainConstraint, Equality, Predicate};
use stem_core::prng::SplitMix64;
use stem_core::{ConstraintId, FinSet, Interval, Justification, Network, PlanStatus, Value, VarId};

/// Replay thread budgets swept by every round. Index 0 must stay `1`:
/// it is the sequential reference the others are compared against.
const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// Canonical rendering of the full observable state.
fn dump(net: &Network) -> String {
    net.variables()
        .map(|v| {
            format!(
                "{}={:?}/{:?};",
                net.var_name(v),
                net.value(v),
                net.justification(v)
            )
        })
        .collect()
}

/// Draws a bounded domain value: an interval inside `[0, 64]`, a small
/// integer (a singleton domain), or a non-empty finite set over
/// `{0, …, 63}`.
fn draw_value(rng: &mut SplitMix64) -> Value {
    match rng.range_usize(0, 10) {
        0..=4 => {
            let lo = rng.range_i64(0, 48);
            let hi = lo + rng.range_i64(0, 17);
            Value::Interval(Interval::new(lo, hi))
        }
        5..=7 => Value::Int(rng.range_i64(0, 64)),
        _ => Value::FinSet(FinSet::new(rng.next_u64() | 1)),
    }
}

/// A constraint recipe, drawn once and instantiated on every twin so the
/// set stays structurally identical.
enum Spec {
    /// `x ≤ y + c` and the lt/ge/gt derivations (`which ∈ 0..4`).
    Le(VarId, VarId, i64, usize),
    /// Directional `x ≤ y + c` narrowing only `out` (plannable).
    LeDir(VarId, VarId, i64, usize),
    /// `x + y = z`; `mode` 0 = forward, 1 = all, 2 = difference.
    Add(VarId, VarId, VarId, usize),
    /// Pairwise distinct.
    AllDiff(Vec<VarId>),
    /// `b ⇔ x ≤ y + c`.
    ReifLe(VarId, VarId, VarId, i64),
    Equality(Vec<VarId>),
    /// Tripwire predicate so plain violations stay in the mix.
    LeConst(VarId, i64),
}

impl Spec {
    fn draw(rng: &mut SplitMix64, n_vars: usize) -> Spec {
        let var = |rng: &mut SplitMix64| VarId::from_index(rng.range_usize(0, n_vars));
        let c = |rng: &mut SplitMix64| rng.range_i64(-8, 9);
        match rng.range_usize(0, 12) {
            0..=2 => Spec::Le(var(rng), var(rng), c(rng), rng.range_usize(0, 4)),
            3 => Spec::LeDir(var(rng), var(rng), c(rng), rng.range_usize(0, 2)),
            4..=5 => Spec::Add(var(rng), var(rng), var(rng), rng.range_usize(0, 3)),
            6 => {
                let n = rng.range_usize(2, 5);
                Spec::AllDiff((0..n).map(|_| var(rng)).collect())
            }
            7 => Spec::ReifLe(var(rng), var(rng), var(rng), c(rng)),
            8..=9 => {
                let n = rng.range_usize(2, 4);
                Spec::Equality((0..n).map(|_| var(rng)).collect())
            }
            _ => Spec::LeConst(var(rng), rng.range_i64(5, 30)),
        }
    }

    fn apply(&self, net: &mut Network) -> String {
        let r = match self {
            Spec::Le(x, y, c, which) => {
                let prop = match which {
                    0 => DomLe::le(*c),
                    1 => DomLe::lt(*c),
                    2 => DomLe::ge(*c),
                    _ => DomLe::gt(*c),
                };
                net.add_constraint(DomainConstraint::new(prop), [*x, *y])
            }
            Spec::LeDir(x, y, c, out) => net.add_constraint(
                DomainConstraint::new(DomLe::directional(*c, *out)),
                [*x, *y],
            ),
            Spec::Add(x, y, z, mode) => {
                let prop = match mode {
                    0 => DomAdd::forward(),
                    1 => DomAdd::all(),
                    _ => DomAdd::difference(),
                };
                net.add_constraint(DomainConstraint::new(prop), [*x, *y, *z])
            }
            Spec::AllDiff(args) => {
                net.add_constraint(DomainConstraint::new(AllDiff::new()), args.clone())
            }
            Spec::ReifLe(b, x, y, c) => {
                net.add_constraint(DomainConstraint::new(DomReifLe::le(*c)), [*b, *x, *y])
            }
            Spec::Equality(args) => net.add_constraint(Equality::new(), args.clone()),
            Spec::LeConst(v, k) => net.add_constraint(Predicate::le_const(Value::Int(*k)), [*v]),
        };
        format!("{r:?}")
    }
}

/// Ids of constraints that are still active (removable/toggleable).
fn active_cids(net: &Network) -> Vec<ConstraintId> {
    (0..net.n_constraints())
        .map(ConstraintId::from_index)
        .filter(|&c| net.is_active(c))
        .collect()
}

#[test]
fn domain_propagation_is_byte_identical_across_paths() {
    let mut total_tightenings = 0u64;
    let mut total_pruned = 0u64;
    let mut total_wipeouts = 0u64;
    let mut total_compiles = 0u64;
    let mut total_hits = 0u64;
    let mut total_invalidations = 0u64;
    let mut total_violations = 0u64;
    let mut total_marks = 0u64;
    let mut saw_uncompilable = false;

    for round in 0u64..1_000 {
        let mut rng = SplitMix64::new(0xD0DA_11F5 ^ (round.wrapping_mul(0x2545_F491)));
        let mut agenda = Network::new();
        agenda.set_plan_caching(false);
        let mut planned: Vec<Network> = THREAD_SWEEP
            .iter()
            .map(|&threads| {
                let mut net = Network::new();
                assert!(net.is_plan_caching());
                net.set_parallel_threads(threads);
                net.set_parallel_min_steps(1);
                net.set_parallel_cone_min_steps(1);
                net
            })
            .collect();
        let each = |planned: &mut Vec<Network>, agenda: &mut Network, f: &dyn Fn(&mut Network)| {
            for net in planned.iter_mut() {
                f(net);
            }
            f(agenda);
        };

        let n_vars = rng.range_usize(3, 10);
        for i in 0..n_vars {
            each(&mut planned, &mut agenda, &|net| {
                net.add_variable(format!("v{i}"));
            });
        }
        // Seed every variable with a bounded domain *before* any
        // constraint exists (no constraints yet, so these cannot fail);
        // boundedness is what keeps inequality cycles terminating.
        for i in 0..n_vars {
            let val = draw_value(&mut rng);
            each(&mut planned, &mut agenda, &|net| {
                net.set(VarId::from_index(i), val.clone(), Justification::User)
                    .expect("unconstrained seed set cannot fail");
            });
        }
        for _ in 0..rng.range_usize(1, n_vars) {
            let spec = Spec::draw(&mut rng, n_vars);
            let ra = spec.apply(&mut agenda);
            for net in planned.iter_mut() {
                assert_eq!(spec.apply(net), ra, "constraint add diverged in {round}");
            }
        }
        let da = dump(&agenda);
        for net in &planned {
            assert_eq!(dump(net), da, "setup diverged in {round}");
        }

        for op in 0..rng.range_usize(8, 20) {
            match rng.range_usize(0, 100) {
                0..=59 => {
                    let v = VarId::from_index(rng.range_usize(0, n_vars));
                    let val = draw_value(&mut rng);
                    let ra = format!("{:?}", agenda.set(v, val.clone(), Justification::User));
                    if ra.starts_with("Err") {
                        total_violations += 1;
                    }
                    for (t, net) in THREAD_SWEEP.iter().zip(planned.iter_mut()) {
                        let rp = format!("{:?}", net.set(v, val.clone(), Justification::User));
                        assert_eq!(
                            rp, ra,
                            "set outcome diverged at round {round} op {op} threads {t}"
                        );
                    }
                }
                60..=69 => {
                    let spec = Spec::draw(&mut rng, n_vars);
                    let ra = spec.apply(&mut agenda);
                    for net in planned.iter_mut() {
                        assert_eq!(spec.apply(net), ra, "add diverged at {round} op {op}");
                    }
                }
                70..=78 => {
                    let cids = active_cids(&agenda);
                    if !cids.is_empty() {
                        let c = cids[rng.range_usize(0, cids.len())];
                        let on = rng.next_bool();
                        each(&mut planned, &mut agenda, &|net| {
                            net.set_constraint_enabled(c, on);
                        });
                    }
                }
                79..=85 => {
                    let cids = active_cids(&agenda);
                    if !cids.is_empty() {
                        let c = cids[rng.range_usize(0, cids.len())];
                        each(&mut planned, &mut agenda, &|net| {
                            net.remove_constraint(c);
                        });
                    }
                }
                86..=92 => {
                    // Runtime-subsumption switch; biased towards on so
                    // entailment marks actually accumulate and later
                    // dispatches hit the prune path.
                    let on = rng.range_usize(0, 4) != 0;
                    each(&mut planned, &mut agenda, &|net| {
                        net.set_subsumption(on);
                    });
                }
                _ => {
                    let limit = rng.range_i64(1, 4) as u32;
                    each(&mut planned, &mut agenda, &|net| {
                        net.set_value_change_limit(limit);
                    });
                }
            }
            let da = dump(&agenda);
            for (t, net) in THREAD_SWEEP.iter().zip(planned.iter()) {
                assert_eq!(
                    dump(net),
                    da,
                    "state diverged at round {round} op {op} threads {t}"
                );
            }
        }

        // The planned twins took thread-count-dependent execution paths
        // but must land on the identical full statistics block.
        let s = planned[0].stats();
        for (t, net) in THREAD_SWEEP.iter().zip(planned.iter()).skip(1) {
            assert_eq!(
                format!("{:?}", net.stats()),
                format!("{s:?}"),
                "stats diverged at round {round} threads {t}"
            );
        }
        // The agenda twin must agree on the domain counters and on the
        // set of live subsumption marks: the prune sites were placed so
        // plan replay is observationally identical to the interpreter.
        let sa = agenda.stats();
        assert_eq!(
            (sa.domain_tightenings, sa.subsumed_pruned, sa.wipeouts),
            (s.domain_tightenings, s.subsumed_pruned, s.wipeouts),
            "domain counters diverged between agenda and planned at round {round}"
        );
        for (t, net) in THREAD_SWEEP.iter().zip(planned.iter()) {
            assert_eq!(
                net.subsumed_count(),
                agenda.subsumed_count(),
                "subsumption marks diverged at round {round} threads {t}"
            );
        }
        total_tightenings += s.domain_tightenings;
        total_pruned += s.subsumed_pruned;
        total_wipeouts += s.wipeouts;
        total_compiles += s.plan_compiles;
        total_hits += s.plan_cache_hits;
        total_invalidations += s.plan_cache_invalidations;
        total_marks += agenda.subsumed_count() as u64;
        saw_uncompilable |= planned[0]
            .variables()
            .any(|v| planned[0].plan_status(v) == PlanStatus::Uncompilable);
        assert_eq!(sa.plan_compiles, 0, "agenda twin must never plan");
        assert_eq!(sa.plan_cache_hits, 0);
    }

    // The workload must actually exercise every interesting regime.
    assert!(
        total_tightenings > 0,
        "no propagator ever narrowed a domain"
    );
    assert!(total_pruned > 0, "no subsumed constraint was ever pruned");
    assert!(total_wipeouts > 0, "no batch ever wiped out a domain");
    assert!(total_marks > 0, "no constraint ever proved itself entailed");
    assert!(total_compiles > 0, "no plan was ever compiled");
    assert!(total_hits > 0, "no set was ever served from the cache");
    assert!(
        total_invalidations > 0,
        "structural edits never invalidated a cached plan"
    );
    assert!(total_violations > 0, "tripwires never fired — too loose");
    assert!(
        saw_uncompilable,
        "no multi-writer cone was ever refused — domain mix too tame"
    );
}
