//! Plan-cached propagation must be allocation-free in steady state: after
//! the plan is compiled and the epoch-mark tables have grown to the
//! network's size, replaying the plan touches no heap — flat step walk,
//! flat visited list, no queues, no hashing.
//!
//! This file holds exactly ONE `#[test]`. The counting allocator is
//! process-global, and the default test runner is multi-threaded — a
//! second test in this binary would race its allocations into our window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use stem_core::kinds::{Equality, Functional};
use stem_core::{Justification, Network, PlanStatus, Value};

struct CountingAlloc;

static COUNTING: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn count_allocs(f: impl FnOnce()) -> u64 {
    ALLOCS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    f();
    COUNTING.store(false, Ordering::SeqCst);
    ALLOCS.load(Ordering::SeqCst)
}

/// The counter is process-global, so a stray allocation from the libtest
/// harness thread (timers, channel wakeups) can land inside the measured
/// window under load. A genuinely allocating replay fails every attempt;
/// external noise does not, so requiring one clean run out of three keeps
/// the zero-allocation pin exact without flaking.
fn assert_allocation_free(label: &str, mut f: impl FnMut()) {
    let mut last = 0;
    for _ in 0..3 {
        last = count_allocs(&mut f);
        if last == 0 {
            return;
        }
    }
    panic!("{label} allocated {last} times in three consecutive runs");
}

#[test]
fn planned_replay_is_allocation_free() {
    // Dense-fanout plannable cone: one hub equality-linked to 32 spokes,
    // the spokes feeding a scheduled sum — the exact shape the plan cache
    // is built to accelerate (every hub set rewrites the whole cone).
    let mut net = Network::new();
    let hub = net.add_variable("hub");
    let spokes: Vec<_> = (0..32).map(|i| net.add_variable(format!("s{i}"))).collect();
    let mut eq_args = vec![hub];
    eq_args.extend(&spokes);
    net.add_constraint(Equality::new(), eq_args).unwrap();
    let total = net.add_variable("total");
    let mut sum_args = spokes.clone();
    sum_args.push(total);
    net.add_constraint(Functional::uni_addition(), sum_args)
        .unwrap();

    // Warm up: the first set compiles the plan; a few replays size the
    // pooled PropState (visited list, mark tables) to this cone.
    for i in 0..8 {
        net.set(hub, Value::Int(i), Justification::User).unwrap();
    }
    assert!(matches!(net.plan_status(hub), PlanStatus::Ready { .. }));
    let warm_hits = net.stats().plan_cache_hits;

    // Steady state: plan replay must not touch the heap at all.
    let mut i = 8;
    assert_allocation_free("steady-state planned replay", || {
        for _ in 0..32 {
            net.set(hub, Value::Int(i), Justification::User).unwrap();
            i += 1;
        }
    });
    assert!(
        net.stats().plan_cache_hits - warm_hits >= 32,
        "every measured set must have been served by the cached plan"
    );

    // Journaled planned replays recycle the pooled journal the same way.
    net.begin_journal();
    net.set(hub, Value::Int(100), Justification::User).unwrap();
    net.rollback_journal();
    let mut i = 0;
    assert_allocation_free("steady-state journaled planned replay", || {
        for _ in 0..8 {
            net.begin_journal();
            net.set(hub, Value::Int(200 + i), Justification::User)
                .unwrap();
            net.rollback_journal();
            i += 1;
        }
    });
}
