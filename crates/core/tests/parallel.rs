//! Parallel plan replay: cone-partitioned execution must be
//! byte-identical to the sequential planned path (which is itself
//! differentially checked against the agenda interpreter) at every
//! thread count — values, justifications, violations, handler calls and
//! the core statistics block. These tests pin down the partition
//! admission rules (size threshold, single component, kernel-less
//! kinds), the abort-and-fallback paths (violations, overwrite
//! denials), partition invalidation under structural edits, and the
//! overlapped-batch path of `Network::set_all`.

use std::cell::RefCell;
use std::rc::Rc;

use stem_core::kinds::{Equality, Functional, Predicate};
use stem_core::{Justification, Network, Value, VarId};

/// Canonical rendering of the full observable state.
fn dump(net: &Network) -> String {
    net.variables()
        .map(|v| {
            format!(
                "{}={:?}/{:?};",
                net.var_name(v),
                net.value(v),
                net.justification(v)
            )
        })
        .collect()
}

/// `cones` independent cones hanging off one root: `src —eq→ head_i`,
/// `head_i —eq→ m_i_j` (`fan` mirrors), and a sum over the mirrors into
/// `out_i`. Every pair of cones is variable-disjoint except for `src`,
/// so the partitioner must find exactly `cones` components.
fn fanout(net: &mut Network, tag: &str, cones: usize, fan: usize) -> (VarId, Vec<VarId>) {
    let src = net.add_variable(format!("{tag}src"));
    let mut outs = Vec::new();
    for i in 0..cones {
        let head = net.add_variable(format!("{tag}h{i}"));
        net.add_constraint(Equality::new(), [src, head]).unwrap();
        let mut args = Vec::with_capacity(fan + 1);
        for j in 0..fan {
            let m = net.add_variable(format!("{tag}m{i}_{j}"));
            net.add_constraint(Equality::new(), [head, m]).unwrap();
            args.push(m);
        }
        let out = net.add_variable(format!("{tag}o{i}"));
        args.push(out);
        net.add_constraint(Functional::uni_addition(), args)
            .unwrap();
        outs.push(out);
    }
    (src, outs)
}

fn parallel_net(threads: usize, cones: usize, fan: usize) -> (Network, VarId, Vec<VarId>) {
    let mut net = Network::new();
    net.set_parallel_threads(threads);
    net.set_parallel_min_steps(1);
    let (src, outs) = fanout(&mut net, "", cones, fan);
    (net, src, outs)
}

#[test]
fn replay_is_byte_identical_across_thread_counts() {
    let mut reference: Option<(String, String)> = None;
    for threads in [1usize, 2, 4, 8] {
        let (mut net, src, outs) = parallel_net(threads, 8, 6);
        for round in 0..5i64 {
            net.set(src, Value::Int(round + 3), Justification::User)
                .unwrap();
        }
        assert_eq!(net.value(outs[3]), &Value::Int(7 * 6));
        if threads > 1 {
            assert_eq!(net.plan_parallel_cones(src), Some(8));
            let ps = net.par_stats();
            // First set compiles then replays in parallel; so do the rest.
            assert_eq!(ps.plan_replays_parallel, 5);
            assert_eq!(ps.cones_executed, 5 * 8);
            assert_eq!(ps.parallel_fallbacks, 0);
        } else {
            assert_eq!(net.plan_parallel_cones(src), None);
            assert_eq!(net.par_stats(), stem_core::ParStats::default());
        }
        let state = (dump(&net), format!("{:?}", net.stats()));
        match &reference {
            None => reference = Some(state),
            Some(r) => assert_eq!(r, &state, "diverged at {threads} threads"),
        }
    }
}

#[test]
fn below_threshold_plans_fall_back_to_sequential() {
    let mut net = Network::new();
    net.set_parallel_threads(8);
    // Default threshold: 8 cones × (1 + 4 + 1) = 48 executing steps < 256.
    assert_eq!(net.parallel_min_steps(), 256);
    let (src, _) = fanout(&mut net, "", 8, 4);
    net.set(src, Value::Int(2), Justification::User).unwrap();
    net.set(src, Value::Int(3), Justification::User).unwrap();
    assert_eq!(net.plan_parallel_cones(src), None);
    let ps = net.par_stats();
    assert_eq!(ps.plan_replays_parallel, 0);
    assert_eq!(ps.parallel_fallbacks, 2);
}

#[test]
fn single_component_plans_fall_back_to_sequential() {
    let mut net = Network::new();
    net.set_parallel_threads(4);
    net.set_parallel_min_steps(1);
    // One equality chain: every step shares a variable with the next, so
    // there is exactly one cone and nothing to overlap.
    let vars: Vec<_> = (0..6).map(|i| net.add_variable(format!("c{i}"))).collect();
    for w in vars.windows(2) {
        net.add_constraint(Equality::new(), [w[0], w[1]]).unwrap();
    }
    net.set(vars[0], Value::Int(9), Justification::User)
        .unwrap();
    assert_eq!(net.value(vars[5]), &Value::Int(9));
    assert_eq!(net.plan_parallel_cones(vars[0]), None);
    assert_eq!(net.par_stats().parallel_fallbacks, 1);
}

#[test]
fn kernel_less_kinds_fall_back_to_sequential() {
    let mut net = Network::new();
    net.set_parallel_threads(4);
    net.set_parallel_min_steps(1);
    let (src, _) = fanout(&mut net, "", 4, 3);
    // A custom functional has no off-thread kernel (its closure is not
    // Sync), so the whole plan must refuse to partition...
    let a = net.add_variable("ca");
    let b = net.add_variable("cb");
    net.add_constraint(Equality::new(), [src, a]).unwrap();
    net.add_constraint(
        Functional::custom("triple", |vals| vals[0].numeric_add(&Value::Int(0))),
        [a, b],
    )
    .unwrap();
    net.set(src, Value::Int(5), Justification::User).unwrap();
    // ...while still computing the right values on the sequential path.
    assert_eq!(net.value(b), &Value::Int(5));
    assert_eq!(net.plan_parallel_cones(src), None);
    assert_eq!(net.par_stats().plan_replays_parallel, 0);
    assert_eq!(net.par_stats().parallel_fallbacks, 1);
}

#[test]
fn violation_aborts_parallel_attempt_and_matches_sequential() {
    let run = |threads: usize| {
        let (mut net, src, outs) = parallel_net(threads, 8, 6);
        // Tripwire deep inside cone 5: src > 4 pushes out_5 = 6·src > 24.
        net.add_constraint(Predicate::le_const(Value::Int(24)), [outs[5]])
            .unwrap();
        let handled: Rc<RefCell<Vec<String>>> = Rc::new(RefCell::new(Vec::new()));
        let sink = Rc::clone(&handled);
        net.add_violation_handler(move |_, v| sink.borrow_mut().push(format!("{v:?}")));
        net.set(src, Value::Int(3), Justification::User).unwrap();
        let err = net
            .set(src, Value::Int(9), Justification::User)
            .unwrap_err();
        // Violation restored the pre-set state.
        assert_eq!(net.value(outs[5]), &Value::Int(18));
        let handler_log = handled.borrow().clone();
        (
            dump(&net),
            format!("{err:?}"),
            format!("{:?}", net.stats()),
            handler_log,
        )
    };
    let sequential = run(1);
    for threads in [2, 8] {
        assert_eq!(run(threads), sequential, "diverged at {threads} threads");
    }
    // The parallel attempt itself must have aborted into the fallback.
    let (mut net, src, outs) = parallel_net(8, 8, 6);
    net.add_constraint(Predicate::le_const(Value::Int(24)), [outs[5]])
        .unwrap();
    net.set(src, Value::Int(3), Justification::User).unwrap();
    net.set(src, Value::Int(9), Justification::User)
        .unwrap_err();
    let ps = net.par_stats();
    assert_eq!(ps.plan_replays_parallel, 1);
    assert_eq!(ps.parallel_fallbacks, 1);
}

#[test]
fn overwrite_denial_aborts_parallel_attempt_and_matches_sequential() {
    let run = |threads: usize| {
        let (mut net, src, _) = parallel_net(threads, 8, 6);
        net.set(src, Value::Int(3), Justification::User).unwrap();
        // Pin a mirror by user fiat; the next replay's copy into it must
        // be denied (user values outrank propagation) and the whole set
        // must restore.
        let pin = net
            .variables()
            .find(|&v| net.var_name(v) == "m2_4")
            .unwrap();
        net.set(pin, Value::Int(3), Justification::User).unwrap();
        let err = net
            .set(src, Value::Int(7), Justification::User)
            .unwrap_err();
        (dump(&net), format!("{err:?}"), format!("{:?}", net.stats()))
    };
    let sequential = run(1);
    for threads in [2, 8] {
        assert_eq!(run(threads), sequential, "diverged at {threads} threads");
    }
}

#[test]
fn structural_edit_invalidates_partition_with_plan() {
    let (mut net, src, _) = parallel_net(4, 8, 4);
    net.set(src, Value::Int(1), Justification::User).unwrap();
    assert_eq!(net.plan_parallel_cones(src), Some(8));
    // The edit touches `src`, which is in the plan's footprint: the
    // subscription index must evict the stale cone tables eagerly.
    let extra = net.add_variable("extra");
    net.add_constraint(Equality::new(), [src, extra]).unwrap();
    assert_eq!(net.plan_parallel_cones(src), None);
    // The next set recompiles — now with nine cones.
    net.set(src, Value::Int(2), Justification::User).unwrap();
    assert_eq!(net.plan_parallel_cones(src), Some(9));
    assert_eq!(net.value(extra), &Value::Int(2));
}

#[test]
fn set_all_overlaps_disjoint_roots_and_matches_sequential() {
    let build = |threads: usize| {
        let mut net = Network::new();
        net.set_parallel_threads(threads);
        net.set_parallel_min_steps(1);
        let (a, _) = fanout(&mut net, "a", 3, 4);
        let (b, _) = fanout(&mut net, "b", 3, 4);
        let (c, _) = fanout(&mut net, "c", 3, 4);
        (net, a, b, c)
    };
    let (mut seq, a, b, c) = build(1);
    for (v, x) in [(a, 10), (b, 20), (c, 30), (a, 11)] {
        seq.set(v, Value::Int(x), Justification::User).unwrap();
    }
    let (mut par, a, b, c) = build(8);
    // Warm the plans so the batch path sees ready partitions.
    for v in [a, b, c] {
        par.set(v, Value::Int(1), Justification::User).unwrap();
    }
    par.reset_stats();
    par.set_all(vec![
        (a, Value::Int(10), Justification::User),
        (b, Value::Int(20), Justification::User),
        (c, Value::Int(30), Justification::User),
        // Repeated root: not disjoint with the first group, must land
        // after it — last-wins ordering is observable.
        (a, Value::Int(11), Justification::User),
    ])
    .unwrap();
    assert_eq!(dump(&par), dump(&seq));
    let ps = par.par_stats();
    // One overlapped group of three plus one straggler replay.
    assert_eq!(ps.plan_replays_parallel, 4);
    assert_eq!(ps.cones_executed, 4 * 3);
    // The batch's cache hits reconcile with the replay counters.
    assert_eq!(
        par.stats().plan_cache_hits,
        ps.plan_replays_parallel + ps.parallel_fallbacks
    );
}

#[test]
fn set_all_reports_the_failing_index_and_keeps_the_prefix() {
    let (mut net, src, outs) = parallel_net(4, 4, 4);
    net.add_constraint(Predicate::le_const(Value::Int(40)), [outs[0]])
        .unwrap();
    let lone = net.add_variable("lone");
    let err = net
        .set_all(vec![
            (lone, Value::Int(5), Justification::User),
            (src, Value::Int(100), Justification::User), // 4·100 > 40
            (lone, Value::Int(6), Justification::User),
        ])
        .unwrap_err();
    assert_eq!(err.0, 1);
    // The prefix committed; the violating set restored; the tail never ran.
    assert_eq!(net.value(lone), &Value::Int(5));
    assert!(net.value(src).is_nil());
}

#[test]
fn set_all_without_parallelism_is_a_plain_loop() {
    let mut net = Network::new();
    let (src, outs) = fanout(&mut net, "", 2, 3);
    net.set_all(vec![(src, Value::Int(4), Justification::User)])
        .unwrap();
    assert_eq!(net.value(outs[1]), &Value::Int(12));
    assert_eq!(net.par_stats(), stem_core::ParStats::default());
}

#[test]
fn repeated_runs_are_deterministic() {
    let run = || {
        let (mut net, src, _) = parallel_net(8, 8, 8);
        for round in 0..10i64 {
            net.set(src, Value::Int(round), Justification::User)
                .unwrap();
        }
        (
            dump(&net),
            format!("{:?} {:?}", net.stats(), net.par_stats()),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn wavefront_pipelines_single_giant_cone_and_matches_sequential() {
    // One connected cone: src —eq→ head, head —eq→ 12 mirrors, sum into
    // out. PR 7's partitioner found a single component here and fell
    // back; the wavefront path must levelize it (mirrors form one wide
    // layer) and stay byte-identical at every thread count.
    let mut reference: Option<(String, String)> = None;
    for threads in [1usize, 2, 4, 8] {
        let mut net = Network::new();
        net.set_parallel_threads(threads);
        net.set_parallel_min_steps(1);
        net.set_parallel_cone_min_steps(1); // force real pool dispatch
        let (src, outs) = fanout(&mut net, "", 1, 12);
        for round in 0..5i64 {
            net.set(src, Value::Int(round + 2), Justification::User)
                .unwrap();
        }
        assert_eq!(net.value(outs[0]), &Value::Int(6 * 12));
        if threads > 1 {
            assert_eq!(net.plan_parallel_cones(src), Some(1), "one wave cone");
            let detail = net.plan_par_detail(src).unwrap();
            assert_eq!(detail.cones, 1);
            assert!(detail.layers >= 2, "mirrors form a later layer");
            assert_eq!(detail.max_task_exec, 12, "widest layer: the mirrors");
            let ps = net.par_stats();
            assert_eq!(ps.plan_replays_parallel, 5);
            assert_eq!(ps.plan_replays_wavefront, 5);
            assert_eq!(ps.cones_executed, 5);
            assert_eq!(ps.parallel_fallbacks, 0);
        } else {
            assert_eq!(net.plan_parallel_cones(src), None);
        }
        let state = (dump(&net), format!("{:?}", net.stats()));
        match &reference {
            None => reference = Some(state),
            Some(r) => assert_eq!(r, &state, "diverged at {threads} threads"),
        }
    }
}

#[test]
fn wavefront_violation_aborts_and_matches_sequential() {
    let run = |threads: usize| {
        let mut net = Network::new();
        net.set_parallel_threads(threads);
        net.set_parallel_min_steps(1);
        net.set_parallel_cone_min_steps(1);
        let (src, outs) = fanout(&mut net, "", 1, 10);
        net.add_constraint(Predicate::le_const(Value::Int(40)), [outs[0]])
            .unwrap();
        net.set(src, Value::Int(3), Justification::User).unwrap();
        let err = net
            .set(src, Value::Int(9), Justification::User) // 9·10 > 40
            .unwrap_err();
        assert_eq!(net.value(outs[0]), &Value::Int(30), "restored");
        (dump(&net), format!("{err:?}"), format!("{:?}", net.stats()))
    };
    let sequential = run(1);
    for threads in [2, 8] {
        assert_eq!(run(threads), sequential, "diverged at {threads} threads");
    }
}

#[test]
fn stealing_pool_replay_is_deterministic_modulo_steal_count() {
    // With the per-task floor lowered, replays really cross the pool, so
    // thieves can claim cones. Everything observable must still be
    // byte-identical run to run; only `cones_stolen` (and the
    // per-plan `last_stolen` diagnostic) may vary with the schedule.
    let run = || {
        let (mut net, src, _) = parallel_net(8, 8, 8);
        net.set_parallel_cone_min_steps(1);
        for round in 0..10i64 {
            net.set(src, Value::Int(round), Justification::User)
                .unwrap();
        }
        let mut ps = net.par_stats();
        ps.cones_stolen = 0;
        (dump(&net), format!("{:?} {ps:?}", net.stats()))
    };
    assert_eq!(run(), run());
}

#[test]
fn disjoint_structural_edit_keeps_unrelated_plans() {
    let mut net = Network::new();
    net.set_parallel_threads(4);
    net.set_parallel_min_steps(1);
    let (a, _) = fanout(&mut net, "a", 4, 4);
    let (b, _) = fanout(&mut net, "b", 4, 4);
    net.set(a, Value::Int(1), Justification::User).unwrap();
    net.set(b, Value::Int(2), Justification::User).unwrap();
    let compiles_before = net.stats().plan_compiles;
    // Edit inside b's cone only: a's plan footprint is disjoint, so it
    // must survive — this is the O(touched) invalidation contract.
    let extra = net.add_variable("extra");
    net.add_constraint(Equality::new(), [b, extra]).unwrap();
    assert_eq!(net.plan_parallel_cones(a), Some(4), "a's plan survives");
    assert_eq!(net.plan_parallel_cones(b), None, "b's plan evicted");
    assert_eq!(net.stats().plan_cache_invalidations, 1);
    net.set(a, Value::Int(3), Justification::User).unwrap();
    assert_eq!(
        net.stats().plan_compiles,
        compiles_before,
        "replaying a recompiled nothing"
    );
    net.set(b, Value::Int(4), Justification::User).unwrap();
    assert_eq!(
        net.value(extra),
        &Value::Int(4),
        "b recompiled with the edge"
    );
    assert_eq!(net.stats().plan_compiles, compiles_before + 1);
}

#[test]
fn thread_knob_clamps_and_drops_plans() {
    let mut net = Network::new();
    net.set_parallel_threads(0);
    assert_eq!(net.parallel_threads(), 1);
    net.set_parallel_min_steps(1);
    let (src, _) = fanout(&mut net, "", 4, 4);
    net.set(src, Value::Int(1), Justification::User).unwrap();
    // Sequential run cached a partition-less plan; raising the budget
    // must drop it so the next set compiles cone tables.
    net.set_parallel_threads(4);
    net.set(src, Value::Int(2), Justification::User).unwrap();
    assert_eq!(net.plan_parallel_cones(src), Some(4));
    assert_eq!(net.stats().plan_compiles, 2);
}
