//! Tests for the thesis's §9.3 future-work features implemented as
//! extensions: per-constraint enable/disable, the relaxed N-value-change
//! rule (§9.2.3), and compiled network evaluation.

use stem_core::kinds::{Equality, Functional, Predicate};
use stem_core::{compile_functional, Justification, Network, Value, ViolationKind};

#[test]
fn individual_constraint_disable_and_reenable() {
    let mut net = Network::new();
    let a = net.add_variable("a");
    let b = net.add_variable("b");
    let eq = net.add_constraint(Equality::new(), [a, b]).unwrap();

    net.set_constraint_enabled(eq, false);
    assert!(!net.is_constraint_enabled(eq));
    net.set(a, Value::Int(1), Justification::User).unwrap();
    assert!(
        net.value(b).is_nil(),
        "disabled constraint does not propagate"
    );
    assert!(net.is_satisfied(eq), "disabled constraint does not check");
    assert!(net.check_all().is_empty());

    net.set_constraint_enabled(eq, true);
    net.set(a, Value::Int(2), Justification::User).unwrap();
    assert_eq!(net.value(b), &Value::Int(2), "re-enabled constraint works");
}

#[test]
fn disable_by_kind_name() {
    let mut net = Network::new();
    let a = net.add_variable("a");
    let b = net.add_variable("b");
    let c = net.add_variable("c");
    net.add_constraint(Equality::new(), [a, b]).unwrap();
    net.add_constraint(Equality::new(), [b, c]).unwrap();
    net.add_constraint(Predicate::le_const(Value::Int(10)), [c])
        .unwrap();

    assert_eq!(net.set_kind_enabled("equality", false), 2);
    net.set(a, Value::Int(99), Justification::User).unwrap();
    assert!(net.value(b).is_nil());
    // The predicate kind is still live.
    assert!(net.set(c, Value::Int(11), Justification::User).is_err());
    assert_eq!(net.set_kind_enabled("equality", true), 2);
}

/// §9.2.3's reconvergent fanout problem: with immediate constraints, a
/// reconvergence point may legitimately change twice in one cycle —
/// spuriously violating under the one-value-change rule, fixed by the
/// suggested N-change relaxation.
#[test]
fn reconvergent_fanout_needs_relaxed_change_rule() {
    let build = || {
        let mut net = Network::new();
        let src = net.add_variable("src");
        let a = net.add_variable("a");
        let b = net.add_variable("b");
        let s = net.add_variable("s");
        let plus = |k: i64| stem_bench_free_plus(k);
        net.add_constraint(plus(1), [src, a]).unwrap();
        net.add_constraint(plus(2), [src, b]).unwrap();
        net.add_constraint(ImmediateSum2, [a, b, s]).unwrap();
        (net, src, s)
    };

    // Prime a consistent state so the reconvergence point holds a value.
    let (mut net, src, s) = build();
    net.set(src, Value::Int(1), Justification::User).unwrap();
    assert_eq!(net.value(s), &Value::Int(5), "2 + 3");

    // Under the default limit the second transient change of `s` violates.
    let err = net
        .set(src, Value::Int(10), Justification::User)
        .unwrap_err();
    assert_eq!(err.kind, ViolationKind::Revisit);
    assert_eq!(net.value(s), &Value::Int(5), "restored");

    // Relaxing to two changes per cycle lets the fanout reconverge.
    net.set_value_change_limit(2);
    net.set(src, Value::Int(10), Justification::User).unwrap();
    assert_eq!(net.value(s), &Value::Int(23), "11 + 12");
}

/// An immediate (unscheduled) eager sum, used to expose the transient.
#[derive(Debug, Clone, Copy)]
struct ImmediateSum2;

impl stem_core::ConstraintKind for ImmediateSum2 {
    fn kind_name(&self) -> &str {
        "immediateSum"
    }

    fn should_activate(
        &self,
        net: &Network,
        cid: stem_core::ConstraintId,
        changed: stem_core::VarId,
    ) -> bool {
        net.args(cid).last() != Some(&changed)
    }

    fn infer(
        &self,
        net: &mut Network,
        cid: stem_core::ConstraintId,
        _changed: Option<stem_core::VarId>,
    ) -> Result<(), stem_core::Violation> {
        let args = net.args(cid).to_vec();
        let Some((&result, inputs)) = args.split_last() else {
            return Ok(());
        };
        let mut acc = Value::Int(0);
        for &v in inputs {
            let val = net.value(v);
            if val.is_nil() {
                return Ok(());
            }
            acc = acc.numeric_add(val).expect("numeric");
        }
        net.propagate_set(result, acc, cid, stem_core::DependencyRecord::All)?;
        Ok(())
    }

    fn outputs(&self, net: &Network, cid: stem_core::ConstraintId) -> Vec<stem_core::VarId> {
        net.args(cid).last().copied().into_iter().collect()
    }

    fn is_satisfied(&self, _net: &Network, _cid: stem_core::ConstraintId) -> bool {
        true
    }
}

fn stem_bench_free_plus(k: i64) -> Functional {
    Functional::custom("plusConst", move |vals| {
        vals[0].as_i64().map(|x| Value::Int(x + k))
    })
}

#[test]
fn relaxed_rule_still_terminates_on_true_cycles() {
    let mut net = Network::new();
    net.set_value_change_limit(3);
    let a = net.add_variable("a");
    let b = net.add_variable("b");
    net.add_constraint(stem_bench_free_plus(1), [a, b]).unwrap();
    net.add_constraint(stem_bench_free_plus(1), [b, a]).unwrap();
    let err = net.set(a, Value::Int(0), Justification::User).unwrap_err();
    assert_eq!(err.kind, ViolationKind::Revisit);
    assert!(net.value(a).is_nil() && net.value(b).is_nil(), "restored");
}

#[test]
fn externally_set_root_is_never_overwritten_even_when_relaxed() {
    let mut net = Network::new();
    net.set_value_change_limit(5);
    let a = net.add_variable("a");
    let b = net.add_variable("b");
    net.add_constraint(stem_bench_free_plus(1), [a, b]).unwrap();
    net.add_constraint(stem_bench_free_plus(1), [b, a]).unwrap();
    let err = net.set(a, Value::Int(0), Justification::User).unwrap_err();
    // The cycle wraps back to `a` immediately: the user's value is pinned.
    assert_eq!(err.variable, Some(a));
    assert_eq!(err.rejected, Some(Value::Int(2)));
}

#[test]
fn compiled_plan_bulk_evaluation() {
    // Bulk data entry with propagation off, then one compiled pass — the
    // §9.3 efficiency pattern.
    let mut net = Network::new();
    let xs: Vec<_> = (0..10).map(|i| net.add_variable(format!("x{i}"))).collect();
    let mut sums = Vec::new();
    let mut prev = xs[0];
    for &x in &xs[1..] {
        let s = net.add_variable("s");
        net.add_constraint(Functional::uni_addition(), [prev, x, s])
            .unwrap();
        sums.push(s);
        prev = s;
    }
    let plan = compile_functional(&net).unwrap();
    assert_eq!(plan.n_directional, 9);

    net.set_propagation_enabled(false);
    for (i, &x) in xs.iter().enumerate() {
        net.set(x, Value::Int(i as i64 + 1), Justification::User)
            .unwrap();
    }
    net.set_propagation_enabled(true);
    plan.evaluate(&mut net).unwrap();
    assert_eq!(net.value(*sums.last().unwrap()), &Value::Int(55));
}

#[test]
fn compiled_plan_detects_violations_and_restores() {
    let mut net = Network::new();
    let a = net.add_variable("a");
    let b = net.add_variable("b");
    let s = net.add_variable("s");
    net.add_constraint(Functional::uni_addition(), [a, b, s])
        .unwrap();
    net.add_constraint(Predicate::le_const(Value::Int(10)), [s])
        .unwrap();
    let plan = compile_functional(&net).unwrap();

    net.set_propagation_enabled(false);
    net.set(a, Value::Int(6), Justification::User).unwrap();
    net.set(b, Value::Int(7), Justification::User).unwrap();
    net.set_propagation_enabled(true);
    let err = plan.evaluate(&mut net).unwrap_err();
    assert_eq!(err.kind, ViolationKind::Unsatisfied);
    assert!(net.value(s).is_nil(), "inferred sum rolled back");

    // With feasible inputs the same plan succeeds.
    net.set_propagation_enabled(false);
    net.set(b, Value::Int(3), Justification::User).unwrap();
    net.set_propagation_enabled(true);
    plan.evaluate(&mut net).unwrap();
    assert_eq!(net.value(s), &Value::Int(9));
}

#[test]
fn compiled_plan_is_stale_safe_after_removal() {
    // A removed constraint in the plan is skipped silently.
    let mut net = Network::new();
    let a = net.add_variable("a");
    let s = net.add_variable("s");
    let cid = net
        .add_constraint(Functional::uni_addition(), [a, s])
        .unwrap();
    let plan = compile_functional(&net).unwrap();
    net.remove_constraint(cid);
    net.set_propagation_enabled(false);
    net.set(a, Value::Int(1), Justification::User).unwrap();
    net.set_propagation_enabled(true);
    plan.evaluate(&mut net).unwrap();
    assert!(net.value(s).is_nil(), "removed constraint did not fire");
}

#[test]
fn snapshot_restores_exact_state() {
    let mut net = Network::new();
    let a = net.add_variable("a");
    let b = net.add_variable("b");
    net.add_constraint(Equality::new(), [a, b]).unwrap();
    net.set(a, Value::Int(1), Justification::User).unwrap();
    let snap = net.snapshot();
    assert_eq!(snap.len(), 2);
    assert!(!snap.is_empty());

    net.set(a, Value::Int(9), Justification::User).unwrap();
    assert_eq!(net.value(b), &Value::Int(9));
    net.restore_snapshot(&snap);
    assert_eq!(net.value(a), &Value::Int(1));
    assert_eq!(net.value(b), &Value::Int(1));
    assert!(net.justification(a).is_user());
    assert!(net.justification(b).is_propagated());
    assert!(net.check_all().is_empty());
}

#[test]
fn snapshot_tolerates_later_variables() {
    let mut net = Network::new();
    let a = net.add_variable("a");
    net.set(a, Value::Int(1), Justification::User).unwrap();
    let snap = net.snapshot();
    let b = net.add_variable("b");
    net.set(b, Value::Int(2), Justification::User).unwrap();
    net.restore_snapshot(&snap);
    assert_eq!(net.value(a), &Value::Int(1));
    assert_eq!(net.value(b), &Value::Int(2), "new variable untouched");
}

/// §4.2.1: "propagation can be made more efficient by assigning higher
/// priorities to critical constraint types" — a custom kind on a
/// high-priority agenda drains before the default functional agenda.
#[test]
fn custom_agenda_priorities_order_execution() {
    use std::cell::RefCell;
    use std::rc::Rc;
    use stem_core::{Activation, ConstraintId, ConstraintKind, DependencyRecord, VarId, Violation};

    #[derive(Debug)]
    struct Logger {
        name: &'static str,
        agenda: &'static str,
        log: Rc<RefCell<Vec<&'static str>>>,
    }

    impl ConstraintKind for Logger {
        fn kind_name(&self) -> &str {
            self.name
        }
        fn activation(&self) -> Activation {
            Activation::Scheduled(self.agenda)
        }
        fn infer(
            &self,
            _net: &mut Network,
            _cid: ConstraintId,
            _changed: Option<VarId>,
        ) -> Result<(), Violation> {
            self.log.borrow_mut().push(self.name);
            Ok(())
        }
        fn is_satisfied(&self, _net: &Network, _cid: ConstraintId) -> bool {
            true
        }
        fn depends_on(
            &self,
            _net: &Network,
            _cid: ConstraintId,
            record: &DependencyRecord,
            arg: VarId,
        ) -> bool {
            record.default_membership(arg)
        }
    }

    let mut net = Network::new();
    net.define_agenda("critical", 100);
    net.define_agenda("background", -100);
    let log: Rc<RefCell<Vec<&'static str>>> = Rc::new(RefCell::new(Vec::new()));
    let v = net.add_variable("v");
    // Wire in low-priority order; execution must follow priorities.
    net.add_constraint(
        Logger {
            name: "bg",
            agenda: "background",
            log: log.clone(),
        },
        [v],
    )
    .unwrap();
    net.add_constraint(
        Logger {
            name: "crit",
            agenda: "critical",
            log: log.clone(),
        },
        [v],
    )
    .unwrap();
    log.borrow_mut().clear();
    net.set(v, Value::Int(1), Justification::User).unwrap();
    assert_eq!(&*log.borrow(), &["crit", "bg"]);
}

/// §4.2.4's suggested (and there unimplemented) refinement, built here:
/// "variables can recognize different strengths of constraints, and allow
/// one type of constraints to overwrite values from another type of
/// constraints, but not the other way around."
#[test]
fn constraint_strengths_order_overwrites() {
    use stem_core::{ConstraintId, ConstraintKind, DependencyRecord, VarId, Violation};

    #[derive(Debug)]
    struct Writer {
        name: &'static str,
        strength: u8,
        value: i64,
    }

    impl ConstraintKind for Writer {
        fn kind_name(&self) -> &str {
            self.name
        }
        fn strength(&self) -> u8 {
            self.strength
        }
        fn should_activate(
            &self,
            net: &Network,
            cid: ConstraintId,
            changed: stem_core::VarId,
        ) -> bool {
            net.args(cid).last() != Some(&changed)
        }
        fn infer(
            &self,
            net: &mut Network,
            cid: ConstraintId,
            _changed: Option<VarId>,
        ) -> Result<(), Violation> {
            let target = *net.args(cid).last().expect("has target");
            net.propagate_set(target, Value::Int(self.value), cid, DependencyRecord::All)?;
            Ok(())
        }
        fn is_satisfied(&self, _net: &Network, _cid: ConstraintId) -> bool {
            true // advisory writers; precedence is the point
        }
        fn outputs(&self, net: &Network, cid: ConstraintId) -> Vec<VarId> {
            net.args(cid).last().copied().into_iter().collect()
        }
    }

    // Weak writer fires first (wired first), strong second: strong wins.
    let mut net = Network::new();
    let trigger = net.add_variable("trigger");
    let target = net.add_variable("target");
    net.add_constraint(
        Writer {
            name: "weak",
            strength: 1,
            value: 10,
        },
        [trigger, target],
    )
    .unwrap();
    net.add_constraint(
        Writer {
            name: "strong",
            strength: 5,
            value: 20,
        },
        [trigger, target],
    )
    .unwrap();
    net.set_value_change_limit(2); // let the stronger writer supersede
    net.set(trigger, Value::Int(1), Justification::User)
        .unwrap();
    assert_eq!(net.value(target), &Value::Int(20), "strong overwrote weak");

    // Reverse wiring order: strong fires first; the weak write is
    // silently ignored by the default strength rule.
    let mut net = Network::new();
    let trigger = net.add_variable("trigger");
    let target = net.add_variable("target");
    net.add_constraint(
        Writer {
            name: "strong",
            strength: 5,
            value: 20,
        },
        [trigger, target],
    )
    .unwrap();
    net.add_constraint(
        Writer {
            name: "weak",
            strength: 1,
            value: 10,
        },
        [trigger, target],
    )
    .unwrap();
    net.set_value_change_limit(2);
    net.set(trigger, Value::Int(1), Justification::User)
        .unwrap();
    assert_eq!(
        net.value(target),
        &Value::Int(20),
        "weak could not downgrade"
    );
}

/// Equal-strength propagation keeps the historical behaviour: a later
/// same-strength writer may overwrite an earlier one (subject to the
/// change budget), so all pre-strength code is unaffected.
#[test]
fn equal_strength_preserves_default_behaviour() {
    let mut net = Network::new();
    let a = net.add_variable("a");
    let b = net.add_variable("b");
    let c = net.add_variable("c");
    // One-directional writers of equal (default) strength.
    let copy = || Functional::custom("copy", |vals| Some(vals[0].clone()));
    net.add_constraint(copy(), [a, c]).unwrap();
    net.add_constraint(copy(), [b, c]).unwrap();
    net.set(a, Value::Int(1), Justification::User).unwrap();
    assert_eq!(net.value(c), &Value::Int(1));
    // The second source's propagation is *allowed* by the strength rule
    // (equal strength); the stale first functional then objects in the
    // final sweep — exactly the pre-strength behaviour for conflicting
    // same-strength sources.
    let err = net.set(b, Value::Int(2), Justification::User).unwrap_err();
    assert_eq!(err.kind, ViolationKind::Unsatisfied);
    // Consistent same-strength updates flow through fine.
    net.set(b, Value::Int(1), Justification::User).unwrap();
    assert_eq!(net.value(c), &Value::Int(1));
}
