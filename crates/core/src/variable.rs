use crate::ids::{ConstraintId, VarId};
use crate::network::Network;
use crate::value::Value;
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;

/// Decision returned by [`VariableKind::overwrite`] when propagation offers
/// a variable a new value that differs from its current one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Overwrite {
    /// Accept the new value.
    Allow,
    /// Keep the current value silently; the final `is_satisfied` sweep will
    /// flag a real conflict (the signal-variable rule of Fig. 7.4).
    Ignore,
    /// Reject with a violation (thesis §4.2.2, case 2: a protected value
    /// disagreeing with a propagated value).
    Deny,
}

/// Behavioural specialisation of variables — the subclassing axis of STEM's
/// `Variable` hierarchy, expressed as a trait.
///
/// The thesis customises variables by subclassing (`SignalVariable`,
/// `PropertyVariable`, `ClassBBox`, …); in Rust each variable carries an
/// `Rc<dyn VariableKind>` that decides overwrite precedence. The default
/// rule (§4.2.4): "user specified values have higher priority over
/// propagated and calculated values".
pub trait VariableKind: fmt::Debug {
    /// Short label for inspection output.
    fn kind_name(&self) -> &str {
        "variable"
    }

    /// Whether propagation by `source` may replace the variable's current
    /// value with `new`. Called only when the values differ and the
    /// variable still has change budget this cycle. The default rule:
    /// user-specified values are protected (§4.2.4), and a propagated
    /// value only yields to a source of equal or greater
    /// [strength](crate::ConstraintKind::strength). One exception: a
    /// domain *refinement* — an interval or finite set narrowing the
    /// variable's current domain of the same representation — is always
    /// accepted, because narrowing a user-set domain is the point of
    /// domain propagation, not a competing claim on the variable.
    fn overwrite(
        &self,
        net: &Network,
        var: VarId,
        new: &Value,
        source: Option<ConstraintId>,
    ) -> Overwrite {
        if crate::domain::refines(net.value(var), new) {
            return Overwrite::Allow;
        }
        match net.justification(var) {
            j if j.is_user() => Overwrite::Deny,
            crate::Justification::Propagated { constraint, .. } => {
                let current_strength = net.constraint_strength(*constraint);
                let new_strength = source
                    .map(|c| net.constraint_strength(c))
                    .unwrap_or(u8::MAX);
                if new_strength >= current_strength {
                    Overwrite::Allow
                } else {
                    Overwrite::Ignore
                }
            }
            _ => Overwrite::Allow,
        }
    }

    /// Whether this kind is [`PlainKind`] (the default behaviour). The
    /// network caches the answer per variable so the hot write path can
    /// run the default overwrite rule statically dispatched — one virtual
    /// call per *variable construction* instead of one per *write*.
    fn is_plain(&self) -> bool {
        false
    }
}

/// The default variable behaviour (plain overwrite rule).
#[derive(Debug, Clone, Copy, Default)]
pub struct PlainKind;

impl VariableKind for PlainKind {
    fn is_plain(&self) -> bool {
        true
    }
}

/// Behaviour for lazily recalculated property variables (thesis Fig. 6.1).
///
/// Property variables hold derived data; update-constraints erase them to
/// `Nil` and [`Network::value_or_recalc`] re-derives them on demand. Unlike
/// plain variables they always accept erasure to `Nil`, even over a
/// user-specified value, because erasure means "out of date", not a
/// competing value.
#[derive(Debug, Clone, Copy, Default)]
pub struct PropertyKind;

impl VariableKind for PropertyKind {
    fn kind_name(&self) -> &str {
        "property"
    }

    fn overwrite(
        &self,
        net: &Network,
        var: VarId,
        new: &Value,
        _source: Option<ConstraintId>,
    ) -> Overwrite {
        if new.is_nil() {
            Overwrite::Allow
        } else if net.justification(var).is_user() {
            Overwrite::Deny
        } else {
            Overwrite::Allow
        }
    }
}

/// Recalculation hook installed on lazy property variables: given the
/// network and the variable, compute and assign a fresh value (typically
/// via [`Network::set`] with [`Justification::Application`]).
pub type RecalcFn = dyn Fn(&mut Network, VarId);

/// Internal storage for one variable object (thesis Fig. 4.1: parent, name,
/// constraints). The value + justification pair (`lastSetBy`) lives in the
/// network's separate slot arena so the parallel replay path can hand worker
/// threads a raw view of just the `Send + Sync` value state.
///
/// Cloning shares the behaviour kind and recalc hook (both immutable) and
/// copies everything else — the basis of [`Network`]'s `Clone`.
#[derive(Clone)]
pub(crate) struct VariableData {
    pub(crate) name: String,
    pub(crate) owner: Option<Arc<str>>,
    pub(crate) constraints: Vec<ConstraintId>,
    pub(crate) kind: Rc<dyn VariableKind>,
    /// Cached [`VariableKind::is_plain`] verdict, letting `propagate_set`
    /// dispatch the default overwrite rule statically.
    pub(crate) plain_kind: bool,
    pub(crate) recalc: Option<Rc<RecalcFn>>,
    /// Guards against infinite recalculation loops (`evalFlag`, Fig. 6.1).
    pub(crate) evaluating: bool,
}

impl fmt::Debug for VariableData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VariableData")
            .field("name", &self.name)
            .field("owner", &self.owner)
            .field("constraints", &self.constraints)
            .field("kind", &self.kind.kind_name())
            .field("has_recalc", &self.recalc.is_some())
            .finish()
    }
}

impl VariableData {
    pub(crate) fn new(name: String, owner: Option<Arc<str>>, kind: Rc<dyn VariableKind>) -> Self {
        let plain_kind = kind.is_plain();
        VariableData {
            name,
            owner,
            constraints: Vec::new(),
            kind,
            plain_kind,
            recalc: None,
            evaluating: false,
        }
    }

    /// `owner.name` display path — the unique identification path of §4.1.1.
    pub(crate) fn path(&self) -> String {
        match &self.owner {
            Some(o) => format!("{o}.{}", self.name),
            None => self.name.clone(),
        }
    }
}
