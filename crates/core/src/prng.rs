//! Small deterministic pseudo-random number generator used by the test
//! suites and benchmark workloads.
//!
//! The workspace builds hermetically — no registry access — so instead of
//! depending on the `rand` crate, randomized tests and workload generators
//! seed this SplitMix64 generator (Steele, Lea & Flood, OOPSLA 2014). It is
//! *not* cryptographic; it exists to derive reproducible, well-mixed case
//! streams from small integer seeds.
//!
//! ```
//! use stem_core::prng::SplitMix64;
//! let mut a = SplitMix64::new(42);
//! let mut b = SplitMix64::new(42);
//! assert_eq!(a.next_u64(), b.next_u64()); // fully deterministic
//! assert!(a.range_usize(0, 10) < 10);
//! ```

/// A SplitMix64 generator: one `u64` of state, one multiply-xor-shift mix
/// per draw, equidistributed over the full 64-bit output space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[lo, hi)` as `i64`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = (hi - lo) as u64;
        lo + (self.next_u64() % span) as i64
    }

    /// Uniform draw in `[lo, hi)` as `usize`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + (self.next_u64() as usize) % (hi - lo)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Fair coin flip.
    pub fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.range_usize(0, i + 1);
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_mixed() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        // Consecutive draws differ (no trivial fixed point).
        assert!(xs.windows(2).all(|w| w[0] != w[1]));
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SplitMix64::new(0);
        for _ in 0..1000 {
            let x = r.range_i64(-5, 5);
            assert!((-5..5).contains(&x));
            let u = r.range_usize(3, 9);
            assert!((3..9).contains(&u));
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SplitMix64::new(99);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }
}
