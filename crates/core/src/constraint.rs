use crate::ids::{ConstraintId, VarId};
use crate::justification::DependencyRecord;
use crate::network::Network;
use crate::violation::Violation;
use std::fmt;

/// When a constraint runs after one of its arguments changes (thesis
/// §4.2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Propagate immediately, first-come-first-served, because the
    /// direction of inference depends on which variable changed
    /// (equality-style constraints).
    Immediate,
    /// Enqueue on the named agenda and propagate when the agenda is
    /// drained, so "propagation can be delayed until all argument variables
    /// have had a chance to change" (functional constraints, Fig. 4.7;
    /// implicit constraints, Fig. 5.3). Unknown agenda names are created
    /// with priority 0 on first use.
    Scheduled(&'static str),
}

/// The behaviour of a constraint — STEM's `immediateInferenceByChanging:` /
/// `isSatisfied` protocol (thesis §4.1.2) as a trait.
///
/// Connectivity (the argument list) lives in the [`Network`] arena; the kind
/// only encodes semantics. This mirrors the thesis's observation that "the
/// semantics of a constraint … are procedurally defined with methods in the
/// constraint object, while the context and scope of the constraint is
/// declared in the connectivities" (§9.2).
///
/// Implementations read arguments with [`Network::args`] and assign inferred
/// values with [`Network::propagate_set`].
pub trait ConstraintKind: fmt::Debug {
    /// Short label for inspection output (e.g. `"equality"`).
    fn kind_name(&self) -> &str;

    /// Whether the kind runs immediately or on an agenda.
    fn activation(&self) -> Activation {
        Activation::Immediate
    }

    /// The kind's *strength* (thesis §4.2.4's suggested refinement:
    /// "variables can recognize different strengths of constraints, and
    /// allow one type of constraints to overwrite values from another
    /// type, but not the other way around"). Under the default variable
    /// rule a propagated value is only replaced by a propagation of equal
    /// or greater strength; weaker propagations are silently ignored and
    /// left to the satisfaction sweep.
    fn strength(&self) -> u8 {
        1
    }

    /// Whether a change of `changed` should activate the constraint at all
    /// — `permitChangesByVariable:` of Fig. 4.7 (a functional constraint
    /// ignores changes of its own result variable).
    fn should_activate(&self, net: &Network, cid: ConstraintId, changed: VarId) -> bool {
        let _ = (net, cid, changed);
        true
    }

    /// For scheduled kinds: whether the agenda entry records the changed
    /// variable (implicit constraints, Fig. 5.3: `variable:aVar`) or not
    /// (functional constraints, Fig. 4.7: `variable:nil`). Entries are
    /// deduplicated on the `(constraint, variable)` pair.
    fn schedules_with_variable(&self) -> bool {
        false
    }

    /// Performs immediate inference: examine `changed` (when known) and
    /// assign inferred values to other arguments via
    /// [`Network::propagate_set`]. `changed` is `None` when re-initialising
    /// after a network edit or when an agenda entry carries no variable.
    ///
    /// # Errors
    ///
    /// Returns the violation raised by a rejected assignment; the engine
    /// aborts the cycle and restores state.
    fn infer(
        &self,
        net: &mut Network,
        cid: ConstraintId,
        changed: Option<VarId>,
    ) -> Result<(), Violation>;

    /// Tests whether the constraint is satisfied by its arguments' current
    /// values. Conventionally lenient about `Nil` arguments ("all non-NIL
    /// argument values are equal", Fig. 4.4).
    fn is_satisfied(&self, net: &Network, cid: ConstraintId) -> bool;

    /// The arguments this kind may assign during inference, used by
    /// network compilation (thesis §9.3, "simple topological sorts of the
    /// constraint networks"). Directional kinds return a strict subset of
    /// their arguments (a functional constraint returns its result
    /// variable; a check-only predicate returns nothing). The default —
    /// every argument — marks the kind as non-directional; compiled plans
    /// execute such constraints as checks only.
    fn outputs(&self, net: &Network, cid: ConstraintId) -> Vec<VarId> {
        net.args(cid).to_vec()
    }

    /// The exact set of arguments this kind writes when `changed` changes,
    /// *if that set is statically known* — the opt-in contract behind
    /// propagation-plan compilation (`network::plan`). Returning
    /// `Some(writes)` promises that `infer` on a change of `changed`
    /// assigns (at most) the listed variables, via `propagate_set`, and
    /// reads nothing the plan compiler cannot see. Kinds whose write-set
    /// depends on runtime values must keep the default `None`, which
    /// excludes any cone containing them from plan compilation and leaves
    /// them on the agenda path.
    ///
    /// `changed` is the variable whose change triggers the constraint —
    /// `None` for agenda entries that carry no variable
    /// (`schedules_with_variable() == false`), whose write-set must hold
    /// for the batched run as well.
    fn planned_writes(
        &self,
        net: &Network,
        cid: ConstraintId,
        changed: Option<VarId>,
    ) -> Option<Vec<VarId>> {
        let _ = (net, cid, changed);
        None
    }

    /// A thread-safe kernel equivalent to `infer` on a change of `changed`,
    /// *if one exists* — the opt-in contract behind parallel plan replay
    /// ([`crate::par`]). Returning `Some(kernel)` promises that running the
    /// kernel against a raw value view produces exactly the
    /// `propagate_set` calls `infer` would make (same targets, same order,
    /// same values, same dependency records). Kinds closing over
    /// non-`Send` state (custom closures) or whose effect cannot be
    /// described as a pure value computation must keep the default `None`,
    /// which excludes any plan containing them from cone partitioning and
    /// leaves them on the sequential replay path.
    fn par_kernel(
        &self,
        net: &Network,
        cid: ConstraintId,
        changed: Option<VarId>,
    ) -> Option<crate::par::ParKernel> {
        let _ = (net, cid, changed);
        None
    }

    /// Re-checks a runtime subsumption mark after a watched variable
    /// changed *non-monotonically* (its domain widened, e.g. a snapshot
    /// restore or a user re-set). A constraint that marked itself subsumed
    /// via [`Network::mark_subsumed`] is pruned from agenda dispatch and
    /// plan replay; when a watched variable widens, the network asks this
    /// hook whether entailment still holds and clears the mark when it
    /// returns `false`. The conservative default — never still subsumed —
    /// merely costs a re-dispatch, never correctness.
    fn still_subsumed(&self, net: &Network, cid: ConstraintId) -> bool {
        let _ = (net, cid);
        false
    }

    /// Dependency-record membership test (`testMembershipOf:inDependency:`,
    /// Fig. 4.11): does a value carrying `record` — formulated by this kind
    /// — depend on argument `arg`? The default interprets the built-in
    /// record shapes; kinds using [`DependencyRecord::Opaque`] must
    /// override.
    fn depends_on(
        &self,
        net: &Network,
        cid: ConstraintId,
        record: &DependencyRecord,
        arg: VarId,
    ) -> bool {
        let _ = (net, cid);
        record.default_membership(arg)
    }
}

/// Internal storage for one constraint: behaviour plus connectivity.
/// Cloning shares the (immutable) kind and copies the connectivity.
#[derive(Clone)]
pub(crate) struct ConstraintData {
    pub(crate) kind: std::rc::Rc<dyn ConstraintKind>,
    pub(crate) args: Vec<VarId>,
    /// Cleared when the constraint is removed; tombstoned slots are skipped.
    pub(crate) active: bool,
    /// Individually disabled constraints neither propagate nor check —
    /// the finer-grained control suggested in thesis §9.3 ("disabling
    /// propagation and/or checking of individual constraints").
    pub(crate) enabled: bool,
}

impl fmt::Debug for ConstraintData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ConstraintData")
            .field("kind", &self.kind.kind_name())
            .field("args", &self.args)
            .field("active", &self.active)
            .finish()
    }
}
