//! Constraint-network compilation (thesis §9.3).
//!
//! "Constraint networks can be compiled to improve the efficiency of
//! constraint propagation. Compilation of constraint networks can take
//! several forms, ranging from simple topological sorts of the constraint
//! networks to complete proceduralization of the constraints."
//!
//! This module implements the first form: directional constraints (those
//! whose [`ConstraintKind::outputs`] is a strict subset of their
//! arguments, like the functional constraints and implicit links) are
//! topologically sorted by data flow; non-directional constraints
//! (equalities) and pure checks (predicates) are appended after the sorted
//! prefix and act as final checks. [`Network::run_compiled`] then executes
//! the plan straight-line, with no activation discovery or agenda
//! overhead.
//!
//! "A correct mix of declarative and procedural implementation of
//! constraints must balance run-time efficiency with manageability of the
//! networks" — a compiled plan goes stale when the network is edited;
//! recompile after adding or removing constraints.

use crate::ids::ConstraintId;
use crate::network::Network;
use crate::violation::Violation;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// A compiled evaluation order over a network's constraints.
#[derive(Debug, Clone)]
pub struct CompiledPlan {
    /// Constraints in evaluation order: directional constraints in
    /// topological order, then check-only/non-directional ones.
    pub order: Vec<ConstraintId>,
    /// How many leading entries are directional (inferring) constraints.
    pub n_directional: usize,
}

impl CompiledPlan {
    /// Executes the plan on `net` (see [`Network::run_compiled`]).
    ///
    /// # Errors
    ///
    /// Returns the violation raised by a rejected assignment or failed
    /// check; the network is restored.
    pub fn evaluate(&self, net: &mut Network) -> Result<(), Violation> {
        net.run_compiled(&self.order)
    }
}

/// The directional constraints form a cycle; the network cannot be
/// compiled to a straight line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileCycle {
    /// Constraints participating in (or downstream of) the cycle.
    pub cyclic: Vec<ConstraintId>,
}

impl fmt::Display for CompileCycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cyclic data flow among {} directional constraint(s)",
            self.cyclic.len()
        )
    }
}

impl Error for CompileCycle {}

/// Topologically sorts the network's directional constraints by data flow
/// (producer before consumer), appending non-directional and check-only
/// constraints at the end.
///
/// # Errors
///
/// [`CompileCycle`] when directional constraints form a data-flow cycle
/// (e.g. the Fig. 4.9 network).
pub fn compile_functional(net: &Network) -> Result<CompiledPlan, CompileCycle> {
    let mut directional = Vec::new();
    let mut checks = Vec::new();
    // producer map: variable -> constraints that write it
    let mut producers: HashMap<u32, Vec<ConstraintId>> = HashMap::new();
    for cid in net.all_constraints() {
        if !net.is_constraint_enabled(cid) {
            continue;
        }
        let outs = net.constraint_outputs(cid);
        let args = net.args(cid);
        // Directional: writes some arguments but not all. Pure checks
        // (no outputs) and non-directional kinds (all arguments) both go
        // in the check suffix.
        let directional_kind = !outs.is_empty() && outs.len() < args.len();
        if directional_kind {
            directional.push(cid);
            for v in &outs {
                producers.entry(v.index() as u32).or_default().push(cid);
            }
        } else {
            checks.push(cid);
        }
    }
    // Edges: producer → consumer when the consumer reads a produced var
    // (a read = any argument that is not one of the consumer's outputs).
    let mut indegree: HashMap<ConstraintId, usize> = directional.iter().map(|&c| (c, 0)).collect();
    let mut edges: HashMap<ConstraintId, Vec<ConstraintId>> = HashMap::new();
    for &consumer in &directional {
        let outs = net.constraint_outputs(consumer);
        for &arg in net.args(consumer) {
            if outs.contains(&arg) {
                continue;
            }
            if let Some(ps) = producers.get(&(arg.index() as u32)) {
                for &producer in ps {
                    if producer != consumer {
                        edges.entry(producer).or_default().push(consumer);
                        *indegree.get_mut(&consumer).expect("known") += 1;
                    }
                }
            }
        }
    }
    // Kahn's algorithm, stable on the original insertion order.
    let mut ready: Vec<ConstraintId> = directional
        .iter()
        .copied()
        .filter(|c| indegree[c] == 0)
        .collect();
    let mut order = Vec::with_capacity(directional.len());
    let mut cursor = 0;
    while cursor < ready.len() {
        let c = ready[cursor];
        cursor += 1;
        order.push(c);
        if let Some(next) = edges.get(&c) {
            for &n in next {
                let d = indegree.get_mut(&n).expect("known");
                *d -= 1;
                if *d == 0 {
                    ready.push(n);
                }
            }
        }
    }
    if order.len() != directional.len() {
        let cyclic = directional
            .into_iter()
            .filter(|c| !order.contains(c))
            .collect();
        return Err(CompileCycle { cyclic });
    }
    let n_directional = order.len();
    order.extend(checks);
    Ok(CompiledPlan {
        order,
        n_directional,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kinds::{Equality, Functional, Predicate};
    use crate::{Justification, Value};

    #[test]
    fn topological_order_respects_data_flow() {
        let mut net = Network::new();
        let a = net.add_variable("a");
        let b = net.add_variable("b");
        let s1 = net.add_variable("s1");
        let s2 = net.add_variable("s2");
        // Deliberately wire downstream first.
        let c_late = net
            .add_constraint(Functional::uni_addition(), [s1, b, s2])
            .unwrap();
        let c_early = net
            .add_constraint(Functional::uni_addition(), [a, b, s1])
            .unwrap();
        let plan = compile_functional(&net).unwrap();
        let pos = |c| plan.order.iter().position(|&x| x == c).unwrap();
        assert!(pos(c_early) < pos(c_late), "producer before consumer");
        assert_eq!(plan.n_directional, 2);

        // Straight-line evaluation computes the same results as
        // propagation would.
        net.set_propagation_enabled(false);
        net.set(a, Value::Int(1), Justification::User).unwrap();
        net.set(b, Value::Int(2), Justification::User).unwrap();
        net.set_propagation_enabled(true);
        plan.evaluate(&mut net).unwrap();
        assert_eq!(net.value(s1), &Value::Int(3));
        assert_eq!(net.value(s2), &Value::Int(5));
    }

    #[test]
    fn checks_run_after_inference() {
        let mut net = Network::new();
        let a = net.add_variable("a");
        let s = net.add_variable("s");
        net.add_constraint(Functional::uni_addition(), [a, s])
            .unwrap();
        net.add_constraint(Predicate::le_const(Value::Int(5)), [s])
            .unwrap();
        let plan = compile_functional(&net).unwrap();
        assert_eq!(plan.n_directional, 1);
        assert_eq!(plan.order.len(), 2);

        net.set_propagation_enabled(false);
        net.set(a, Value::Int(9), Justification::User).unwrap();
        net.set_propagation_enabled(true);
        let err = plan.evaluate(&mut net).unwrap_err();
        let _ = err;
        assert!(net.value(s).is_nil(), "inferred value rolled back");
    }

    #[test]
    fn equalities_are_appended_as_checks() {
        let mut net = Network::new();
        let a = net.add_variable("a");
        let b = net.add_variable("b");
        net.add_constraint(Equality::new(), [a, b]).unwrap();
        let plan = compile_functional(&net).unwrap();
        assert_eq!(plan.n_directional, 0);
        assert_eq!(plan.order.len(), 1);
    }

    #[test]
    fn cycles_are_rejected() {
        let mut net = Network::new();
        let a = net.add_variable("a");
        let b = net.add_variable("b");
        let plus = |k: i64| {
            Functional::custom("plusConst", move |vals| {
                vals[0].as_i64().map(|x| Value::Int(x + k))
            })
        };
        net.add_constraint(plus(1), [a, b]).unwrap();
        net.add_constraint(plus(1), [b, a]).unwrap();
        let err = compile_functional(&net).unwrap_err();
        assert_eq!(err.cyclic.len(), 2);
    }

    #[test]
    fn disabled_constraints_are_skipped() {
        let mut net = Network::new();
        let a = net.add_variable("a");
        let s = net.add_variable("s");
        let cid = net
            .add_constraint(Functional::uni_addition(), [a, s])
            .unwrap();
        net.set_constraint_enabled(cid, false);
        let plan = compile_functional(&net).unwrap();
        assert!(plan.order.is_empty());
    }

    #[test]
    fn plan_matches_interpreted_propagation_on_a_dag() {
        // Same network evaluated both ways must agree.
        let mut interpreted = Network::new();
        let mut leaves = Vec::new();
        let mut layer = Vec::new();
        for i in 0..8 {
            let v = interpreted.add_variable(format!("l{i}"));
            leaves.push(v);
            layer.push(v);
        }
        while layer.len() > 1 {
            let mut next = Vec::new();
            for pair in layer.chunks(2) {
                if pair.len() == 2 {
                    let out = interpreted.add_variable("s");
                    interpreted
                        .add_constraint(Functional::uni_addition(), [pair[0], pair[1], out])
                        .unwrap();
                    next.push(out);
                } else {
                    next.push(pair[0]);
                }
            }
            layer = next;
        }
        let root = layer[0];
        let plan = compile_functional(&interpreted).unwrap();

        // Interpreted.
        for (i, &l) in leaves.iter().enumerate() {
            interpreted
                .set(l, Value::Int(i as i64), Justification::User)
                .unwrap();
        }
        let expected = interpreted.value(root).clone();

        // Compiled: plain stores then one plan evaluation.
        let mut compiled = Network::new();
        let mut leaves2 = Vec::new();
        let mut layer2 = Vec::new();
        for i in 0..8 {
            let v = compiled.add_variable(format!("l{i}"));
            leaves2.push(v);
            layer2.push(v);
        }
        while layer2.len() > 1 {
            let mut next = Vec::new();
            for pair in layer2.chunks(2) {
                if pair.len() == 2 {
                    let out = compiled.add_variable("s");
                    compiled
                        .add_constraint(Functional::uni_addition(), [pair[0], pair[1], out])
                        .unwrap();
                    next.push(out);
                } else {
                    next.push(pair[0]);
                }
            }
            layer2 = next;
        }
        let root2 = layer2[0];
        let plan2 = compile_functional(&compiled).unwrap();
        assert_eq!(plan.order.len(), plan2.order.len());
        compiled.set_propagation_enabled(false);
        for (i, &l) in leaves2.iter().enumerate() {
            compiled
                .set(l, Value::Int(i as i64), Justification::User)
                .unwrap();
        }
        compiled.set_propagation_enabled(true);
        plan2.evaluate(&mut compiled).unwrap();
        assert_eq!(compiled.value(root2), &expected);
    }
}
